//! Session segmentation.
//!
//! The paper (Definition 1) treats a *session* as "a series of search
//! queries that are submitted to satisfy a single information need" and
//! derives sessions with the method of its reference \[25\] (Jiang, Leung &
//! Ng, CIKM 2011). We implement the same family of segmenter: per user,
//! chronological scan; a new query stays in the current session when it is
//! close in *time* (gap below a threshold) **or** lexically similar to a
//! recent query of the session; otherwise a new session starts.

use crate::entry::QueryLog;
use crate::ids::{QueryId, SessionId, UserId};
use crate::text;
use serde::{Deserialize, Serialize};

/// Tunables for [`segment_sessions`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Hard gap: a pause longer than this always breaks the session, even
    /// with lexical overlap (the classic 30-minute web-search cutoff).
    pub hard_gap_secs: u64,
    /// Soft gap: pauses up to this long keep the session unconditionally.
    pub soft_gap_secs: u64,
    /// Jaccard token-overlap threshold that keeps lexically related
    /// reformulations in-session for pauses between the soft and hard gap.
    pub similarity_threshold: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            hard_gap_secs: 30 * 60,
            soft_gap_secs: 5 * 60,
            similarity_threshold: 0.2,
        }
    }
}

/// A segmented session: one user's consecutive records pursuing one need.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// This session's id (dense, log-wide).
    pub id: SessionId,
    /// Owner.
    pub user: UserId,
    /// Indices into `QueryLog::records()`, chronological.
    pub record_indices: Vec<usize>,
    /// Distinct queries of the session, in first-appearance order.
    pub queries: Vec<QueryId>,
    /// First record timestamp.
    pub start: u64,
    /// Last record timestamp.
    pub end: u64,
}

impl Session {
    /// Number of records in the session.
    pub fn len(&self) -> usize {
        self.record_indices.len()
    }

    /// True when the session holds no records (never produced by the
    /// segmenter; useful for manually built sessions).
    pub fn is_empty(&self) -> bool {
        self.record_indices.is_empty()
    }
}

/// Segments the log into sessions and stamps each record's `session` field.
/// Returns the sessions in id order.
pub fn segment_sessions(log: &mut QueryLog, config: &SessionConfig) -> Vec<Session> {
    // Group record indices per user, preserving chronological order.
    let mut per_user: Vec<Vec<usize>> = vec![Vec::new(); log.num_users()];
    for (i, r) in log.records().iter().enumerate() {
        per_user[r.user.index()].push(i);
    }

    let mut sessions: Vec<Session> = Vec::new();
    for (user_idx, indices) in per_user.iter().enumerate() {
        let user = UserId::from_index(user_idx);
        let mut current: Vec<usize> = Vec::new();
        for &i in indices {
            let stay = match current.last() {
                None => true,
                Some(&prev) => {
                    let prev_rec = log.records()[prev];
                    let rec = log.records()[i];
                    let gap = rec.timestamp.saturating_sub(prev_rec.timestamp);
                    if gap <= config.soft_gap_secs {
                        true
                    } else if gap > config.hard_gap_secs {
                        false
                    } else {
                        // Medium gap: keep only lexically related queries.
                        let a = log.query_text(prev_rec.query).to_owned();
                        let b = log.query_text(rec.query);
                        text::token_jaccard(&a, b) >= config.similarity_threshold
                    }
                }
            };
            if !stay {
                flush(&mut sessions, user, std::mem::take(&mut current), log);
            }
            current.push(i);
        }
        flush(&mut sessions, user, current, log);
    }

    // Stamp records.
    for s in &sessions {
        for &i in &s.record_indices {
            log.records_mut()[i].session = Some(s.id);
        }
    }
    sessions
}

fn flush(sessions: &mut Vec<Session>, user: UserId, indices: Vec<usize>, log: &QueryLog) {
    if indices.is_empty() {
        return;
    }
    let id = SessionId::from_index(sessions.len());
    let mut queries = Vec::new();
    for &i in &indices {
        let q = log.records()[i].query;
        if !queries.contains(&q) {
            queries.push(q);
        }
    }
    let start = log.records()[indices[0]].timestamp;
    let end = log.records()[*indices.last().unwrap()].timestamp;
    sessions.push(Session {
        id,
        user,
        record_indices: indices,
        queries,
        start,
        end,
    });
}

/// Groups already-stamped sessions by user: `result[user] = session ids`.
pub fn sessions_by_user(sessions: &[Session], num_users: usize) -> Vec<Vec<SessionId>> {
    let mut out = vec![Vec::new(); num_users];
    for s in sessions {
        out[s.user.index()].push(s.id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::LogEntry;

    fn build(entries: Vec<LogEntry>) -> (QueryLog, Vec<Session>) {
        let mut log = QueryLog::from_entries(&entries);
        let sessions = segment_sessions(&mut log, &SessionConfig::default());
        (log, sessions)
    }

    #[test]
    fn paper_table_one_yields_three_sessions() {
        // Table I's three sessions: {q1,q2,q3}, {q4,q5}, {q6,q7} — we space
        // the users' bursts closely and separate users naturally.
        let entries = vec![
            LogEntry::new(UserId(0), "sun", Some("www.java.com"), 100),
            LogEntry::new(UserId(0), "sun java", Some("java.sun.com"), 120),
            LogEntry::new(UserId(0), "jvm download", None, 200),
            LogEntry::new(UserId(1), "sun", Some("www.suncellular.com"), 300),
            LogEntry::new(UserId(1), "solar cell", Some("en.wikipedia.org"), 400),
            LogEntry::new(UserId(2), "sun oracle", Some("www.oracle.com"), 500),
            LogEntry::new(UserId(2), "java", Some("www.java.com"), 560),
        ];
        let (log, sessions) = build(entries);
        assert_eq!(sessions.len(), 3);
        assert_eq!(sessions[0].len(), 3);
        assert_eq!(sessions[1].len(), 2);
        assert_eq!(sessions[2].len(), 2);
        // Every record is stamped.
        assert!(log.records().iter().all(|r| r.session.is_some()));
    }

    #[test]
    fn hard_gap_always_breaks() {
        let entries = vec![
            LogEntry::new(UserId(0), "sun java", None, 0),
            // Same words, but 2 hours later: new information need.
            LogEntry::new(UserId(0), "sun java", None, 7200),
        ];
        let (_, sessions) = build(entries);
        assert_eq!(sessions.len(), 2);
    }

    #[test]
    fn medium_gap_kept_only_with_lexical_overlap() {
        let cfg = SessionConfig::default();
        let medium = cfg.soft_gap_secs + 60;
        // Overlapping reformulation survives the medium gap...
        let entries = vec![
            LogEntry::new(UserId(0), "solar cell", None, 0),
            LogEntry::new(UserId(0), "solar cell efficiency", None, medium),
        ];
        let (_, s1) = build(entries);
        assert_eq!(s1.len(), 1);
        // ...an unrelated query does not.
        let entries = vec![
            LogEntry::new(UserId(0), "solar cell", None, 0),
            LogEntry::new(UserId(0), "pizza delivery", None, medium),
        ];
        let (_, s2) = build(entries);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn sessions_never_span_users() {
        let entries = vec![
            LogEntry::new(UserId(0), "sun", None, 0),
            LogEntry::new(UserId(1), "sun", None, 1),
        ];
        let (_, sessions) = build(entries);
        assert_eq!(sessions.len(), 2);
        assert_ne!(sessions[0].user, sessions[1].user);
    }

    #[test]
    fn session_query_lists_deduplicate() {
        let entries = vec![
            LogEntry::new(UserId(0), "sun", None, 0),
            LogEntry::new(UserId(0), "sun", Some("www.java.com"), 10),
            LogEntry::new(UserId(0), "sun java", None, 20),
        ];
        let (_, sessions) = build(entries);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].queries.len(), 2);
        assert_eq!(sessions[0].record_indices.len(), 3);
    }

    #[test]
    fn start_end_timestamps() {
        let entries = vec![
            LogEntry::new(UserId(0), "a b", None, 5),
            LogEntry::new(UserId(0), "a c", None, 50),
        ];
        let (_, sessions) = build(entries);
        assert_eq!(sessions[0].start, 5);
        assert_eq!(sessions[0].end, 50);
    }

    #[test]
    fn sessions_by_user_groups() {
        let entries = vec![
            LogEntry::new(UserId(0), "a", None, 0),
            LogEntry::new(UserId(1), "b", None, 1),
            LogEntry::new(UserId(0), "c", None, 100_000),
        ];
        let (log, sessions) = build(entries);
        let by_user = sessions_by_user(&sessions, log.num_users());
        assert_eq!(by_user[0].len(), 2);
        assert_eq!(by_user[1].len(), 1);
    }

    #[test]
    fn empty_log_no_sessions() {
        let (_, sessions) = build(vec![]);
        assert!(sessions.is_empty());
    }
}
