//! Session segmentation.
//!
//! The paper (Definition 1) treats a *session* as "a series of search
//! queries that are submitted to satisfy a single information need" and
//! derives sessions with the method of its reference \[25\] (Jiang, Leung &
//! Ng, CIKM 2011). We implement the same family of segmenter: per user,
//! chronological scan; a new query stays in the current session when it is
//! close in *time* (gap below a threshold) **or** lexically similar to a
//! recent query of the session; otherwise a new session starts.

use crate::entry::{LogRecord, QueryLog};
use crate::ids::{QueryId, SessionId, UserId};
use crate::text;
use serde::{Deserialize, Serialize};

/// Tunables for [`segment_sessions`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Hard gap: a pause longer than this always breaks the session, even
    /// with lexical overlap (the classic 30-minute web-search cutoff).
    pub hard_gap_secs: u64,
    /// Soft gap: pauses up to this long keep the session unconditionally.
    pub soft_gap_secs: u64,
    /// Jaccard token-overlap threshold that keeps lexically related
    /// reformulations in-session for pauses between the soft and hard gap.
    pub similarity_threshold: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            hard_gap_secs: 30 * 60,
            soft_gap_secs: 5 * 60,
            similarity_threshold: 0.2,
        }
    }
}

/// A segmented session: one user's consecutive records pursuing one need.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// This session's id (dense, log-wide).
    pub id: SessionId,
    /// Owner.
    pub user: UserId,
    /// Indices into `QueryLog::records()`, chronological.
    pub record_indices: Vec<usize>,
    /// Distinct queries of the session, in first-appearance order.
    pub queries: Vec<QueryId>,
    /// First record timestamp.
    pub start: u64,
    /// Last record timestamp.
    pub end: u64,
}

impl Session {
    /// Number of records in the session.
    pub fn len(&self) -> usize {
        self.record_indices.len()
    }

    /// True when the session holds no records (never produced by the
    /// segmenter; useful for manually built sessions).
    pub fn is_empty(&self) -> bool {
        self.record_indices.is_empty()
    }
}

/// Segments the log into sessions and stamps each record's `session` field.
/// Returns the sessions in id order.
///
/// Session ids are assigned by the index of each session's **first record**
/// (not by user grouping), which makes the id space append-only: appending
/// strictly-later records can only extend a user's last open session
/// (whose first record — and therefore id — is unchanged) or create
/// sessions whose first record lies past every existing one (which sort
/// after all existing ids). [`crate::delta::LogDelta`] relies on this to
/// keep untouched session columns bit-identical across incremental
/// updates.
pub fn segment_sessions(log: &mut QueryLog, config: &SessionConfig) -> Vec<Session> {
    // Group record indices per user, preserving chronological order.
    let mut per_user: Vec<Vec<usize>> = vec![Vec::new(); log.num_users()];
    for (i, r) in log.records().iter().enumerate() {
        per_user[r.user.index()].push(i);
    }

    let mut sessions: Vec<Session> = Vec::new();
    for (user_idx, indices) in per_user.iter().enumerate() {
        let user = UserId::from_index(user_idx);
        let mut current: Vec<usize> = Vec::new();
        for &i in indices {
            let stay = match current.last() {
                None => true,
                Some(&prev) => same_session(log, &log.records()[prev], &log.records()[i], config),
            };
            if !stay {
                flush(&mut sessions, user, std::mem::take(&mut current), log);
            }
            current.push(i);
        }
        flush(&mut sessions, user, current, log);
    }

    // Number sessions by first-record position (see the doc comment); the
    // per-user scan above already built each one with a placeholder id.
    sessions.sort_by_key(|s| s.record_indices[0]);
    for (i, s) in sessions.iter_mut().enumerate() {
        s.id = SessionId::from_index(i);
    }

    // Stamp records.
    for s in &sessions {
        for &i in &s.record_indices {
            log.records_mut()[i].session = Some(s.id);
        }
    }
    sessions
}

/// The segmenter's stay/break decision for one record against its user's
/// previous record: stay within the soft gap, break past the hard gap, and
/// in between keep only lexically related reformulations.
fn same_session(
    log: &QueryLog,
    prev_rec: &LogRecord,
    rec: &LogRecord,
    config: &SessionConfig,
) -> bool {
    let gap = rec.timestamp.saturating_sub(prev_rec.timestamp);
    if gap <= config.soft_gap_secs {
        true
    } else if gap > config.hard_gap_secs {
        false
    } else {
        let a = log.query_text(prev_rec.query).to_owned();
        let b = log.query_text(rec.query);
        text::token_jaccard(&a, b) >= config.similarity_threshold
    }
}

/// Re-segments after [`QueryLog::append_entries`] without rescanning the
/// base: sessions of the records before `first_appended` are reconstructed
/// from their stamps in one linear pass, and the gap/similarity logic runs
/// only over the appended tail. Output — session contents, ids, and record
/// stamps — is identical to a full [`segment_sessions`] pass over the grown
/// log: appended records are chronologically last per user, so each can
/// only extend its user's final session or open a new one, and new sessions
/// open in first-record order (their ids therefore continue the existing
/// dense, first-record-ordered id space).
///
/// Falls back to the full segmenter when any base record is unstamped
/// (a log that was never segmented).
pub fn segment_sessions_append(
    log: &mut QueryLog,
    config: &SessionConfig,
    first_appended: usize,
) -> Vec<Session> {
    let first_appended = first_appended.min(log.records().len());
    if log.records()[..first_appended]
        .iter()
        .any(|r| r.session.is_none())
    {
        return segment_sessions(log, config);
    }

    // Rebuild the base sessions from their stamps. Ids are dense and
    // ordered by first record, so each id's first appearance in record
    // order is exactly `sessions.len()` at that moment.
    let mut sessions: Vec<Session> = Vec::new();
    for (i, r) in log.records()[..first_appended].iter().enumerate() {
        let sid = r.session.expect("unstamped bases fall back above");
        if sid.index() == sessions.len() {
            sessions.push(Session {
                id: sid,
                user: r.user,
                record_indices: Vec::new(),
                queries: Vec::new(),
                start: r.timestamp,
                end: r.timestamp,
            });
        }
        debug_assert!(sid.index() < sessions.len(), "session ids must be dense");
        let s = &mut sessions[sid.index()];
        s.record_indices.push(i);
        if !s.queries.contains(&r.query) {
            s.queries.push(r.query);
        }
        s.end = r.timestamp;
    }

    // Each user's chronologically-last session: ids order by first record,
    // and one user's sessions never interleave, so the highest id wins.
    let mut last_of_user: Vec<Option<usize>> = vec![None; log.num_users()];
    for (si, s) in sessions.iter().enumerate() {
        last_of_user[s.user.index()] = Some(si);
    }

    // The appended tail goes through the same stay/break decision as the
    // full segmenter, comparing against its user's latest record.
    for i in first_appended..log.records().len() {
        let rec = log.records()[i];
        let stay = last_of_user[rec.user.index()].filter(|&si| {
            let prev = *sessions[si].record_indices.last().expect("non-empty");
            same_session(log, &log.records()[prev], &rec, config)
        });
        let si = stay.unwrap_or_else(|| {
            let si = sessions.len();
            sessions.push(Session {
                id: SessionId::from_index(si),
                user: rec.user,
                record_indices: Vec::new(),
                queries: Vec::new(),
                start: rec.timestamp,
                end: rec.timestamp,
            });
            last_of_user[rec.user.index()] = Some(si);
            si
        });
        let s = &mut sessions[si];
        s.record_indices.push(i);
        if !s.queries.contains(&rec.query) {
            s.queries.push(rec.query);
        }
        s.end = rec.timestamp;
        log.records_mut()[i].session = Some(s.id);
    }
    sessions
}

/// Stamp-only re-segmentation after [`QueryLog::append_entries`]: stamps
/// the appended records' `session` fields exactly as
/// [`segment_sessions_append`] would and returns the grown session count,
/// but never materializes the session list. The incremental graph update
/// reads session membership from the stamps and only needs the count, so
/// the unpersonalized delta path skips a per-session allocation storm.
/// Falls back to a full [`segment_sessions`] pass when any base record is
/// unstamped.
pub fn restamp_appended(
    log: &mut QueryLog,
    config: &SessionConfig,
    first_appended: usize,
) -> usize {
    let first_appended = first_appended.min(log.records().len());
    if log.records()[..first_appended]
        .iter()
        .any(|r| r.session.is_none())
    {
        return segment_sessions(log, config).len();
    }
    // Per-user latest record: its stamp is the user's last session (ids
    // order by first record, and one user's sessions never interleave).
    let mut last_rec: Vec<Option<usize>> = vec![None; log.num_users()];
    let mut num_sessions = 0usize;
    for (i, r) in log.records()[..first_appended].iter().enumerate() {
        last_rec[r.user.index()] = Some(i);
        let sid = r.session.expect("unstamped bases fall back above");
        num_sessions = num_sessions.max(sid.index() + 1);
    }
    for i in first_appended..log.records().len() {
        let rec = log.records()[i];
        let sid = last_rec[rec.user.index()]
            .map(|prev| log.records()[prev])
            .filter(|prev_rec| same_session(log, prev_rec, &rec, config))
            .map(|prev_rec| prev_rec.session.expect("base and tail stamps exist"))
            .unwrap_or_else(|| {
                let s = SessionId::from_index(num_sessions);
                num_sessions += 1;
                s
            });
        log.records_mut()[i].session = Some(sid);
        last_rec[rec.user.index()] = Some(i);
    }
    num_sessions
}

fn flush(sessions: &mut Vec<Session>, user: UserId, indices: Vec<usize>, log: &QueryLog) {
    if indices.is_empty() {
        return;
    }
    // Placeholder id; the caller renumbers by first-record order.
    let id = SessionId::from_index(sessions.len());
    let mut queries = Vec::new();
    for &i in &indices {
        let q = log.records()[i].query;
        if !queries.contains(&q) {
            queries.push(q);
        }
    }
    let start = log.records()[indices[0]].timestamp;
    let end = log.records()[*indices.last().unwrap()].timestamp;
    sessions.push(Session {
        id,
        user,
        record_indices: indices,
        queries,
        start,
        end,
    });
}

/// Groups already-stamped sessions by user: `result[user] = session ids`.
pub fn sessions_by_user(sessions: &[Session], num_users: usize) -> Vec<Vec<SessionId>> {
    let mut out = vec![Vec::new(); num_users];
    for s in sessions {
        out[s.user.index()].push(s.id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::LogEntry;

    fn build(entries: Vec<LogEntry>) -> (QueryLog, Vec<Session>) {
        let mut log = QueryLog::from_entries(&entries);
        let sessions = segment_sessions(&mut log, &SessionConfig::default());
        (log, sessions)
    }

    #[test]
    fn paper_table_one_yields_three_sessions() {
        // Table I's three sessions: {q1,q2,q3}, {q4,q5}, {q6,q7} — we space
        // the users' bursts closely and separate users naturally.
        let entries = vec![
            LogEntry::new(UserId(0), "sun", Some("www.java.com"), 100),
            LogEntry::new(UserId(0), "sun java", Some("java.sun.com"), 120),
            LogEntry::new(UserId(0), "jvm download", None, 200),
            LogEntry::new(UserId(1), "sun", Some("www.suncellular.com"), 300),
            LogEntry::new(UserId(1), "solar cell", Some("en.wikipedia.org"), 400),
            LogEntry::new(UserId(2), "sun oracle", Some("www.oracle.com"), 500),
            LogEntry::new(UserId(2), "java", Some("www.java.com"), 560),
        ];
        let (log, sessions) = build(entries);
        assert_eq!(sessions.len(), 3);
        assert_eq!(sessions[0].len(), 3);
        assert_eq!(sessions[1].len(), 2);
        assert_eq!(sessions[2].len(), 2);
        // Every record is stamped.
        assert!(log.records().iter().all(|r| r.session.is_some()));
    }

    #[test]
    fn hard_gap_always_breaks() {
        let entries = vec![
            LogEntry::new(UserId(0), "sun java", None, 0),
            // Same words, but 2 hours later: new information need.
            LogEntry::new(UserId(0), "sun java", None, 7200),
        ];
        let (_, sessions) = build(entries);
        assert_eq!(sessions.len(), 2);
    }

    #[test]
    fn medium_gap_kept_only_with_lexical_overlap() {
        let cfg = SessionConfig::default();
        let medium = cfg.soft_gap_secs + 60;
        // Overlapping reformulation survives the medium gap...
        let entries = vec![
            LogEntry::new(UserId(0), "solar cell", None, 0),
            LogEntry::new(UserId(0), "solar cell efficiency", None, medium),
        ];
        let (_, s1) = build(entries);
        assert_eq!(s1.len(), 1);
        // ...an unrelated query does not.
        let entries = vec![
            LogEntry::new(UserId(0), "solar cell", None, 0),
            LogEntry::new(UserId(0), "pizza delivery", None, medium),
        ];
        let (_, s2) = build(entries);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn sessions_never_span_users() {
        let entries = vec![
            LogEntry::new(UserId(0), "sun", None, 0),
            LogEntry::new(UserId(1), "sun", None, 1),
        ];
        let (_, sessions) = build(entries);
        assert_eq!(sessions.len(), 2);
        assert_ne!(sessions[0].user, sessions[1].user);
    }

    #[test]
    fn session_query_lists_deduplicate() {
        let entries = vec![
            LogEntry::new(UserId(0), "sun", None, 0),
            LogEntry::new(UserId(0), "sun", Some("www.java.com"), 10),
            LogEntry::new(UserId(0), "sun java", None, 20),
        ];
        let (_, sessions) = build(entries);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].queries.len(), 2);
        assert_eq!(sessions[0].record_indices.len(), 3);
    }

    #[test]
    fn start_end_timestamps() {
        let entries = vec![
            LogEntry::new(UserId(0), "a b", None, 5),
            LogEntry::new(UserId(0), "a c", None, 50),
        ];
        let (_, sessions) = build(entries);
        assert_eq!(sessions[0].start, 5);
        assert_eq!(sessions[0].end, 50);
    }

    #[test]
    fn sessions_by_user_groups() {
        let entries = vec![
            LogEntry::new(UserId(0), "a", None, 0),
            LogEntry::new(UserId(1), "b", None, 1),
            LogEntry::new(UserId(0), "c", None, 100_000),
        ];
        let (log, sessions) = build(entries);
        let by_user = sessions_by_user(&sessions, log.num_users());
        assert_eq!(by_user[0].len(), 2);
        assert_eq!(by_user[1].len(), 1);
    }

    #[test]
    fn empty_log_no_sessions() {
        let (_, sessions) = build(vec![]);
        assert!(sessions.is_empty());
    }

    #[test]
    fn incremental_segmentation_matches_full() {
        use crate::synth::{generate, SynthConfig};
        let cfg = SessionConfig::default();
        for seed in [3u64, 11, 42] {
            let s = generate(&SynthConfig::tiny(seed));
            let entries = s.log.entries();
            for cut in [entries.len() / 4, entries.len() / 2, entries.len() - 1] {
                let mut warm = QueryLog::from_entries(&entries[..cut]);
                segment_sessions(&mut warm, &cfg);
                let delta = warm.append_entries(&entries[cut..]).expect("chronological");
                let inc = segment_sessions_append(&mut warm, &cfg, delta.first_record);

                let mut cold = QueryLog::from_entries(&entries);
                let full = segment_sessions(&mut cold, &cfg);
                assert_eq!(inc, full, "seed {seed}, cut {cut}");
                assert_eq!(warm.records(), cold.records(), "seed {seed}, cut {cut}");
            }
        }
    }

    #[test]
    fn restamp_matches_full_segmentation() {
        use crate::synth::{generate, SynthConfig};
        let cfg = SessionConfig::default();
        for seed in [5u64, 27] {
            let s = generate(&SynthConfig::tiny(seed));
            let entries = s.log.entries();
            for cut in [entries.len() / 3, entries.len() - 1] {
                let mut warm = QueryLog::from_entries(&entries[..cut]);
                segment_sessions(&mut warm, &cfg);
                let delta = warm.append_entries(&entries[cut..]).expect("chronological");
                let n = restamp_appended(&mut warm, &cfg, delta.first_record);

                let mut cold = QueryLog::from_entries(&entries);
                let full = segment_sessions(&mut cold, &cfg);
                assert_eq!(n, full.len(), "seed {seed}, cut {cut}");
                // Record equality covers the stamps.
                assert_eq!(warm.records(), cold.records(), "seed {seed}, cut {cut}");
            }
        }
    }

    #[test]
    fn incremental_segmentation_falls_back_on_unstamped_logs() {
        let entries = vec![
            LogEntry::new(UserId(0), "sun", None, 0),
            LogEntry::new(UserId(0), "sun java", None, 10),
        ];
        let mut log = QueryLog::from_entries(&entries);
        // Never segmented: the incremental entry point must do a full pass.
        let n = log.records().len();
        let sessions = segment_sessions_append(&mut log, &SessionConfig::default(), n);
        assert_eq!(sessions.len(), 1);
        assert!(log.records().iter().all(|r| r.session.is_some()));
    }
}
