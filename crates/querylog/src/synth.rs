//! Synthetic query-log generator — the documented substitution for the
//! paper's proprietary commercial log (DESIGN.md §4).
//!
//! The generator builds a *topic world*: a set of latent topics, each with
//! several **facets** (distinct interpretations/senses), facet-specific word
//! and URL vocabularies, and a pool of **ambiguous head terms** that belong
//! to facets of *different* topics — the paper's "sun" (solar system vs. Sun
//! Microsystems vs. the UK newspaper). Users carry Dirichlet topic
//! preferences with temporal drift and a per-topic preferred facet; sessions
//! pick a facet (user-biased), emit a chain of lexically coherent
//! reformulation queries, and click facet-specific URLs with configurable
//! noise.
//!
//! The output carries complete ground truth — which facet generated every
//! record, every query's facet set, every URL's facet and "high-quality
//! field" terms, each user's true preference — which the evaluation crate
//! uses as its oracle (ODP categories, page similarity, HPR rater).

use crate::entry::{LogEntry, QueryLog};
use crate::ids::{SessionId, UrlId, UserId};
use crate::session::Session;
use crate::taxonomy::Taxonomy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the topic world and of log generation. Defaults give a
/// laptop-scale log (hundreds of users, tens of thousands of records) that
/// preserves the structural properties the paper's arguments rest on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SynthConfig {
    /// RNG seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Number of latent topics.
    pub num_topics: usize,
    /// Facets per topic, inclusive range.
    pub facets_per_topic: (usize, usize),
    /// Facet-specific vocabulary size.
    pub words_per_facet: usize,
    /// Facet-specific URL pool size.
    pub urls_per_facet: usize,
    /// Number of ambiguous head terms shared across topics.
    pub num_ambiguous: usize,
    /// How many facets each ambiguous term belongs to.
    pub facets_per_ambiguous: usize,
    /// Number of users.
    pub num_users: usize,
    /// Sessions per user, inclusive range.
    pub sessions_per_user: (usize, usize),
    /// Queries per session, inclusive range.
    pub queries_per_session: (usize, usize),
    /// Probability a query receives a click.
    pub click_prob: f64,
    /// Probability a click lands on a random (off-facet) URL — the
    /// clickthrough noise the paper calls out in §III.
    pub click_noise: f64,
    /// Probability a session opens with a bare ambiguous head query (when
    /// its facet has one) — the query-uncertainty scenario.
    pub ambiguous_open_prob: f64,
    /// Probability a session picks the user's preferred facet of the chosen
    /// topic rather than a uniform facet.
    pub facet_loyalty: f64,
    /// Dirichlet concentration of user topic preferences; lower = more
    /// focused users, which personalization exploits.
    pub user_focus: f64,
    /// Strength of temporal preference drift in `[0, 1]`; a user's
    /// preference interpolates from its initial to a second Dirichlet draw
    /// over the log period.
    pub drift: f64,
    /// Log time span in seconds.
    pub time_span_secs: u64,
    /// Scenario knob — bursty arrivals. Probability in `[0, 1]` that a
    /// session start snaps to one of a handful of global burst windows
    /// instead of landing uniformly in the span. `0` (default) keeps the
    /// uniform schedule and draws nothing extra, so the default RNG stream
    /// is untouched.
    pub burstiness: f64,
    /// Scenario knob — cold-start users. The first
    /// `cold_start_fraction · num_users` users get only 1–2 sessions,
    /// regardless of `sessions_per_user` — too little history to train a
    /// profile on. `0` (default) disables.
    pub cold_start_fraction: f64,
    /// Scenario knob — adversarial click flood. This many extra spam users
    /// (appended after the organic ones) each repeat the first ambiguous
    /// head term over and over, always clicking the same URL of one target
    /// facet — an attempt to collapse the term's click distribution onto a
    /// single intent. `0` (default) disables.
    pub spam_users: usize,
    /// Sessions per spam user; ignored unless `spam_users > 0`.
    pub spam_repeats: usize,
    /// Scenario knob — vocabulary churn. When `> 0`, every facet draws a
    /// second, disjoint vocabulary and sessions starting after
    /// `vocab_churn_at · time_span_secs` phrase their queries from it.
    /// Ambiguous head terms and URLs stay stable across the epoch boundary
    /// so the click graph remains connected. `0` (default) disables.
    pub vocab_churn_at: f64,
    /// Scenario knob — population-level topic drift. When `> 0`, each
    /// user's start preference is deterministically re-weighted toward the
    /// first half of the topics and the end preference toward the second
    /// half (mixing weight = this value), giving the log a *global*
    /// topic-over-time signal the UPM's τ component can learn. Per-user
    /// drift alone averages out across the population; without
    /// polarization the fitted Beta time distributions stay near-flat.
    /// `0` (default) is an exact identity.
    pub drift_polarize: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 42,
            num_topics: 10,
            facets_per_topic: (2, 4),
            words_per_facet: 24,
            urls_per_facet: 12,
            num_ambiguous: 12,
            facets_per_ambiguous: 3,
            num_users: 300,
            sessions_per_user: (12, 28),
            queries_per_session: (1, 5),
            click_prob: 0.7,
            click_noise: 0.05,
            ambiguous_open_prob: 0.35,
            facet_loyalty: 0.75,
            user_focus: 0.25,
            drift: 0.35,
            time_span_secs: 120 * 24 * 3600,
            burstiness: 0.0,
            cold_start_fraction: 0.0,
            spam_users: 0,
            spam_repeats: 0,
            vocab_churn_at: 0.0,
            drift_polarize: 0.0,
        }
    }
}

impl SynthConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        SynthConfig {
            seed,
            num_topics: 4,
            facets_per_topic: (2, 3),
            words_per_facet: 10,
            urls_per_facet: 5,
            num_ambiguous: 4,
            facets_per_ambiguous: 2,
            num_users: 20,
            sessions_per_user: (4, 8),
            queries_per_session: (1, 4),
            ..SynthConfig::default()
        }
    }

    /// Shared base of the scenario packs — also the "default" pack the
    /// diversity paper-claims pins run against: small enough for CI smoke
    /// runs, big enough that the quality gates have statistical power.
    pub fn scenario_default(seed: u64) -> Self {
        SynthConfig {
            seed,
            num_topics: 6,
            facets_per_topic: (2, 3),
            words_per_facet: 12,
            urls_per_facet: 6,
            num_ambiguous: 8,
            facets_per_ambiguous: 3,
            num_users: 60,
            sessions_per_user: (8, 14),
            queries_per_session: (1, 4),
            ..SynthConfig::default()
        }
    }

    /// Bursty open-loop arrivals: most sessions snap to a handful of
    /// global burst windows, stressing tail latency under clustered load.
    pub fn scenario_bursty(seed: u64) -> Self {
        SynthConfig {
            burstiness: 0.7,
            ..SynthConfig::scenario_default(seed)
        }
    }

    /// Cold-start users: a third of the population has 1–2 sessions of
    /// history — not enough to train a profile on.
    pub fn scenario_cold_start(seed: u64) -> Self {
        SynthConfig {
            cold_start_fraction: 1.0 / 3.0,
            ..SynthConfig::scenario_default(seed)
        }
    }

    /// Spam/adversarial click flood: extra users hammer one ambiguous head
    /// term with repeated single-URL clicks, trying to collapse it onto a
    /// single intent.
    pub fn scenario_spam(seed: u64) -> Self {
        SynthConfig {
            spam_users: 8,
            spam_repeats: 16,
            ..SynthConfig::scenario_default(seed)
        }
    }

    /// Vocabulary churn: halfway through the span every facet swaps to a
    /// fresh disjoint vocabulary (heads and URLs stay stable).
    pub fn scenario_churn(seed: u64) -> Self {
        SynthConfig {
            vocab_churn_at: 0.5,
            ..SynthConfig::scenario_default(seed)
        }
    }

    /// Temporal topic drift: strong per-user drift plus population-level
    /// polarization (early topics → late topics), the pack where the UPM's
    /// τ time component must earn its keep.
    pub fn scenario_drift(seed: u64) -> Self {
        SynthConfig {
            drift: 0.95,
            drift_polarize: 0.9,
            user_focus: 0.2,
            sessions_per_user: (10, 18),
            ..SynthConfig::scenario_default(seed)
        }
    }
}

/// One facet (sense) of a topic: its vocabulary, URL pool and URL "titles".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Facet {
    /// Owning topic index.
    pub topic: usize,
    /// Taxonomy label, e.g. `facet03`.
    pub name: String,
    /// Facet-specific query vocabulary; `words\[0\]` is the facet head word.
    pub words: Vec<String>,
    /// Post-churn vocabulary (empty unless `vocab_churn_at > 0`); sessions
    /// after the churn epoch phrase queries from these words instead.
    pub churn_words: Vec<String>,
    /// Ambiguous head terms attached to this facet (also usable in queries).
    pub ambiguous: Vec<String>,
    /// Facet URL strings.
    pub urls: Vec<String>,
    /// Per-URL "high-quality field" terms (HTML title + document title per
    /// the paper's PPR metric) drawn from the facet vocabulary.
    pub url_fields: Vec<Vec<String>>,
}

/// The latent world: topics, facets and the ambiguous-term pool.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopicWorld {
    /// Taxonomy label per topic, e.g. `topic02`.
    pub topic_names: Vec<String>,
    /// All facets, global ids; `facets[f].topic` links back.
    pub facets: Vec<Facet>,
    /// Facet ids per topic.
    pub topic_facets: Vec<Vec<usize>>,
    /// `(term, facet ids)` for each ambiguous head term.
    pub ambiguous: Vec<(String, Vec<usize>)>,
}

impl TopicWorld {
    /// Builds the world deterministically from the config.
    pub fn generate(cfg: &SynthConfig, rng: &mut SmallRng) -> Self {
        assert!(cfg.num_topics >= 1, "need at least one topic");
        assert!(
            cfg.facets_per_topic.0 >= 1 && cfg.facets_per_topic.0 <= cfg.facets_per_topic.1,
            "invalid facets_per_topic range"
        );
        let mut word_counter = 0usize;
        let mut facets: Vec<Facet> = Vec::new();
        let mut topic_facets: Vec<Vec<usize>> = Vec::new();
        let mut topic_names = Vec::new();
        for t in 0..cfg.num_topics {
            topic_names.push(format!("topic{t:02}"));
            let n_facets = rng.gen_range(cfg.facets_per_topic.0..=cfg.facets_per_topic.1);
            let mut ids = Vec::new();
            for _ in 0..n_facets {
                let fid = facets.len();
                ids.push(fid);
                let words: Vec<String> = (0..cfg.words_per_facet)
                    .map(|_| {
                        word_counter += 1;
                        pseudo_word(rng, word_counter)
                    })
                    .collect();
                // Churn vocabulary: drawn only when the knob is on, so the
                // default RNG stream is untouched.
                let churn_words: Vec<String> = if cfg.vocab_churn_at > 0.0 {
                    (0..cfg.words_per_facet)
                        .map(|_| {
                            word_counter += 1;
                            pseudo_word(rng, word_counter)
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                let urls: Vec<String> = (0..cfg.urls_per_facet)
                    .map(|u| format!("www.{}-{}.com/page{}", words[0], fid, u))
                    .collect();
                let url_fields = (0..cfg.urls_per_facet)
                    .map(|_| {
                        // Title ≈ head word + 3–6 facet words.
                        let k = rng.gen_range(3..=6);
                        let mut fields = vec![words[0].clone()];
                        for _ in 0..k {
                            fields.push(words[rng.gen_range(0..words.len())].clone());
                        }
                        fields
                    })
                    .collect();
                facets.push(Facet {
                    topic: t,
                    name: format!("facet{fid:02}"),
                    words,
                    churn_words,
                    ambiguous: Vec::new(),
                    urls,
                    url_fields,
                });
            }
            topic_facets.push(ids);
        }
        // Ambiguous head terms spanning facets of different topics.
        let mut ambiguous = Vec::new();
        for _ in 0..cfg.num_ambiguous {
            word_counter += 1;
            let term = pseudo_word(rng, word_counter);
            let mut chosen: Vec<usize> = Vec::new();
            let mut chosen_topics: Vec<usize> = Vec::new();
            let want = cfg.facets_per_ambiguous.min(cfg.num_topics);
            let mut guard = 0;
            while chosen.len() < want && guard < 1000 {
                guard += 1;
                let f = rng.gen_range(0..facets.len());
                if !chosen.contains(&f) && !chosen_topics.contains(&facets[f].topic) {
                    chosen_topics.push(facets[f].topic);
                    chosen.push(f);
                }
            }
            for &f in &chosen {
                facets[f].ambiguous.push(term.clone());
            }
            ambiguous.push((term, chosen));
        }
        TopicWorld {
            topic_names,
            facets,
            topic_facets,
            ambiguous,
        }
    }

    /// Number of facets across all topics.
    pub fn num_facets(&self) -> usize {
        self.facets.len()
    }
}

/// Ground truth emitted alongside the log; indexes are parallel to the
/// interned [`QueryLog`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Facet that generated each record (parallel to `log.records()`).
    pub record_facet: Vec<u32>,
    /// The generator's sessions (the oracle the segmenter is tested
    /// against); records carry these ids in their `session` field.
    pub sessions: Vec<Session>,
    /// Facet of each session (parallel to `sessions`).
    pub session_facet: Vec<u32>,
    /// All facets that ever generated each distinct query
    /// (indexed by `QueryId`); ambiguous queries list several.
    pub query_facets: Vec<Vec<u32>>,
    /// Facet of each URL (indexed by `UrlId`).
    pub url_facet: Vec<u32>,
    /// "High-quality field" terms of each URL (indexed by `UrlId`).
    pub url_fields: Vec<Vec<String>>,
    /// Each user's *final* topic preference distribution.
    pub user_pref: Vec<Vec<f64>>,
    /// Each user's preferred facet per topic (global facet id).
    pub user_facet_pref: Vec<Vec<u32>>,
    /// Owning topic of each facet.
    pub facet_topic: Vec<u32>,
    /// ODP-style taxonomy: every query mapped to `Top/<topic>/<facet>` of
    /// its dominant generating facet.
    pub taxonomy: Taxonomy,
}

/// A generated log: the interned records plus the world and ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticLog {
    /// The interned query log (records already carry generator sessions).
    pub log: QueryLog,
    /// The latent topic world.
    pub world: TopicWorld,
    /// The oracle.
    pub truth: GroundTruth,
}

/// Generates a complete synthetic log from the configuration.
pub fn generate(cfg: &SynthConfig) -> SyntheticLog {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let world = TopicWorld::generate(cfg, &mut rng);

    // --- users -----------------------------------------------------------
    let mut pref_start = Vec::with_capacity(cfg.num_users);
    let mut pref_end = Vec::with_capacity(cfg.num_users);
    let mut facet_pref = Vec::with_capacity(cfg.num_users);
    for _ in 0..cfg.num_users {
        let mut a = dirichlet(&mut rng, cfg.num_topics, cfg.user_focus);
        let mut b = dirichlet(&mut rng, cfg.num_topics, cfg.user_focus);
        if cfg.drift_polarize > 0.0 {
            // Population-level drift: start preferences lean on the first
            // half of the topics, end preferences on the second half.
            // Deterministic re-weighting of the same draws — no extra RNG.
            polarize(&mut a, |k| k < cfg.num_topics / 2, cfg.drift_polarize);
            polarize(&mut b, |k| k >= cfg.num_topics / 2, cfg.drift_polarize);
        }
        pref_start.push(a);
        pref_end.push(b);
        let prefs: Vec<u32> = world
            .topic_facets
            .iter()
            .map(|fs| fs[rng.gen_range(0..fs.len())] as u32)
            .collect();
        facet_pref.push(prefs);
    }

    // Global burst windows for the bursty-arrival scenario (drawn only
    // when enabled — all users spike together, which is the point).
    let burst_centers: Vec<u64> = if cfg.burstiness > 0.0 {
        (0..8)
            .map(|_| rng.gen_range(0..cfg.time_span_secs))
            .collect()
    } else {
        Vec::new()
    };

    // --- sessions --------------------------------------------------------
    struct PendingEntry {
        entry: LogEntry,
        facet: u32,
        gen_session: usize,
    }
    let mut pending: Vec<PendingEntry> = Vec::new();
    let mut session_facets: Vec<u32> = Vec::new();
    let mut num_sessions = 0usize;

    let cold_users = (cfg.cold_start_fraction * cfg.num_users as f64) as usize;
    for u in 0..cfg.num_users {
        // Cold-start users carry only 1–2 sessions of history.
        let n_sessions = if u < cold_users {
            rng.gen_range(1..=2)
        } else {
            rng.gen_range(cfg.sessions_per_user.0..=cfg.sessions_per_user.1)
        };
        // Session start times, sorted, spaced at least an hour apart.
        let mut starts: Vec<u64> = (0..n_sessions)
            .map(|_| {
                if cfg.burstiness > 0.0 && rng.gen::<f64>() < cfg.burstiness {
                    // Snap into a global burst window (± an hour).
                    let c = burst_centers[rng.gen_range(0..burst_centers.len())];
                    (c + rng.gen_range(0..3600)).min(cfg.time_span_secs - 1)
                } else {
                    rng.gen_range(0..cfg.time_span_secs)
                }
            })
            .collect();
        starts.sort_unstable();
        for (si, &start) in starts.iter().enumerate() {
            let _ = si;
            let t_norm = start as f64 / cfg.time_span_secs as f64;
            // Interpolated preference with drift.
            let w = cfg.drift * t_norm;
            let pref: Vec<f64> = pref_start[u]
                .iter()
                .zip(&pref_end[u])
                .map(|(a, b)| (1.0 - w) * a + w * b)
                .collect();
            let topic = pqsda_sample(&pref, rng.gen::<f64>());
            let facet = if rng.gen::<f64>() < cfg.facet_loyalty {
                facet_pref[u][topic] as usize
            } else {
                let fs = &world.topic_facets[topic];
                fs[rng.gen_range(0..fs.len())]
            };
            let fobj = &world.facets[facet];
            // Vocabulary churn: sessions past the epoch boundary phrase
            // their queries from the facet's post-churn vocabulary.
            // Ambiguous heads and URLs are deliberately stable.
            let churned = cfg.vocab_churn_at > 0.0
                && (start as f64 / cfg.time_span_secs as f64) >= cfg.vocab_churn_at;
            let vocab = if churned {
                &fobj.churn_words
            } else {
                &fobj.words
            };
            let n_queries = rng.gen_range(cfg.queries_per_session.0..=cfg.queries_per_session.1);
            let gen_session = num_sessions;
            num_sessions += 1;
            session_facets.push(facet as u32);

            let mut ts = start;
            let mut prev_words: Vec<String> = Vec::new();
            for qi in 0..n_queries {
                let open_ambiguous = qi == 0
                    && !fobj.ambiguous.is_empty()
                    && rng.gen::<f64>() < cfg.ambiguous_open_prob;
                let words: Vec<String> = if open_ambiguous {
                    vec![fobj.ambiguous[rng.gen_range(0..fobj.ambiguous.len())].clone()]
                } else if prev_words.is_empty() {
                    // Fresh query: head word with high probability + 0–2 more.
                    let mut ws = Vec::new();
                    if rng.gen::<f64>() < 0.6 {
                        ws.push(vocab[0].clone());
                    }
                    let extra = rng.gen_range(1..=2);
                    for _ in 0..extra {
                        ws.push(vocab[rng.gen_range(0..vocab.len())].clone());
                    }
                    ws.dedup();
                    ws
                } else {
                    // Reformulation: keep one previous word, add a facet word.
                    let keep = prev_words[rng.gen_range(0..prev_words.len())].clone();
                    let mut ws = vec![keep];
                    let add = vocab[rng.gen_range(0..vocab.len())].clone();
                    if ws[0] != add {
                        ws.push(add);
                    }
                    ws
                };
                prev_words = words.clone();
                let query = words.join(" ");
                // Click: facet URL (Zipf-weighted) or noise.
                let clicked: Option<String> = if rng.gen::<f64>() < cfg.click_prob {
                    if rng.gen::<f64>() < cfg.click_noise {
                        let rf = rng.gen_range(0..world.facets.len());
                        let ru = rng.gen_range(0..world.facets[rf].urls.len());
                        Some(world.facets[rf].urls[ru].clone())
                    } else {
                        let ru = zipf_index(&mut rng, fobj.urls.len());
                        Some(fobj.urls[ru].clone())
                    }
                } else {
                    None
                };
                pending.push(PendingEntry {
                    entry: LogEntry::new(UserId::from_index(u), query, clicked.as_deref(), ts),
                    facet: facet as u32,
                    gen_session,
                });
                ts += rng.gen_range(15..120);
            }
        }
    }

    // --- adversarial click flood (gated) ----------------------------------
    // Spam users hammer the first ambiguous head term, every query clicking
    // the same URL of one target facet — an attempt to collapse the term's
    // click distribution onto a single intent.
    let spam_active = cfg.spam_users > 0 && cfg.spam_repeats > 0 && !world.ambiguous.is_empty();
    if spam_active {
        let (term, term_facets) = (world.ambiguous[0].0.clone(), world.ambiguous[0].1.clone());
        let target = term_facets[0];
        let spam_url = world.facets[target].urls[0].clone();
        for s in 0..cfg.spam_users {
            let u = cfg.num_users + s;
            let mut starts: Vec<u64> = (0..cfg.spam_repeats)
                .map(|_| rng.gen_range(0..cfg.time_span_secs))
                .collect();
            starts.sort_unstable();
            for &start in &starts {
                let gen_session = num_sessions;
                num_sessions += 1;
                session_facets.push(target as u32);
                let mut ts = start;
                for _ in 0..rng.gen_range(2..=4) {
                    pending.push(PendingEntry {
                        entry: LogEntry::new(
                            UserId::from_index(u),
                            term.as_str(),
                            Some(spam_url.as_str()),
                            ts,
                        ),
                        facet: target as u32,
                        gen_session,
                    });
                    ts += rng.gen_range(5..20);
                }
            }
            // Flat ground-truth preferences keep user-indexed tables
            // aligned for the appended spam users.
            pref_start.push(vec![1.0 / cfg.num_topics as f64; cfg.num_topics]);
            pref_end.push(vec![1.0 / cfg.num_topics as f64; cfg.num_topics]);
            facet_pref.push(
                world
                    .topic_facets
                    .iter()
                    .map(|fs| fs[0] as u32)
                    .collect::<Vec<u32>>(),
            );
        }
    }
    let total_users = cfg.num_users + if spam_active { cfg.spam_users } else { 0 };

    // --- intern, preserving ground-truth alignment ------------------------
    pending.sort_by_key(|p| p.entry.timestamp);
    let mut log = QueryLog::default();
    let mut record_facet: Vec<u32> = Vec::with_capacity(pending.len());
    let mut record_gen_session: Vec<usize> = Vec::with_capacity(pending.len());
    for p in &pending {
        let idx = log
            .push_entry(&p.entry)
            .expect("generator never emits empty queries");
        debug_assert_eq!(idx, record_facet.len());
        record_facet.push(p.facet);
        record_gen_session.push(p.gen_session);
    }

    // Sessions: map generator sessions to dense SessionIds in first-record
    // order and stamp the records.
    let mut session_map: Vec<Option<SessionId>> = vec![None; num_sessions];
    let mut sessions: Vec<Session> = Vec::new();
    let mut session_facet_out: Vec<u32> = Vec::new();
    for (i, &gs) in record_gen_session.iter().enumerate() {
        let rec = log.records()[i];
        let sid = match session_map[gs] {
            Some(sid) => sid,
            None => {
                let sid = SessionId::from_index(sessions.len());
                session_map[gs] = Some(sid);
                sessions.push(Session {
                    id: sid,
                    user: rec.user,
                    record_indices: Vec::new(),
                    queries: Vec::new(),
                    start: rec.timestamp,
                    end: rec.timestamp,
                });
                session_facet_out.push(session_facets[gs]);
                sid
            }
        };
        let s = &mut sessions[sid.index()];
        s.record_indices.push(i);
        if !s.queries.contains(&rec.query) {
            s.queries.push(rec.query);
        }
        s.start = s.start.min(rec.timestamp);
        s.end = s.end.max(rec.timestamp);
        log.records_mut()[i].session = Some(sid);
    }

    // Query → facet sets, URL ground truth, taxonomy.
    let mut query_facets: Vec<Vec<u32>> = vec![Vec::new(); log.num_queries()];
    let mut query_facet_counts: Vec<std::collections::HashMap<u32, u32>> =
        vec![std::collections::HashMap::new(); log.num_queries()];
    for (i, r) in log.records().iter().enumerate() {
        let f = record_facet[i];
        let qf = &mut query_facets[r.query.index()];
        if !qf.contains(&f) {
            qf.push(f);
        }
        *query_facet_counts[r.query.index()].entry(f).or_insert(0) += 1;
    }
    let mut url_facet = vec![u32::MAX; log.num_urls()];
    let mut url_fields: Vec<Vec<String>> = vec![Vec::new(); log.num_urls()];
    for (fid, facet) in world.facets.iter().enumerate() {
        for (ui, url) in facet.urls.iter().enumerate() {
            // Only URLs that were actually clicked exist in the log.
            if let Some(uid) = lookup_url(&log, url) {
                url_facet[uid.index()] = fid as u32;
                url_fields[uid.index()] = facet.url_fields[ui].clone();
            }
        }
    }

    let mut taxonomy = Taxonomy::new();
    for q in 0..log.num_queries() {
        if let Some((&facet, _)) = query_facet_counts[q]
            .iter()
            .max_by_key(|&(&f, &c)| (c, std::cmp::Reverse(f)))
        {
            let f = &world.facets[facet as usize];
            taxonomy.assign(
                crate::ids::QueryId::from_index(q),
                &["Top", &world.topic_names[f.topic], &f.name],
            );
        }
    }

    let facet_topic: Vec<u32> = world.facets.iter().map(|f| f.topic as u32).collect();
    // Final preference = drift-interpolated at t = 1.
    let user_pref: Vec<Vec<f64>> = (0..total_users)
        .map(|u| {
            pref_start[u]
                .iter()
                .zip(&pref_end[u])
                .map(|(a, b)| (1.0 - cfg.drift) * a + cfg.drift * b)
                .collect()
        })
        .collect();

    SyntheticLog {
        truth: GroundTruth {
            record_facet,
            sessions,
            session_facet: session_facet_out,
            query_facets,
            url_facet,
            url_fields,
            user_pref,
            user_facet_pref: facet_pref,
            facet_topic,
            taxonomy,
        },
        world,
        log,
    }
}

/// Shifts probability mass toward the topics selected by `favored`:
/// the favored set's total mass becomes `p + (1 − p)·s` (where `s` was its
/// original mass), the rest scales by `1 − p`. `p = 0` is an exact
/// identity; the result still sums to one.
fn polarize(v: &mut [f64], favored: impl Fn(usize) -> bool, p: f64) {
    let s: f64 = v
        .iter()
        .enumerate()
        .filter(|&(k, _)| favored(k))
        .map(|(_, &x)| x)
        .sum();
    if s <= 0.0 || s >= 1.0 {
        return;
    }
    let boost = (p + (1.0 - p) * s) / s;
    for (k, x) in v.iter_mut().enumerate() {
        *x *= if favored(k) { boost } else { 1.0 - p };
    }
}

impl SyntheticLog {
    /// A stable FNV-1a fingerprint over every observable byte of the
    /// generated log — records, interned query/URL texts and the ground
    /// truth. Two logs with equal fingerprints are bit-identical for every
    /// consumer; the scenario determinism proptests compare these across
    /// runs and thread counts.
    pub fn fingerprint(&self) -> u64 {
        use crate::hash::{fnv1a_bytes, fnv1a_extend, fnv1a_u64};
        use crate::ids::QueryId;
        let mut h = fnv1a_bytes(b"synthlog-v1");
        for r in self.log.records() {
            h = fnv1a_u64(h, r.user.index() as u64);
            h = fnv1a_u64(h, r.query.index() as u64);
            h = fnv1a_u64(h, r.click.map_or(0, |u| u.index() as u64 + 1));
            h = fnv1a_u64(h, r.timestamp);
            h = fnv1a_u64(h, r.session.map_or(0, |s| s.index() as u64 + 1));
        }
        for q in 0..self.log.num_queries() {
            h = fnv1a_extend(h, self.log.query_text(QueryId::from_index(q)).as_bytes());
        }
        for u in 0..self.log.num_urls() {
            h = fnv1a_extend(h, self.log.url_text(UrlId::from_index(u)).as_bytes());
        }
        for &f in &self.truth.record_facet {
            h = fnv1a_u64(h, f as u64);
        }
        for &f in &self.truth.session_facet {
            h = fnv1a_u64(h, f as u64);
        }
        for fs in &self.truth.query_facets {
            for &f in fs {
                h = fnv1a_u64(h, f as u64 + 1);
            }
            h = fnv1a_u64(h, u64::MAX);
        }
        for p in &self.truth.user_pref {
            for &x in p {
                h = fnv1a_u64(h, x.to_bits());
            }
        }
        h
    }
}

fn lookup_url(log: &QueryLog, url: &str) -> Option<UrlId> {
    // QueryLog has no public URL lookup by design (URLs are write-mostly);
    // a linear probe over the interner keeps the generator self-contained.
    (0..log.num_urls())
        .map(UrlId::from_index)
        .find(|&u| log.url_text(u) == url)
}

/// A pronounceable pseudo-word with a uniqueness suffix, e.g. `korita17`.
fn pseudo_word(rng: &mut SmallRng, counter: usize) -> String {
    const SYL: [&str; 16] = [
        "ba", "ko", "ri", "ta", "mu", "ne", "so", "lu", "pi", "da", "ve", "zo", "ga", "hi", "fe",
        "wa",
    ];
    let n = rng.gen_range(2..=3);
    let mut w = String::new();
    for _ in 0..n {
        w.push_str(SYL[rng.gen_range(0..SYL.len())]);
    }
    w.push_str(&counter.to_string());
    w
}

/// A symmetric Dirichlet(concentration) sample via Gamma draws
/// (Marsaglia–Tsang, with the shape<1 boost).
fn dirichlet(rng: &mut SmallRng, k: usize, concentration: f64) -> Vec<f64> {
    let mut v: Vec<f64> = (0..k).map(|_| gamma_sample(rng, concentration)).collect();
    let s: f64 = v.iter().sum();
    if s <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    for x in &mut v {
        *x /= s;
    }
    v
}

/// Gamma(shape, 1) sampler (Marsaglia & Tsang 2000).
fn gamma_sample(rng: &mut SmallRng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma_sample: shape must be positive");
    if shape < 1.0 {
        // Boost: G(a) = G(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Zipf-weighted index in `0..n` (rank-1 most likely).
fn zipf_index(rng: &mut SmallRng, n: usize) -> usize {
    debug_assert!(n > 0);
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / r as f64).collect();
    pqsda_sample(&weights, rng.gen::<f64>())
}

/// Categorical sample from non-negative weights given a uniform draw
/// (duplicated from `pqsda-linalg` to keep this crate dependency-light).
fn pqsda_sample(weights: &[f64], u: f64) -> usize {
    let total: f64 = weights.iter().sum();
    let mut target = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticLog {
        generate(&SynthConfig::tiny(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SynthConfig::tiny(7));
        let b = generate(&SynthConfig::tiny(7));
        assert_eq!(a.log.records().len(), b.log.records().len());
        assert_eq!(a.truth.record_facet, b.truth.record_facet);
        assert_eq!(a.log.num_queries(), b.log.num_queries());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::tiny(7));
        let b = generate(&SynthConfig::tiny(8));
        // Overwhelmingly likely to produce different record counts or facets.
        assert!(
            a.log.records().len() != b.log.records().len()
                || a.truth.record_facet != b.truth.record_facet
        );
    }

    #[test]
    fn ground_truth_is_aligned() {
        let s = small();
        assert_eq!(s.truth.record_facet.len(), s.log.records().len());
        assert_eq!(s.truth.query_facets.len(), s.log.num_queries());
        assert_eq!(s.truth.url_facet.len(), s.log.num_urls());
        assert_eq!(s.truth.url_fields.len(), s.log.num_urls());
        assert_eq!(s.truth.user_pref.len(), 20);
        assert_eq!(s.truth.session_facet.len(), s.truth.sessions.len());
    }

    #[test]
    fn every_record_has_a_session() {
        let s = small();
        assert!(s.log.records().iter().all(|r| r.session.is_some()));
        // And sessions index their records consistently.
        for sess in &s.truth.sessions {
            for &i in &sess.record_indices {
                assert_eq!(s.log.records()[i].session, Some(sess.id));
                assert_eq!(s.log.records()[i].user, sess.user);
            }
        }
    }

    #[test]
    fn sessions_are_single_facet_and_single_user() {
        let s = small();
        for (sess, &facet) in s.truth.sessions.iter().zip(&s.truth.session_facet) {
            for &i in &sess.record_indices {
                assert_eq!(s.truth.record_facet[i], facet);
            }
        }
    }

    #[test]
    fn ambiguous_terms_span_topics() {
        let s = small();
        assert!(!s.world.ambiguous.is_empty());
        for (term, facets) in &s.world.ambiguous {
            assert!(!term.is_empty());
            assert!(facets.len() >= 2, "ambiguous term in only {facets:?}");
            let topics: std::collections::HashSet<usize> =
                facets.iter().map(|&f| s.world.facets[f].topic).collect();
            assert_eq!(
                topics.len(),
                facets.len(),
                "facets must be in distinct topics"
            );
        }
    }

    #[test]
    fn some_queries_are_ambiguous() {
        let s = small();
        let multi = s
            .truth
            .query_facets
            .iter()
            .filter(|fs| fs.len() >= 2)
            .count();
        assert!(multi > 0, "no ambiguous queries were generated");
    }

    #[test]
    fn clicked_urls_have_ground_truth() {
        let s = small();
        for u in 0..s.log.num_urls() {
            assert_ne!(s.truth.url_facet[u], u32::MAX, "url {u} missing facet");
            assert!(!s.truth.url_fields[u].is_empty(), "url {u} missing fields");
        }
    }

    #[test]
    fn taxonomy_covers_every_query() {
        let s = small();
        assert_eq!(s.truth.taxonomy.assigned_count(), s.log.num_queries());
        // Paths are Top/<topic>/<facet> — depth 3.
        for q in 0..s.log.num_queries() {
            let p = s
                .truth
                .taxonomy
                .category(crate::ids::QueryId::from_index(q))
                .unwrap();
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn user_preferences_are_distributions() {
        let s = small();
        for pref in &s.truth.user_pref {
            assert_eq!(pref.len(), 4);
            assert!((pref.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(pref.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn click_volume_matches_probability_roughly() {
        let s = generate(&SynthConfig {
            num_users: 100,
            ..SynthConfig::tiny(3)
        });
        let clicks = s.log.records().iter().filter(|r| r.click.is_some()).count();
        let frac = clicks as f64 / s.log.records().len() as f64;
        assert!((frac - 0.7).abs() < 0.08, "click fraction {frac}");
    }

    #[test]
    fn records_are_chronological() {
        let s = small();
        let ts: Vec<u64> = s.log.records().iter().map(|r| r.timestamp).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn fingerprint_separates_logs_and_is_stable() {
        let a = generate(&SynthConfig::tiny(7));
        let b = generate(&SynthConfig::tiny(7));
        let c = generate(&SynthConfig::tiny(8));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn inert_scenario_knobs_leave_the_stream_untouched() {
        // Explicit zeros must be byte-identical to the plain default path.
        let plain = generate(&SynthConfig::tiny(7));
        let zeroed = generate(&SynthConfig {
            burstiness: 0.0,
            cold_start_fraction: 0.0,
            spam_users: 0,
            spam_repeats: 0,
            vocab_churn_at: 0.0,
            drift_polarize: 0.0,
            ..SynthConfig::tiny(7)
        });
        assert_eq!(plain.fingerprint(), zeroed.fingerprint());
    }

    #[test]
    fn bursty_pack_clusters_session_starts() {
        let median_gap = |s: &SyntheticLog| {
            let mut starts: Vec<u64> = s.truth.sessions.iter().map(|x| x.start).collect();
            starts.sort_unstable();
            let mut gaps: Vec<u64> = starts.windows(2).map(|w| w[1] - w[0]).collect();
            gaps.sort_unstable();
            gaps[gaps.len() / 2]
        };
        let bursty = generate(&SynthConfig::scenario_bursty(5));
        let uniform = generate(&SynthConfig::scenario_default(5));
        assert!(
            median_gap(&bursty) * 4 < median_gap(&uniform),
            "bursty {} vs uniform {}",
            median_gap(&bursty),
            median_gap(&uniform)
        );
    }

    #[test]
    fn cold_start_pack_starves_cold_users() {
        let cfg = SynthConfig::scenario_cold_start(5);
        let s = generate(&cfg);
        let cold = (cfg.cold_start_fraction * cfg.num_users as f64) as usize;
        let mut sessions_of = vec![0usize; cfg.num_users];
        for sess in &s.truth.sessions {
            sessions_of[sess.user.index()] += 1;
        }
        for (u, &n) in sessions_of.iter().enumerate() {
            if u < cold {
                assert!(n <= 2, "cold user {u} has {n} sessions");
            } else {
                assert!(
                    n >= cfg.sessions_per_user.0,
                    "warm user {u} has only {n} sessions"
                );
            }
        }
    }

    #[test]
    fn spam_pack_floods_one_term_with_one_url() {
        let cfg = SynthConfig::scenario_spam(5);
        let s = generate(&cfg);
        assert_eq!(s.log.num_users(), cfg.num_users + cfg.spam_users);
        assert_eq!(s.truth.user_pref.len(), cfg.num_users + cfg.spam_users);
        let term = &s.world.ambiguous[0].0;
        let spam_q = s.log.find_query(term).expect("spam term interned");
        let mut spam_records = 0usize;
        let mut clicks = std::collections::HashSet::new();
        for r in s.log.records() {
            if r.user.index() >= cfg.num_users {
                spam_records += 1;
                assert_eq!(r.query, spam_q, "spam users emit only the flood term");
                clicks.insert(r.click.expect("every spam query clicks"));
            }
        }
        assert!(spam_records >= cfg.spam_users * cfg.spam_repeats * 2);
        assert_eq!(clicks.len(), 1, "flood clicks a single URL");
    }

    #[test]
    fn churn_pack_swaps_vocabulary_at_the_epoch() {
        let cfg = SynthConfig::scenario_churn(5);
        let s = generate(&cfg);
        let epoch = (cfg.vocab_churn_at * cfg.time_span_secs as f64) as u64;
        for f in &s.world.facets {
            assert_eq!(f.churn_words.len(), cfg.words_per_facet);
            assert!(f.churn_words.iter().all(|w| !f.words.contains(w)));
        }
        let churn_vocab: std::collections::HashSet<&str> = s
            .world
            .facets
            .iter()
            .flat_map(|f| f.churn_words.iter().map(String::as_str))
            .collect();
        let mut post_epoch_churn_records = 0usize;
        for r in s.log.records() {
            let has_churn_word = s
                .log
                .query_text(r.query)
                .split(' ')
                .any(|w| churn_vocab.contains(w));
            if r.timestamp < epoch {
                assert!(
                    !has_churn_word,
                    "churn word appeared before the epoch: {}",
                    s.log.query_text(r.query)
                );
            } else if has_churn_word {
                post_epoch_churn_records += 1;
            }
        }
        assert!(post_epoch_churn_records > 0, "churn vocabulary never used");
    }

    #[test]
    fn drift_pack_polarizes_final_preferences() {
        let cfg = SynthConfig::scenario_drift(5);
        let s = generate(&cfg);
        let half = cfg.num_topics / 2;
        // user_pref is the drift-interpolated preference at t = 1: with
        // strong polarization the population's late mass dominates.
        let late_mass: f64 = s
            .truth
            .user_pref
            .iter()
            .map(|p| p[half..].iter().sum::<f64>())
            .sum::<f64>()
            / s.truth.user_pref.len() as f64;
        assert!(late_mass > 0.6, "late-topic mass {late_mass}");
        // And every preference is still a distribution.
        for p in &s.truth.user_pref {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn polarize_zero_is_identity_and_mass_is_preserved() {
        let mut v = vec![0.4, 0.3, 0.2, 0.1];
        let orig = v.clone();
        polarize(&mut v, |k| k < 2, 0.0);
        assert_eq!(v, orig);
        polarize(&mut v, |k| k < 2, 0.8);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[0] + v[1] > 0.9, "favored mass {}", v[0] + v[1]);
    }

    #[test]
    fn gamma_sampler_mean_is_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &shape in &[0.3f64, 1.0, 4.5] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(0.5),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = dirichlet(&mut rng, 8, 0.2);
        assert_eq!(d.len(), 8);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[zipf_index(&mut rng, 5)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }
}
