//! Synthetic query-log generator — the documented substitution for the
//! paper's proprietary commercial log (DESIGN.md §4).
//!
//! The generator builds a *topic world*: a set of latent topics, each with
//! several **facets** (distinct interpretations/senses), facet-specific word
//! and URL vocabularies, and a pool of **ambiguous head terms** that belong
//! to facets of *different* topics — the paper's "sun" (solar system vs. Sun
//! Microsystems vs. the UK newspaper). Users carry Dirichlet topic
//! preferences with temporal drift and a per-topic preferred facet; sessions
//! pick a facet (user-biased), emit a chain of lexically coherent
//! reformulation queries, and click facet-specific URLs with configurable
//! noise.
//!
//! The output carries complete ground truth — which facet generated every
//! record, every query's facet set, every URL's facet and "high-quality
//! field" terms, each user's true preference — which the evaluation crate
//! uses as its oracle (ODP categories, page similarity, HPR rater).

use crate::entry::{LogEntry, QueryLog};
use crate::ids::{SessionId, UrlId, UserId};
use crate::session::Session;
use crate::taxonomy::Taxonomy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the topic world and of log generation. Defaults give a
/// laptop-scale log (hundreds of users, tens of thousands of records) that
/// preserves the structural properties the paper's arguments rest on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SynthConfig {
    /// RNG seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Number of latent topics.
    pub num_topics: usize,
    /// Facets per topic, inclusive range.
    pub facets_per_topic: (usize, usize),
    /// Facet-specific vocabulary size.
    pub words_per_facet: usize,
    /// Facet-specific URL pool size.
    pub urls_per_facet: usize,
    /// Number of ambiguous head terms shared across topics.
    pub num_ambiguous: usize,
    /// How many facets each ambiguous term belongs to.
    pub facets_per_ambiguous: usize,
    /// Number of users.
    pub num_users: usize,
    /// Sessions per user, inclusive range.
    pub sessions_per_user: (usize, usize),
    /// Queries per session, inclusive range.
    pub queries_per_session: (usize, usize),
    /// Probability a query receives a click.
    pub click_prob: f64,
    /// Probability a click lands on a random (off-facet) URL — the
    /// clickthrough noise the paper calls out in §III.
    pub click_noise: f64,
    /// Probability a session opens with a bare ambiguous head query (when
    /// its facet has one) — the query-uncertainty scenario.
    pub ambiguous_open_prob: f64,
    /// Probability a session picks the user's preferred facet of the chosen
    /// topic rather than a uniform facet.
    pub facet_loyalty: f64,
    /// Dirichlet concentration of user topic preferences; lower = more
    /// focused users, which personalization exploits.
    pub user_focus: f64,
    /// Strength of temporal preference drift in `[0, 1]`; a user's
    /// preference interpolates from its initial to a second Dirichlet draw
    /// over the log period.
    pub drift: f64,
    /// Log time span in seconds.
    pub time_span_secs: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 42,
            num_topics: 10,
            facets_per_topic: (2, 4),
            words_per_facet: 24,
            urls_per_facet: 12,
            num_ambiguous: 12,
            facets_per_ambiguous: 3,
            num_users: 300,
            sessions_per_user: (12, 28),
            queries_per_session: (1, 5),
            click_prob: 0.7,
            click_noise: 0.05,
            ambiguous_open_prob: 0.35,
            facet_loyalty: 0.75,
            user_focus: 0.25,
            drift: 0.35,
            time_span_secs: 120 * 24 * 3600,
        }
    }
}

impl SynthConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        SynthConfig {
            seed,
            num_topics: 4,
            facets_per_topic: (2, 3),
            words_per_facet: 10,
            urls_per_facet: 5,
            num_ambiguous: 4,
            facets_per_ambiguous: 2,
            num_users: 20,
            sessions_per_user: (4, 8),
            queries_per_session: (1, 4),
            ..SynthConfig::default()
        }
    }
}

/// One facet (sense) of a topic: its vocabulary, URL pool and URL "titles".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Facet {
    /// Owning topic index.
    pub topic: usize,
    /// Taxonomy label, e.g. `facet03`.
    pub name: String,
    /// Facet-specific query vocabulary; `words\[0\]` is the facet head word.
    pub words: Vec<String>,
    /// Ambiguous head terms attached to this facet (also usable in queries).
    pub ambiguous: Vec<String>,
    /// Facet URL strings.
    pub urls: Vec<String>,
    /// Per-URL "high-quality field" terms (HTML title + document title per
    /// the paper's PPR metric) drawn from the facet vocabulary.
    pub url_fields: Vec<Vec<String>>,
}

/// The latent world: topics, facets and the ambiguous-term pool.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopicWorld {
    /// Taxonomy label per topic, e.g. `topic02`.
    pub topic_names: Vec<String>,
    /// All facets, global ids; `facets[f].topic` links back.
    pub facets: Vec<Facet>,
    /// Facet ids per topic.
    pub topic_facets: Vec<Vec<usize>>,
    /// `(term, facet ids)` for each ambiguous head term.
    pub ambiguous: Vec<(String, Vec<usize>)>,
}

impl TopicWorld {
    /// Builds the world deterministically from the config.
    pub fn generate(cfg: &SynthConfig, rng: &mut SmallRng) -> Self {
        assert!(cfg.num_topics >= 1, "need at least one topic");
        assert!(
            cfg.facets_per_topic.0 >= 1 && cfg.facets_per_topic.0 <= cfg.facets_per_topic.1,
            "invalid facets_per_topic range"
        );
        let mut word_counter = 0usize;
        let mut facets: Vec<Facet> = Vec::new();
        let mut topic_facets: Vec<Vec<usize>> = Vec::new();
        let mut topic_names = Vec::new();
        for t in 0..cfg.num_topics {
            topic_names.push(format!("topic{t:02}"));
            let n_facets = rng.gen_range(cfg.facets_per_topic.0..=cfg.facets_per_topic.1);
            let mut ids = Vec::new();
            for _ in 0..n_facets {
                let fid = facets.len();
                ids.push(fid);
                let words: Vec<String> = (0..cfg.words_per_facet)
                    .map(|_| {
                        word_counter += 1;
                        pseudo_word(rng, word_counter)
                    })
                    .collect();
                let urls: Vec<String> = (0..cfg.urls_per_facet)
                    .map(|u| format!("www.{}-{}.com/page{}", words[0], fid, u))
                    .collect();
                let url_fields = (0..cfg.urls_per_facet)
                    .map(|_| {
                        // Title ≈ head word + 3–6 facet words.
                        let k = rng.gen_range(3..=6);
                        let mut fields = vec![words[0].clone()];
                        for _ in 0..k {
                            fields.push(words[rng.gen_range(0..words.len())].clone());
                        }
                        fields
                    })
                    .collect();
                facets.push(Facet {
                    topic: t,
                    name: format!("facet{fid:02}"),
                    words,
                    ambiguous: Vec::new(),
                    urls,
                    url_fields,
                });
            }
            topic_facets.push(ids);
        }
        // Ambiguous head terms spanning facets of different topics.
        let mut ambiguous = Vec::new();
        for _ in 0..cfg.num_ambiguous {
            word_counter += 1;
            let term = pseudo_word(rng, word_counter);
            let mut chosen: Vec<usize> = Vec::new();
            let mut chosen_topics: Vec<usize> = Vec::new();
            let want = cfg.facets_per_ambiguous.min(cfg.num_topics);
            let mut guard = 0;
            while chosen.len() < want && guard < 1000 {
                guard += 1;
                let f = rng.gen_range(0..facets.len());
                if !chosen.contains(&f) && !chosen_topics.contains(&facets[f].topic) {
                    chosen_topics.push(facets[f].topic);
                    chosen.push(f);
                }
            }
            for &f in &chosen {
                facets[f].ambiguous.push(term.clone());
            }
            ambiguous.push((term, chosen));
        }
        TopicWorld {
            topic_names,
            facets,
            topic_facets,
            ambiguous,
        }
    }

    /// Number of facets across all topics.
    pub fn num_facets(&self) -> usize {
        self.facets.len()
    }
}

/// Ground truth emitted alongside the log; indexes are parallel to the
/// interned [`QueryLog`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Facet that generated each record (parallel to `log.records()`).
    pub record_facet: Vec<u32>,
    /// The generator's sessions (the oracle the segmenter is tested
    /// against); records carry these ids in their `session` field.
    pub sessions: Vec<Session>,
    /// Facet of each session (parallel to `sessions`).
    pub session_facet: Vec<u32>,
    /// All facets that ever generated each distinct query
    /// (indexed by `QueryId`); ambiguous queries list several.
    pub query_facets: Vec<Vec<u32>>,
    /// Facet of each URL (indexed by `UrlId`).
    pub url_facet: Vec<u32>,
    /// "High-quality field" terms of each URL (indexed by `UrlId`).
    pub url_fields: Vec<Vec<String>>,
    /// Each user's *final* topic preference distribution.
    pub user_pref: Vec<Vec<f64>>,
    /// Each user's preferred facet per topic (global facet id).
    pub user_facet_pref: Vec<Vec<u32>>,
    /// Owning topic of each facet.
    pub facet_topic: Vec<u32>,
    /// ODP-style taxonomy: every query mapped to `Top/<topic>/<facet>` of
    /// its dominant generating facet.
    pub taxonomy: Taxonomy,
}

/// A generated log: the interned records plus the world and ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticLog {
    /// The interned query log (records already carry generator sessions).
    pub log: QueryLog,
    /// The latent topic world.
    pub world: TopicWorld,
    /// The oracle.
    pub truth: GroundTruth,
}

/// Generates a complete synthetic log from the configuration.
pub fn generate(cfg: &SynthConfig) -> SyntheticLog {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let world = TopicWorld::generate(cfg, &mut rng);

    // --- users -----------------------------------------------------------
    let mut pref_start = Vec::with_capacity(cfg.num_users);
    let mut pref_end = Vec::with_capacity(cfg.num_users);
    let mut facet_pref = Vec::with_capacity(cfg.num_users);
    for _ in 0..cfg.num_users {
        pref_start.push(dirichlet(&mut rng, cfg.num_topics, cfg.user_focus));
        pref_end.push(dirichlet(&mut rng, cfg.num_topics, cfg.user_focus));
        let prefs: Vec<u32> = world
            .topic_facets
            .iter()
            .map(|fs| fs[rng.gen_range(0..fs.len())] as u32)
            .collect();
        facet_pref.push(prefs);
    }

    // --- sessions --------------------------------------------------------
    struct PendingEntry {
        entry: LogEntry,
        facet: u32,
        gen_session: usize,
    }
    let mut pending: Vec<PendingEntry> = Vec::new();
    let mut session_facets: Vec<u32> = Vec::new();
    let mut num_sessions = 0usize;

    for u in 0..cfg.num_users {
        let n_sessions = rng.gen_range(cfg.sessions_per_user.0..=cfg.sessions_per_user.1);
        // Session start times, sorted, spaced at least an hour apart.
        let mut starts: Vec<u64> = (0..n_sessions)
            .map(|_| rng.gen_range(0..cfg.time_span_secs))
            .collect();
        starts.sort_unstable();
        for (si, &start) in starts.iter().enumerate() {
            let _ = si;
            let t_norm = start as f64 / cfg.time_span_secs as f64;
            // Interpolated preference with drift.
            let w = cfg.drift * t_norm;
            let pref: Vec<f64> = pref_start[u]
                .iter()
                .zip(&pref_end[u])
                .map(|(a, b)| (1.0 - w) * a + w * b)
                .collect();
            let topic = pqsda_sample(&pref, rng.gen::<f64>());
            let facet = if rng.gen::<f64>() < cfg.facet_loyalty {
                facet_pref[u][topic] as usize
            } else {
                let fs = &world.topic_facets[topic];
                fs[rng.gen_range(0..fs.len())]
            };
            let fobj = &world.facets[facet];
            let n_queries = rng.gen_range(cfg.queries_per_session.0..=cfg.queries_per_session.1);
            let gen_session = num_sessions;
            num_sessions += 1;
            session_facets.push(facet as u32);

            let mut ts = start;
            let mut prev_words: Vec<String> = Vec::new();
            for qi in 0..n_queries {
                let open_ambiguous = qi == 0
                    && !fobj.ambiguous.is_empty()
                    && rng.gen::<f64>() < cfg.ambiguous_open_prob;
                let words: Vec<String> = if open_ambiguous {
                    vec![fobj.ambiguous[rng.gen_range(0..fobj.ambiguous.len())].clone()]
                } else if prev_words.is_empty() {
                    // Fresh query: head word with high probability + 0–2 more.
                    let mut ws = Vec::new();
                    if rng.gen::<f64>() < 0.6 {
                        ws.push(fobj.words[0].clone());
                    }
                    let extra = rng.gen_range(1..=2);
                    for _ in 0..extra {
                        ws.push(fobj.words[rng.gen_range(0..fobj.words.len())].clone());
                    }
                    ws.dedup();
                    ws
                } else {
                    // Reformulation: keep one previous word, add a facet word.
                    let keep = prev_words[rng.gen_range(0..prev_words.len())].clone();
                    let mut ws = vec![keep];
                    let add = fobj.words[rng.gen_range(0..fobj.words.len())].clone();
                    if ws[0] != add {
                        ws.push(add);
                    }
                    ws
                };
                prev_words = words.clone();
                let query = words.join(" ");
                // Click: facet URL (Zipf-weighted) or noise.
                let clicked: Option<String> = if rng.gen::<f64>() < cfg.click_prob {
                    if rng.gen::<f64>() < cfg.click_noise {
                        let rf = rng.gen_range(0..world.facets.len());
                        let ru = rng.gen_range(0..world.facets[rf].urls.len());
                        Some(world.facets[rf].urls[ru].clone())
                    } else {
                        let ru = zipf_index(&mut rng, fobj.urls.len());
                        Some(fobj.urls[ru].clone())
                    }
                } else {
                    None
                };
                pending.push(PendingEntry {
                    entry: LogEntry::new(UserId::from_index(u), query, clicked.as_deref(), ts),
                    facet: facet as u32,
                    gen_session,
                });
                ts += rng.gen_range(15..120);
            }
        }
    }

    // --- intern, preserving ground-truth alignment ------------------------
    pending.sort_by_key(|p| p.entry.timestamp);
    let mut log = QueryLog::default();
    let mut record_facet: Vec<u32> = Vec::with_capacity(pending.len());
    let mut record_gen_session: Vec<usize> = Vec::with_capacity(pending.len());
    for p in &pending {
        let idx = log
            .push_entry(&p.entry)
            .expect("generator never emits empty queries");
        debug_assert_eq!(idx, record_facet.len());
        record_facet.push(p.facet);
        record_gen_session.push(p.gen_session);
    }

    // Sessions: map generator sessions to dense SessionIds in first-record
    // order and stamp the records.
    let mut session_map: Vec<Option<SessionId>> = vec![None; num_sessions];
    let mut sessions: Vec<Session> = Vec::new();
    let mut session_facet_out: Vec<u32> = Vec::new();
    for (i, &gs) in record_gen_session.iter().enumerate() {
        let rec = log.records()[i];
        let sid = match session_map[gs] {
            Some(sid) => sid,
            None => {
                let sid = SessionId::from_index(sessions.len());
                session_map[gs] = Some(sid);
                sessions.push(Session {
                    id: sid,
                    user: rec.user,
                    record_indices: Vec::new(),
                    queries: Vec::new(),
                    start: rec.timestamp,
                    end: rec.timestamp,
                });
                session_facet_out.push(session_facets[gs]);
                sid
            }
        };
        let s = &mut sessions[sid.index()];
        s.record_indices.push(i);
        if !s.queries.contains(&rec.query) {
            s.queries.push(rec.query);
        }
        s.start = s.start.min(rec.timestamp);
        s.end = s.end.max(rec.timestamp);
        log.records_mut()[i].session = Some(sid);
    }

    // Query → facet sets, URL ground truth, taxonomy.
    let mut query_facets: Vec<Vec<u32>> = vec![Vec::new(); log.num_queries()];
    let mut query_facet_counts: Vec<std::collections::HashMap<u32, u32>> =
        vec![std::collections::HashMap::new(); log.num_queries()];
    for (i, r) in log.records().iter().enumerate() {
        let f = record_facet[i];
        let qf = &mut query_facets[r.query.index()];
        if !qf.contains(&f) {
            qf.push(f);
        }
        *query_facet_counts[r.query.index()].entry(f).or_insert(0) += 1;
    }
    let mut url_facet = vec![u32::MAX; log.num_urls()];
    let mut url_fields: Vec<Vec<String>> = vec![Vec::new(); log.num_urls()];
    for (fid, facet) in world.facets.iter().enumerate() {
        for (ui, url) in facet.urls.iter().enumerate() {
            // Only URLs that were actually clicked exist in the log.
            if let Some(uid) = lookup_url(&log, url) {
                url_facet[uid.index()] = fid as u32;
                url_fields[uid.index()] = facet.url_fields[ui].clone();
            }
        }
    }

    let mut taxonomy = Taxonomy::new();
    for q in 0..log.num_queries() {
        if let Some((&facet, _)) = query_facet_counts[q]
            .iter()
            .max_by_key(|&(&f, &c)| (c, std::cmp::Reverse(f)))
        {
            let f = &world.facets[facet as usize];
            taxonomy.assign(
                crate::ids::QueryId::from_index(q),
                &["Top", &world.topic_names[f.topic], &f.name],
            );
        }
    }

    let facet_topic: Vec<u32> = world.facets.iter().map(|f| f.topic as u32).collect();
    // Final preference = drift-interpolated at t = 1.
    let user_pref: Vec<Vec<f64>> = (0..cfg.num_users)
        .map(|u| {
            pref_start[u]
                .iter()
                .zip(&pref_end[u])
                .map(|(a, b)| (1.0 - cfg.drift) * a + cfg.drift * b)
                .collect()
        })
        .collect();

    SyntheticLog {
        truth: GroundTruth {
            record_facet,
            sessions,
            session_facet: session_facet_out,
            query_facets,
            url_facet,
            url_fields,
            user_pref,
            user_facet_pref: facet_pref,
            facet_topic,
            taxonomy,
        },
        world,
        log,
    }
}

fn lookup_url(log: &QueryLog, url: &str) -> Option<UrlId> {
    // QueryLog has no public URL lookup by design (URLs are write-mostly);
    // a linear probe over the interner keeps the generator self-contained.
    (0..log.num_urls())
        .map(UrlId::from_index)
        .find(|&u| log.url_text(u) == url)
}

/// A pronounceable pseudo-word with a uniqueness suffix, e.g. `korita17`.
fn pseudo_word(rng: &mut SmallRng, counter: usize) -> String {
    const SYL: [&str; 16] = [
        "ba", "ko", "ri", "ta", "mu", "ne", "so", "lu", "pi", "da", "ve", "zo", "ga", "hi", "fe",
        "wa",
    ];
    let n = rng.gen_range(2..=3);
    let mut w = String::new();
    for _ in 0..n {
        w.push_str(SYL[rng.gen_range(0..SYL.len())]);
    }
    w.push_str(&counter.to_string());
    w
}

/// A symmetric Dirichlet(concentration) sample via Gamma draws
/// (Marsaglia–Tsang, with the shape<1 boost).
fn dirichlet(rng: &mut SmallRng, k: usize, concentration: f64) -> Vec<f64> {
    let mut v: Vec<f64> = (0..k).map(|_| gamma_sample(rng, concentration)).collect();
    let s: f64 = v.iter().sum();
    if s <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    for x in &mut v {
        *x /= s;
    }
    v
}

/// Gamma(shape, 1) sampler (Marsaglia & Tsang 2000).
fn gamma_sample(rng: &mut SmallRng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma_sample: shape must be positive");
    if shape < 1.0 {
        // Boost: G(a) = G(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Zipf-weighted index in `0..n` (rank-1 most likely).
fn zipf_index(rng: &mut SmallRng, n: usize) -> usize {
    debug_assert!(n > 0);
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / r as f64).collect();
    pqsda_sample(&weights, rng.gen::<f64>())
}

/// Categorical sample from non-negative weights given a uniform draw
/// (duplicated from `pqsda-linalg` to keep this crate dependency-light).
fn pqsda_sample(weights: &[f64], u: f64) -> usize {
    let total: f64 = weights.iter().sum();
    let mut target = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticLog {
        generate(&SynthConfig::tiny(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SynthConfig::tiny(7));
        let b = generate(&SynthConfig::tiny(7));
        assert_eq!(a.log.records().len(), b.log.records().len());
        assert_eq!(a.truth.record_facet, b.truth.record_facet);
        assert_eq!(a.log.num_queries(), b.log.num_queries());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::tiny(7));
        let b = generate(&SynthConfig::tiny(8));
        // Overwhelmingly likely to produce different record counts or facets.
        assert!(
            a.log.records().len() != b.log.records().len()
                || a.truth.record_facet != b.truth.record_facet
        );
    }

    #[test]
    fn ground_truth_is_aligned() {
        let s = small();
        assert_eq!(s.truth.record_facet.len(), s.log.records().len());
        assert_eq!(s.truth.query_facets.len(), s.log.num_queries());
        assert_eq!(s.truth.url_facet.len(), s.log.num_urls());
        assert_eq!(s.truth.url_fields.len(), s.log.num_urls());
        assert_eq!(s.truth.user_pref.len(), 20);
        assert_eq!(s.truth.session_facet.len(), s.truth.sessions.len());
    }

    #[test]
    fn every_record_has_a_session() {
        let s = small();
        assert!(s.log.records().iter().all(|r| r.session.is_some()));
        // And sessions index their records consistently.
        for sess in &s.truth.sessions {
            for &i in &sess.record_indices {
                assert_eq!(s.log.records()[i].session, Some(sess.id));
                assert_eq!(s.log.records()[i].user, sess.user);
            }
        }
    }

    #[test]
    fn sessions_are_single_facet_and_single_user() {
        let s = small();
        for (sess, &facet) in s.truth.sessions.iter().zip(&s.truth.session_facet) {
            for &i in &sess.record_indices {
                assert_eq!(s.truth.record_facet[i], facet);
            }
        }
    }

    #[test]
    fn ambiguous_terms_span_topics() {
        let s = small();
        assert!(!s.world.ambiguous.is_empty());
        for (term, facets) in &s.world.ambiguous {
            assert!(!term.is_empty());
            assert!(facets.len() >= 2, "ambiguous term in only {facets:?}");
            let topics: std::collections::HashSet<usize> =
                facets.iter().map(|&f| s.world.facets[f].topic).collect();
            assert_eq!(
                topics.len(),
                facets.len(),
                "facets must be in distinct topics"
            );
        }
    }

    #[test]
    fn some_queries_are_ambiguous() {
        let s = small();
        let multi = s
            .truth
            .query_facets
            .iter()
            .filter(|fs| fs.len() >= 2)
            .count();
        assert!(multi > 0, "no ambiguous queries were generated");
    }

    #[test]
    fn clicked_urls_have_ground_truth() {
        let s = small();
        for u in 0..s.log.num_urls() {
            assert_ne!(s.truth.url_facet[u], u32::MAX, "url {u} missing facet");
            assert!(!s.truth.url_fields[u].is_empty(), "url {u} missing fields");
        }
    }

    #[test]
    fn taxonomy_covers_every_query() {
        let s = small();
        assert_eq!(s.truth.taxonomy.assigned_count(), s.log.num_queries());
        // Paths are Top/<topic>/<facet> — depth 3.
        for q in 0..s.log.num_queries() {
            let p = s
                .truth
                .taxonomy
                .category(crate::ids::QueryId::from_index(q))
                .unwrap();
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn user_preferences_are_distributions() {
        let s = small();
        for pref in &s.truth.user_pref {
            assert_eq!(pref.len(), 4);
            assert!((pref.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(pref.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn click_volume_matches_probability_roughly() {
        let s = generate(&SynthConfig {
            num_users: 100,
            ..SynthConfig::tiny(3)
        });
        let clicks = s.log.records().iter().filter(|r| r.click.is_some()).count();
        let frac = clicks as f64 / s.log.records().len() as f64;
        assert!((frac - 0.7).abs() < 0.08, "click fraction {frac}");
    }

    #[test]
    fn records_are_chronological() {
        let s = small();
        let ts: Vec<u64> = s.log.records().iter().map(|r| r.timestamp).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn gamma_sampler_mean_is_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &shape in &[0.3f64, 1.0, 4.5] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(0.5),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = dirichlet(&mut rng, 8, 0.2);
        assert_eq!(d.len(), 8);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[zipf_index(&mut rng, 5)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }
}
