//! An ODP-style category taxonomy over queries.
//!
//! The paper's Relevance metric (Eq. 34) scores two queries by the
//! ODP (dmoz) categories they map to: the length of the categories' longest
//! common path prefix divided by the longer path length. ODP is gone (and
//! was never redistributable), so this module provides the same *shape*:
//! a rooted tree of labelled categories plus a query → category-path
//! assignment. The synthetic generator assigns each query the path
//! `Top / <topic> / <facet>`, and hand-built logs can assign arbitrary
//! deeper paths.

use crate::ids::{Interner, QueryId};
use serde::{Deserialize, Serialize};

/// A path from the taxonomy root, as interned label segments
/// (e.g. `Top / Computers / Java`). The root itself is the empty path.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CategoryPath {
    /// Interned label id per segment, from the root down.
    pub segments: Vec<u32>,
}

impl CategoryPath {
    /// Path depth (number of segments).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True for the root path.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Length of the longest common prefix with `other` — the `|PF(·,·)|`
    /// of Eq. 34.
    pub fn common_prefix_len(&self, other: &CategoryPath) -> usize {
        self.segments
            .iter()
            .zip(&other.segments)
            .take_while(|(a, b)| a == b)
            .count()
    }
}

/// A query → category-path assignment with interned labels.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Taxonomy {
    labels: Interner,
    assignments: Vec<Option<CategoryPath>>,
}

impl Taxonomy {
    /// An empty taxonomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `query` the category path given by `labels` (root-first).
    pub fn assign(&mut self, query: QueryId, labels: &[&str]) {
        let path = CategoryPath {
            segments: labels.iter().map(|l| self.labels.intern(l)).collect(),
        };
        if self.assignments.len() <= query.index() {
            self.assignments.resize(query.index() + 1, None);
        }
        self.assignments[query.index()] = Some(path);
    }

    /// The category path of a query, if assigned.
    pub fn category(&self, query: QueryId) -> Option<&CategoryPath> {
        self.assignments.get(query.index()).and_then(Option::as_ref)
    }

    /// Renders a path back to `Top/Computers/Java` form.
    pub fn render(&self, path: &CategoryPath) -> String {
        path.segments
            .iter()
            .map(|&s| self.labels.resolve(s))
            .collect::<Vec<_>>()
            .join("/")
    }

    /// The paper's Eq. 34:
    /// `R(q_i, q_j) = |PF(A_i, A_j)| / max(|A_i|, |A_j|)`.
    ///
    /// Queries without an assigned category score 0 against everything —
    /// the conservative choice the paper's automatic evaluation also makes
    /// for unmapped queries.
    pub fn relevance(&self, a: QueryId, b: QueryId) -> f64 {
        match (self.category(a), self.category(b)) {
            (Some(pa), Some(pb)) => {
                let denom = pa.len().max(pb.len());
                if denom == 0 {
                    0.0
                } else {
                    pa.common_prefix_len(pb) as f64 / denom as f64
                }
            }
            _ => 0.0,
        }
    }

    /// Number of queries with an assignment.
    pub fn assigned_count(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.assign(QueryId(0), &["Top", "Computers", "Java"]);
        t.assign(QueryId(1), &["Top", "Computers", "Hardware"]);
        t.assign(QueryId(2), &["Top", "Science", "Astronomy"]);
        t.assign(QueryId(3), &["Top", "Computers", "Java"]);
        t
    }

    #[test]
    fn identical_categories_score_one() {
        let t = setup();
        assert!((t.relevance(QueryId(0), QueryId(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sibling_categories_share_prefix() {
        let t = setup();
        // Common prefix Top/Computers (2 of 3).
        assert!((t.relevance(QueryId(0), QueryId(1)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distant_categories_share_only_root() {
        let t = setup();
        assert!((t.relevance(QueryId(0), QueryId(2)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn relevance_is_symmetric() {
        let t = setup();
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(
                    t.relevance(QueryId(a), QueryId(b)),
                    t.relevance(QueryId(b), QueryId(a))
                );
            }
        }
    }

    #[test]
    fn different_depths_use_max_length() {
        let mut t = Taxonomy::new();
        t.assign(QueryId(0), &["Top", "Computers"]);
        t.assign(QueryId(1), &["Top", "Computers", "Java", "JVM"]);
        assert!((t.relevance(QueryId(0), QueryId(1)) - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn unassigned_queries_score_zero() {
        let t = setup();
        assert_eq!(t.relevance(QueryId(0), QueryId(99)), 0.0);
        assert_eq!(t.relevance(QueryId(99), QueryId(100)), 0.0);
    }

    #[test]
    fn labels_are_shared_across_paths() {
        let t = setup();
        let p0 = t.category(QueryId(0)).unwrap();
        let p1 = t.category(QueryId(1)).unwrap();
        assert_eq!(p0.segments[0], p1.segments[0]);
        assert_eq!(p0.segments[1], p1.segments[1]);
        assert_ne!(p0.segments[2], p1.segments[2]);
    }

    #[test]
    fn render_round_trips() {
        let t = setup();
        assert_eq!(
            t.render(t.category(QueryId(2)).unwrap()),
            "Top/Science/Astronomy"
        );
    }

    #[test]
    fn reassignment_overwrites() {
        let mut t = setup();
        t.assign(QueryId(0), &["Top", "Science"]);
        assert_eq!(t.render(t.category(QueryId(0)).unwrap()), "Top/Science");
    }

    #[test]
    fn assigned_count_tracks() {
        let t = setup();
        assert_eq!(t.assigned_count(), 4);
    }
}
