//! Query text normalization and tokenization.
//!
//! Search queries are short, case-insensitive and noisy; the pipeline here
//! is deliberately simple and deterministic: Unicode-lowercase, split on
//! anything that is not alphanumeric, drop pure stopwords and over-long
//! tokens. The query–term bipartite (paper §III, Fig. 2(c)) is built from
//! exactly these tokens.

/// Stopwords excluded from the query–term bipartite. Common web-search
/// operators and English function words; a short list on purpose — query
/// terms carry most of the signal and over-aggressive filtering starves the
/// term bipartite.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "how", "in", "is", "it", "of",
    "on", "or", "that", "the", "this", "to", "was", "what", "when", "where", "which", "who",
    "will", "with", "www", "com", "http", "https",
];

/// Maximum token length kept; longer tokens are almost always junk
/// (base64 fragments, session ids pasted into the search box).
pub const MAX_TOKEN_LEN: usize = 24;

/// Returns `true` for tokens on the stopword list.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

/// Normalizes a raw query string: lowercases and collapses all
/// non-alphanumeric runs to single spaces, trimming the ends.
///
/// Normalized equality is the identity used when interning queries, so
/// `"Sun  Java"` and `"sun java"` become the same [`crate::QueryId`].
pub fn normalize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut last_space = true;
    for ch in raw.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Tokenizes a *normalized* query into indexable terms: splits on spaces,
/// drops stopwords and over-long tokens. Duplicate terms are preserved
/// (term frequency matters for the `cfiqf` weights).
pub fn tokenize(normalized: &str) -> Vec<&str> {
    normalized
        .split(' ')
        .filter(|t| !t.is_empty() && !is_stopword(t) && t.len() <= MAX_TOKEN_LEN)
        .collect()
}

/// Convenience: normalize + tokenize, returning owned tokens.
pub fn normalize_and_tokenize(raw: &str) -> Vec<String> {
    let norm = normalize(raw);
    tokenize(&norm).into_iter().map(str::to_owned).collect()
}

/// Jaccard similarity between the token sets of two normalized queries;
/// the lexical signal used by session segmentation.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<&str> = tokenize(a).into_iter().collect();
    let sb: HashSet<&str> = tokenize(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_collapses() {
        assert_eq!(normalize("Sun  Java!!"), "sun java");
        assert_eq!(normalize("  JVM-Download "), "jvm download");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("???"), "");
    }

    #[test]
    fn normalize_handles_unicode() {
        assert_eq!(normalize("Café MÜNCHEN"), "café münchen");
    }

    #[test]
    fn tokenize_drops_stopwords_and_long_tokens() {
        assert_eq!(tokenize("the sun and java"), vec!["sun", "java"]);
        let long = "a".repeat(MAX_TOKEN_LEN + 1);
        let norm = normalize(&format!("sun {long}"));
        assert_eq!(tokenize(&norm), vec!["sun"]);
    }

    #[test]
    fn tokenize_preserves_duplicates() {
        assert_eq!(tokenize("sun sun java"), vec!["sun", "sun", "java"]);
    }

    #[test]
    fn normalize_and_tokenize_end_to_end() {
        assert_eq!(
            normalize_and_tokenize("How to Download JVM?"),
            vec!["download", "jvm"]
        );
    }

    #[test]
    fn jaccard_basics() {
        assert!((token_jaccard("sun java", "java sun") - 1.0).abs() < 1e-12);
        assert!((token_jaccard("sun java", "sun oracle") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(token_jaccard("sun", "moon"), 0.0);
        assert_eq!(token_jaccard("", ""), 0.0);
    }

    #[test]
    fn stopword_membership() {
        assert!(is_stopword("the"));
        assert!(!is_stopword("sun"));
    }
}
