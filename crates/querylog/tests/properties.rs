//! Property-based tests for the query-log substrate.

use pqsda_querylog::clean::{clean_entries, CleanConfig};
use pqsda_querylog::io::{format_timestamp, parse_timestamp, read_aol, write_aol};
use pqsda_querylog::session::{segment_sessions, SessionConfig};
use pqsda_querylog::text;
use pqsda_querylog::{LogEntry, QueryLog, UserId};
use proptest::prelude::*;

/// Strategy: a plausible raw query string (possibly messy).
fn raw_query() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("sun".to_owned()),
            Just("java".to_owned()),
            Just("solar".to_owned()),
            Just("the".to_owned()),
            "[a-z]{1,8}",
            Just("!!!".to_owned()),
        ],
        1..5,
    )
    .prop_map(|ws| ws.join(" "))
}

fn entries() -> impl Strategy<Value = Vec<LogEntry>> {
    prop::collection::vec(
        (
            0u32..5,
            raw_query(),
            prop::option::of("[a-z]{3,6}\\.com"),
            0u64..100_000,
        ),
        0..60,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(u, q, url, ts)| LogEntry::new(UserId(u), q, url.as_deref(), ts))
            .collect()
    })
}

proptest! {
    #[test]
    fn normalize_is_idempotent(raw in ".{0,40}") {
        let once = text::normalize(&raw);
        let twice = text::normalize(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn normalized_queries_have_no_double_spaces(raw in ".{0,40}") {
        let n = text::normalize(&raw);
        prop_assert!(!n.contains("  "));
        prop_assert!(!n.starts_with(' '));
        prop_assert!(!n.ends_with(' '));
    }

    #[test]
    fn tokenize_only_emits_nonstopword_tokens(raw in ".{0,40}") {
        let n = text::normalize(&raw);
        for t in text::tokenize(&n) {
            prop_assert!(!t.is_empty());
            prop_assert!(!text::is_stopword(t));
            prop_assert!(t.len() <= text::MAX_TOKEN_LEN);
        }
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded(a in ".{0,30}", b in ".{0,30}") {
        let na = text::normalize(&a);
        let nb = text::normalize(&b);
        let ab = text::token_jaccard(&na, &nb);
        let ba = text::token_jaccard(&nb, &na);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn log_construction_never_loses_nonempty_queries(es in entries()) {
        let log = QueryLog::from_entries(&es);
        let expected = es
            .iter()
            .filter(|e| !text::normalize(&e.query).is_empty())
            .count();
        prop_assert_eq!(log.records().len(), expected);
    }

    #[test]
    fn log_records_are_chronological(es in entries()) {
        let log = QueryLog::from_entries(&es);
        let ts: Vec<u64> = log.records().iter().map(|r| r.timestamp).collect();
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn query_ids_are_dense_and_resolvable(es in entries()) {
        let log = QueryLog::from_entries(&es);
        for r in log.records() {
            prop_assert!(r.query.index() < log.num_queries());
            prop_assert!(!log.query_text(r.query).is_empty());
            if let Some(u) = r.click {
                prop_assert!(u.index() < log.num_urls());
            }
        }
    }

    #[test]
    fn sessions_partition_all_records(es in entries()) {
        let mut log = QueryLog::from_entries(&es);
        let sessions = segment_sessions(&mut log, &SessionConfig::default());
        let mut seen = vec![false; log.records().len()];
        for s in &sessions {
            for &i in &s.record_indices {
                prop_assert!(!seen[i], "record {} in two sessions", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "some record is unsessioned");
    }

    #[test]
    fn sessions_are_user_pure_and_time_ordered(es in entries()) {
        let mut log = QueryLog::from_entries(&es);
        let sessions = segment_sessions(&mut log, &SessionConfig::default());
        for s in &sessions {
            let mut last_ts = 0u64;
            for &i in &s.record_indices {
                let r = log.records()[i];
                prop_assert_eq!(r.user, s.user);
                prop_assert!(r.timestamp >= last_ts);
                last_ts = r.timestamp;
            }
            prop_assert!(s.start <= s.end);
        }
    }

    #[test]
    fn cleaning_is_idempotent(es in entries()) {
        let cfg = CleanConfig::default();
        let (once, _) = clean_entries(&es, &cfg);
        let (twice, stats) = clean_entries(&once, &cfg);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(stats.kept, once.len());
    }

    #[test]
    fn aol_io_round_trips_clean_entries(es in entries()) {
        // AOL format cannot carry tabs/newlines inside queries or URLs;
        // our strategies only generate word-like content, so every entry
        // must survive a write→read cycle byte-exactly.
        let mut buf = Vec::new();
        write_aol(&es, &mut buf).unwrap();
        let back = read_aol(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), es.len());
        for (a, b) in back.iter().zip(&es) {
            prop_assert_eq!(a.user, b.user);
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(&a.clicked_url, &b.clicked_url);
            // Queries may gain/lose surrounding whitespace only.
            prop_assert_eq!(a.query.trim(), b.query.trim());
        }
    }

    #[test]
    fn timestamp_codec_round_trips(t in 0u64..4_102_444_800) { // through 2099
        prop_assert_eq!(parse_timestamp(&format_timestamp(t)), Some(t));
    }

    #[test]
    fn cleaning_never_increases_entries(es in entries()) {
        let (kept, stats) = clean_entries(&es, &CleanConfig::default());
        prop_assert!(kept.len() <= es.len());
        prop_assert_eq!(
            stats.input,
            stats.kept
                + stats.dropped_empty
                + stats.dropped_long
                + stats.dropped_url_like
                + stats.dropped_duplicate
                + stats.dropped_robot
        );
    }
}
