//! Deadline-aware admission control for the suggest path.
//!
//! An open-loop client keeps sending whether or not we keep up; once the
//! offered rate exceeds capacity, every request we *accept* makes every
//! other request later. The only honest move is to shed at the front
//! door: if a request's projected wait already exceeds its deadline, it
//! gets an explicit [`Rejection`] *now* — cheap for us, actionable for
//! the caller — instead of a reply that arrives after nobody wants it
//! (or a silent timeout).
//!
//! The projection is deliberately simple and auditable:
//!
//! ```text
//! projected_wait = requests_in_flight × blended service-time estimate
//! ```
//!
//! In-flight counting is exact (an RAII [`ServicePermit`] brackets every
//! admitted request), and the service-time estimate comes from
//! [`DecayedHistogram`]s fed by the same permits, so the gate learns the
//! host's actual capacity instead of trusting a config constant. Until
//! the histograms have samples the projection is zero and everything is
//! admitted — an empty server never sheds.
//!
//! ## Why two histograms
//!
//! With request coalescing (or a warm expansion memo) service time is
//! **bimodal**: a cache hit returns in microseconds while a real gather
//! takes milliseconds. A single p50 over the merged population snaps to
//! whichever mode currently holds the majority — and when misses hold
//! it, the gate projects *every* arrival at miss cost and sheds cheap
//! cached traffic that would have finished well inside its deadline.
//! The gate therefore keeps separate decayed histograms for cached
//! (coalesced/memo-hit) and uncached completions and blends them by the
//! observed hit fraction:
//!
//! ```text
//! estimate = hit_frac × cached_p50 + (1 − hit_frac) × uncached_p50
//! ```
//!
//! which is the expected service time of the *next* arrival, not the
//! median of a population it may not belong to.

use crate::histogram::DecayedHistogram;
use pqsda_parallel::Deadline;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// An explicit shed decision: the request was rejected before any shard
/// was probed, and these numbers say why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// The gate's wait projection at arrival (µs).
    pub projected_wait_us: u64,
    /// The deadline budget the request had left (µs).
    pub remaining_us: u64,
    /// Requests in flight at the decision.
    pub inflight: u64,
}

/// Point-in-time admission counters (part of `ServeStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted through the gate.
    pub admitted: u64,
    /// Requests shed with an explicit [`Rejection`].
    pub shed: u64,
    /// Requests currently in flight.
    pub inflight: u64,
    /// The projection of the most recent shed decision (µs) — the audit
    /// trail for "why was this rejected".
    pub last_projected_wait_us: u64,
}

/// Which service population a completed request belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PermitKind {
    /// Served by a cache: a coalesced follower reusing the leader's
    /// reply (or any other short-circuit the caller marks).
    Cached,
    /// A real computation (leader gather, fallback, plain serve).
    Uncached,
}

/// The suggest-path admission gate. One per server.
#[derive(Default)]
pub struct AdmissionGate {
    inflight: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    last_projected_wait_us: AtomicU64,
    /// Latencies of cache-served requests (coalesced followers).
    cached: DecayedHistogram,
    /// Latencies of fully computed requests.
    uncached: DecayedHistogram,
}

fn p50_us(h: &DecayedHistogram) -> Option<u64> {
    h.quantile(0.5)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
}

impl AdmissionGate {
    /// A fresh gate with an empty service-time estimate.
    pub fn new() -> Self {
        AdmissionGate::default()
    }

    /// The blended service-time estimate (µs): the hit-fraction-weighted
    /// mix of the cached and uncached p50s, so bimodal traffic (cheap
    /// coalesced hits + expensive gathers) is projected at its expected
    /// cost rather than at whichever mode holds the median. Populations
    /// without enough samples drop out of the blend; 0 until either
    /// histogram warms up.
    pub fn service_estimate_us(&self) -> u64 {
        match (p50_us(&self.cached), p50_us(&self.uncached)) {
            (None, None) => 0,
            (Some(c), None) => c,
            (None, Some(u)) => u,
            (Some(c), Some(u)) => {
                let hits = self.cached.recorded() as u128;
                let misses = self.uncached.recorded() as u128;
                let total = hits + misses;
                ((u128::from(c) * hits + u128::from(u) * misses) / total.max(1)) as u64
            }
        }
    }

    /// The decayed p50 of cache-served requests (µs), when warm.
    pub fn cached_estimate_us(&self) -> Option<u64> {
        p50_us(&self.cached)
    }

    /// The decayed p50 of fully computed requests (µs), when warm.
    pub fn uncached_estimate_us(&self) -> Option<u64> {
        p50_us(&self.uncached)
    }

    /// The wait a newly arriving request should expect (µs).
    pub fn projected_wait_us(&self) -> u64 {
        self.inflight
            .load(Ordering::Relaxed)
            .saturating_mul(self.service_estimate_us())
    }

    /// Admits or sheds one request. Without a deadline the request is
    /// always admitted (nothing to violate); with one, it is shed iff
    /// the projected wait exceeds the remaining budget. The returned
    /// permit must be held for the request's duration — dropping it
    /// releases the in-flight slot and feeds the service estimate.
    pub fn admit(&self, deadline: Option<&Deadline>) -> Result<ServicePermit<'_>, Rejection> {
        if let Some(deadline) = deadline {
            let projected = self.projected_wait_us();
            let remaining = deadline.remaining_us();
            if projected > remaining {
                self.last_projected_wait_us
                    .store(projected, Ordering::Relaxed);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection {
                    projected_wait_us: projected,
                    remaining_us: remaining,
                    inflight: self.inflight.load(Ordering::Relaxed),
                });
            }
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.inflight.fetch_add(1, Ordering::Relaxed);
        Ok(ServicePermit {
            gate: self,
            started: Instant::now(),
            kind: Cell::new(PermitKind::Uncached),
        })
    }

    /// Feeds one observed *uncached* service latency directly (tests
    /// seed the estimator this way; production samples arrive via permit
    /// drops).
    pub fn observe_service(&self, elapsed: std::time::Duration) {
        self.uncached.record(elapsed);
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            last_projected_wait_us: self.last_projected_wait_us.load(Ordering::Relaxed),
        }
    }
}

/// RAII guard of one admitted request: holds the in-flight slot and, on
/// drop, records the request's total latency into the service estimate
/// of the population it ended up in ([`PermitKind::Uncached`] unless
/// [`ServicePermit::mark_cached`] was called). Dropping during a panic
/// unwind still releases the slot, so a dying request can never leak
/// capacity.
pub struct ServicePermit<'a> {
    gate: &'a AdmissionGate,
    started: Instant,
    kind: Cell<PermitKind>,
}

impl ServicePermit<'_> {
    /// Reclassifies this request as cache-served (a coalesced follower);
    /// its latency will feed the cached histogram on drop.
    pub fn mark_cached(&self) {
        self.kind.set(PermitKind::Cached);
    }

    /// The population this permit currently belongs to.
    pub fn kind(&self) -> PermitKind {
        self.kind.get()
    }
}

impl Drop for ServicePermit<'_> {
    fn drop(&mut self) {
        let h = match self.kind.get() {
            PermitKind::Cached => &self.gate.cached,
            PermitKind::Uncached => &self.gate.uncached,
        };
        h.record(self.started.elapsed());
        self.gate.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn admits_everything_without_a_deadline() {
        let gate = AdmissionGate::new();
        for _ in 0..20 {
            let p = gate.admit(None).expect("no deadline, no shedding");
            drop(p);
        }
        let s = gate.stats();
        assert_eq!((s.admitted, s.shed, s.inflight), (20, 0, 0));
    }

    #[test]
    fn cold_gate_admits_with_deadline() {
        // No service samples → projection 0 → even a 0-budget deadline
        // passes (0 > 0 is false).
        let gate = AdmissionGate::new();
        let d = Deadline::in_ms(0);
        assert!(gate.admit(Some(&d)).is_ok());
    }

    #[test]
    fn sheds_when_projection_exceeds_budget_and_audits_it() {
        let gate = AdmissionGate::new();
        for _ in 0..16 {
            gate.observe_service(Duration::from_millis(10));
        }
        assert!(gate.service_estimate_us() >= 10_000);
        // Hold 4 requests in flight: projection ≥ 40 ms.
        let held: Vec<ServicePermit> = (0..4).map(|_| gate.admit(None).unwrap()).collect();
        assert!(gate.projected_wait_us() >= 40_000);
        let rejection = match gate.admit(Some(&Deadline::in_ms(5))) {
            Err(r) => r,
            Ok(_) => panic!("5 ms budget against a 40 ms projection must shed"),
        };
        assert!(rejection.projected_wait_us >= 40_000);
        assert!(rejection.remaining_us <= 5_000);
        assert_eq!(rejection.inflight, 4);
        let s = gate.stats();
        assert_eq!(s.shed, 1);
        assert_eq!(s.last_projected_wait_us, rejection.projected_wait_us);
        // A generous deadline is still admitted.
        assert!(gate.admit(Some(&Deadline::in_ms(10_000))).is_ok());
        drop(held);
        assert_eq!(gate.stats().inflight, 0);
    }

    #[test]
    fn bimodal_traffic_blends_instead_of_over_shedding() {
        // 10 ms misses alone would project 4 × 10 ms = 40 ms and shed a
        // 25 ms-deadline arrival. With a majority of ~instant coalesced
        // hits recorded in their own histogram, the blended expectation
        // drops far enough that the cheap arrival is admitted.
        let gate = AdmissionGate::new();
        for _ in 0..16 {
            gate.observe_service(Duration::from_millis(10));
        }
        for _ in 0..48 {
            let p = gate.admit(None).unwrap();
            assert_eq!(p.kind(), PermitKind::Uncached);
            p.mark_cached();
            assert_eq!(p.kind(), PermitKind::Cached);
            drop(p); // ~0 ms cached sample
        }
        let cached = gate.cached_estimate_us().expect("cached histogram warm");
        let uncached = gate
            .uncached_estimate_us()
            .expect("uncached histogram warm");
        assert!(uncached >= 10_000);
        assert!(cached < uncached);
        // Blend sits between the modes, weighted 3:1 toward hits.
        let blended = gate.service_estimate_us();
        assert!(blended < uncached / 2, "blend {blended} vs miss {uncached}");
        assert!(blended >= cached);
        let held: Vec<ServicePermit> = (0..4).map(|_| gate.admit(None).unwrap()).collect();
        assert!(
            gate.admit(Some(&Deadline::in_ms(25))).is_ok(),
            "blended projection must admit what a miss-only p50 would shed"
        );
        drop(held);
    }

    #[test]
    fn permit_drop_feeds_the_estimate() {
        let gate = AdmissionGate::new();
        for _ in 0..8 {
            let p = gate.admit(None).unwrap();
            std::thread::sleep(Duration::from_millis(2));
            drop(p);
        }
        assert!(gate.service_estimate_us() >= 1_000);
    }
}
