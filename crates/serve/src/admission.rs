//! Deadline-aware admission control for the suggest path.
//!
//! An open-loop client keeps sending whether or not we keep up; once the
//! offered rate exceeds capacity, every request we *accept* makes every
//! other request later. The only honest move is to shed at the front
//! door: if a request's projected wait already exceeds its deadline, it
//! gets an explicit [`Rejection`] *now* — cheap for us, actionable for
//! the caller — instead of a reply that arrives after nobody wants it
//! (or a silent timeout).
//!
//! The projection is deliberately simple and auditable:
//!
//! ```text
//! projected_wait = requests_in_flight × decayed p50 service time
//! ```
//!
//! In-flight counting is exact (an RAII [`ServicePermit`] brackets every
//! admitted request), and the service-time estimate comes from a
//! [`DecayedHistogram`] fed by the same permits, so the gate learns the
//! host's actual capacity instead of trusting a config constant. Until
//! the histogram has samples the projection is zero and everything is
//! admitted — an empty server never sheds.

use crate::histogram::DecayedHistogram;
use pqsda_parallel::Deadline;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// An explicit shed decision: the request was rejected before any shard
/// was probed, and these numbers say why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// The gate's wait projection at arrival (µs).
    pub projected_wait_us: u64,
    /// The deadline budget the request had left (µs).
    pub remaining_us: u64,
    /// Requests in flight at the decision.
    pub inflight: u64,
}

/// Point-in-time admission counters (part of `ServeStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted through the gate.
    pub admitted: u64,
    /// Requests shed with an explicit [`Rejection`].
    pub shed: u64,
    /// Requests currently in flight.
    pub inflight: u64,
    /// The projection of the most recent shed decision (µs) — the audit
    /// trail for "why was this rejected".
    pub last_projected_wait_us: u64,
}

/// The suggest-path admission gate. One per server.
#[derive(Default)]
pub struct AdmissionGate {
    inflight: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    last_projected_wait_us: AtomicU64,
    service: DecayedHistogram,
}

impl AdmissionGate {
    /// A fresh gate with an empty service-time estimate.
    pub fn new() -> Self {
        AdmissionGate::default()
    }

    /// The decayed p50 service-time estimate (µs); 0 until the histogram
    /// has enough samples.
    pub fn service_estimate_us(&self) -> u64 {
        self.service
            .quantile(0.5)
            .map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64)
    }

    /// The wait a newly arriving request should expect (µs).
    pub fn projected_wait_us(&self) -> u64 {
        self.inflight
            .load(Ordering::Relaxed)
            .saturating_mul(self.service_estimate_us())
    }

    /// Admits or sheds one request. Without a deadline the request is
    /// always admitted (nothing to violate); with one, it is shed iff
    /// the projected wait exceeds the remaining budget. The returned
    /// permit must be held for the request's duration — dropping it
    /// releases the in-flight slot and feeds the service estimate.
    pub fn admit(&self, deadline: Option<&Deadline>) -> Result<ServicePermit<'_>, Rejection> {
        if let Some(deadline) = deadline {
            let projected = self.projected_wait_us();
            let remaining = deadline.remaining_us();
            if projected > remaining {
                self.last_projected_wait_us
                    .store(projected, Ordering::Relaxed);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection {
                    projected_wait_us: projected,
                    remaining_us: remaining,
                    inflight: self.inflight.load(Ordering::Relaxed),
                });
            }
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.inflight.fetch_add(1, Ordering::Relaxed);
        Ok(ServicePermit {
            gate: self,
            started: Instant::now(),
        })
    }

    /// Feeds one observed service latency directly (tests seed the
    /// estimator this way; production samples arrive via permit drops).
    pub fn observe_service(&self, elapsed: std::time::Duration) {
        self.service.record(elapsed);
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            last_projected_wait_us: self.last_projected_wait_us.load(Ordering::Relaxed),
        }
    }
}

/// RAII guard of one admitted request: holds the in-flight slot and, on
/// drop, records the request's total latency into the service estimate.
/// Dropping during a panic unwind still releases the slot, so a dying
/// request can never leak capacity.
pub struct ServicePermit<'a> {
    gate: &'a AdmissionGate,
    started: Instant,
}

impl Drop for ServicePermit<'_> {
    fn drop(&mut self) {
        self.gate.service.record(self.started.elapsed());
        self.gate.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn admits_everything_without_a_deadline() {
        let gate = AdmissionGate::new();
        for _ in 0..20 {
            let p = gate.admit(None).expect("no deadline, no shedding");
            drop(p);
        }
        let s = gate.stats();
        assert_eq!((s.admitted, s.shed, s.inflight), (20, 0, 0));
    }

    #[test]
    fn cold_gate_admits_with_deadline() {
        // No service samples → projection 0 → even a 0-budget deadline
        // passes (0 > 0 is false).
        let gate = AdmissionGate::new();
        let d = Deadline::in_ms(0);
        assert!(gate.admit(Some(&d)).is_ok());
    }

    #[test]
    fn sheds_when_projection_exceeds_budget_and_audits_it() {
        let gate = AdmissionGate::new();
        for _ in 0..16 {
            gate.observe_service(Duration::from_millis(10));
        }
        assert!(gate.service_estimate_us() >= 10_000);
        // Hold 4 requests in flight: projection ≥ 40 ms.
        let held: Vec<ServicePermit> = (0..4).map(|_| gate.admit(None).unwrap()).collect();
        assert!(gate.projected_wait_us() >= 40_000);
        let rejection = match gate.admit(Some(&Deadline::in_ms(5))) {
            Err(r) => r,
            Ok(_) => panic!("5 ms budget against a 40 ms projection must shed"),
        };
        assert!(rejection.projected_wait_us >= 40_000);
        assert!(rejection.remaining_us <= 5_000);
        assert_eq!(rejection.inflight, 4);
        let s = gate.stats();
        assert_eq!(s.shed, 1);
        assert_eq!(s.last_projected_wait_us, rejection.projected_wait_us);
        // A generous deadline is still admitted.
        assert!(gate.admit(Some(&Deadline::in_ms(10_000))).is_ok());
        drop(held);
        assert_eq!(gate.stats().inflight, 0);
    }

    #[test]
    fn permit_drop_feeds_the_estimate() {
        let gate = AdmissionGate::new();
        for _ in 0..8 {
            let p = gate.admit(None).unwrap();
            std::thread::sleep(Duration::from_millis(2));
            drop(p);
        }
        assert!(gate.service_estimate_us() >= 1_000);
    }
}
