//! Request coalescing ("singleflight") for duplicate in-flight queries.
//!
//! Under open-loop load the same hot query routinely arrives again while
//! the first copy is still being computed — too late for the LRU cache
//! (nothing is cached yet), so every duplicate pays the full
//! scatter-gather. The coalescer closes that gap: the first arrival for
//! a key becomes the **leader** and computes; duplicates become
//! **followers** and block until the leader publishes, then reuse its
//! value verbatim — which is why coalesced replies are bit-identical to
//! uncoalesced ones by construction.
//!
//! The failure contract matters as much as the fast path: a leader that
//! panics (or otherwise unwinds without publishing) must not strand its
//! followers. The leader holds a [`LeaderToken`] whose `Drop` runs even
//! during unwinding and marks the flight *abandoned*; waiting followers
//! wake with [`Join::Fallback`] and compute their own result. Followers
//! never inherit a panic, only the extra work.
//!
//! Uses `std::sync` primitives (the workspace `parking_lot` shim has no
//! `Condvar`), with poison-tolerant locking so an unwinding leader can't
//! wedge the flight table.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// How one `join` call resolved.
pub enum Join<'a, K: Eq + Hash + Clone, V: Clone> {
    /// First in: compute the value, then `publish` it via this token.
    Leader(LeaderToken<'a, K, V>),
    /// A duplicate: the leader's published value, reused verbatim.
    Coalesced(V),
    /// The leader unwound without publishing: compute your own value.
    Fallback,
}

enum FlightState<V> {
    Pending,
    Done(V),
    Abandoned,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

/// Point-in-time coalescing counters (part of `ServeStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Requests that led a flight (computed a value).
    pub leaders: u64,
    /// Requests served from a leader's published value.
    pub coalesced: u64,
    /// Followers orphaned by an abandoned leader.
    pub fallbacks: u64,
}

/// A singleflight table: at most one in-flight computation per key.
pub struct Coalescer<K: Eq + Hash + Clone, V: Clone> {
    flights: Mutex<HashMap<K, Arc<Flight<V>>>>,
    leaders: AtomicU64,
    coalesced: AtomicU64,
    fallbacks: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Coalescer<K, V> {
    fn default() -> Self {
        Coalescer {
            flights: Mutex::new(HashMap::new()),
            leaders: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }
}

/// Locks tolerating poison: an unwinding leader already left the state
/// consistent (its `Drop` marks the flight abandoned), so the poison
/// flag carries no extra information here.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<K: Eq + Hash + Clone, V: Clone> Coalescer<K, V> {
    /// A fresh, empty flight table.
    pub fn new() -> Self {
        Coalescer::default()
    }

    /// Joins the flight for `key`: leads if none is in progress,
    /// otherwise blocks until the current leader publishes or abandons.
    pub fn join(&self, key: K) -> Join<'_, K, V> {
        let flight = {
            let mut flights = lock_ignore_poison(&self.flights);
            match flights.get(&key) {
                Some(f) => Arc::clone(f),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        cv: Condvar::new(),
                    });
                    flights.insert(key.clone(), Arc::clone(&f));
                    self.leaders.fetch_add(1, Ordering::Relaxed);
                    return Join::Leader(LeaderToken {
                        coalescer: self,
                        key,
                        flight: f,
                        published: false,
                    });
                }
            }
        };
        let mut st = lock_ignore_poison(&flight.state);
        while matches!(*st, FlightState::Pending) {
            st = flight.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        match &*st {
            FlightState::Done(v) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Join::Coalesced(v.clone())
            }
            FlightState::Abandoned => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                Join::Fallback
            }
            FlightState::Pending => unreachable!("loop exits only on a settled flight"),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CoalesceStats {
        CoalesceStats {
            leaders: self.leaders.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Settles `flight` and retires the key so the next arrival leads a
    /// fresh flight.
    fn settle(&self, key: &K, flight: &Flight<V>, state: FlightState<V>) {
        {
            let mut st = lock_ignore_poison(&flight.state);
            *st = state;
        }
        flight.cv.notify_all();
        lock_ignore_poison(&self.flights).remove(key);
    }
}

/// The leader's obligation: publish a value, or — if dropped without
/// publishing, including during a panic unwind — abandon the flight so
/// followers fall back instead of hanging.
pub struct LeaderToken<'a, K: Eq + Hash + Clone, V: Clone> {
    coalescer: &'a Coalescer<K, V>,
    key: K,
    flight: Arc<Flight<V>>,
    published: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> LeaderToken<'_, K, V> {
    /// Publishes the computed value to every waiting follower.
    pub fn publish(mut self, value: V) {
        self.published = true;
        self.coalescer
            .settle(&self.key, &self.flight, FlightState::Done(value));
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for LeaderToken<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            self.coalescer
                .settle(&self.key, &self.flight, FlightState::Abandoned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn followers_reuse_the_leaders_value_verbatim() {
        let c = Arc::new(Coalescer::<u32, Vec<u64>>::new());
        let token = match c.join(7) {
            Join::Leader(t) => t,
            _ => panic!("first join must lead"),
        };
        let start = Arc::new(Barrier::new(4));
        let followers: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&c);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    match c.join(7) {
                        Join::Coalesced(v) => v,
                        Join::Leader(_) => panic!("flight already led"),
                        Join::Fallback => panic!("leader did not abandon"),
                    }
                })
            })
            .collect();
        start.wait();
        // Give followers time to park on the condvar before publishing.
        std::thread::sleep(Duration::from_millis(20));
        token.publish(vec![1, 2, 3]);
        for f in followers {
            assert_eq!(f.join().unwrap(), vec![1, 2, 3]);
        }
        let s = c.stats();
        assert_eq!((s.leaders, s.coalesced, s.fallbacks), (1, 3, 0));
    }

    #[test]
    fn a_panicking_leader_releases_followers_to_fall_back() {
        let c = Arc::new(Coalescer::<u32, u64>::new());
        let (leading, led) = std::sync::mpsc::channel();
        let leader = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || match c.join(9) {
                Join::Leader(_token) => {
                    leading.send(()).unwrap();
                    std::thread::sleep(Duration::from_millis(50));
                    // `_token` is dropped by the unwind, not by publish.
                    std::panic::panic_any("leader dies mid-flight");
                }
                _ => panic!("first join must lead"),
            })
        };
        led.recv().unwrap();
        let follower = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || matches!(c.join(9), Join::Fallback))
        };
        assert!(leader.join().is_err(), "leader thread must have panicked");
        assert!(follower.join().unwrap(), "follower must fall back");
        // The key is retired: the next arrival leads a fresh flight.
        match c.join(9) {
            Join::Leader(t) => t.publish(42),
            _ => panic!("abandoned key must accept a new leader"),
        }
        let s = c.stats();
        assert_eq!((s.leaders, s.fallbacks), (2, 1));
    }

    #[test]
    fn fallback_follower_observes_abandonment() {
        let c = Arc::new(Coalescer::<u32, u64>::new());
        let token = match c.join(1) {
            Join::Leader(t) => t,
            _ => panic!("first join must lead"),
        };
        let f = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || matches!(c.join(1), Join::Fallback))
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(token);
        assert!(f.join().unwrap(), "follower must get Fallback");
        assert_eq!(c.stats().fallbacks, 1);
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let c = Coalescer::<u32, u64>::new();
        let a = match c.join(1) {
            Join::Leader(t) => t,
            _ => panic!(),
        };
        let b = match c.join(2) {
            Join::Leader(t) => t,
            _ => panic!(),
        };
        a.publish(10);
        b.publish(20);
        assert_eq!(c.stats().leaders, 2);
    }
}
