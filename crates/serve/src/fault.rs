//! Fault model for the sharded server: the fault-tolerance knobs
//! ([`FaultConfig`]), deterministic fault injection ([`FaultPlan`]), the
//! per-shard circuit breaker ([`Breaker`]), and the counters surfaced in
//! `ServeStats` ([`FaultStats`]).
//!
//! The injection plan is the chaos harness's contract: every fault is a
//! pure function of `(request index, shard, replica)` (plus a seed), so a
//! soak run is reproducible — the same seed schedules the same panics,
//! latency spikes and corrupt swaps, and the test can assert exact
//! degradation semantics instead of "it survived".

use crate::swap::ShardTag;
use pqsda_querylog::hash::{fnv1a_u64, FNV_OFFSET};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fault-tolerance knobs of the sharded server. The default disables
/// every feature, reproducing the plain serial fan-out (plus panic
/// isolation, which is always on).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Snapshot replicas per shard slot (≥ 1). Hedged requests and
    /// fail-over need at least 2.
    pub replicas: usize,
    /// Per-request deadline in milliseconds (0 = no deadline). Shards
    /// that miss it are dropped from the merge and the reply is marked
    /// degraded.
    pub budget_ms: u64,
    /// Floor of the hedge budget in milliseconds: a backup probe fires on
    /// the next replica once the primary has been silent this long
    /// (0 with `hedge_percentile` 0 = hedging off).
    pub hedge_ms: u64,
    /// When > 0, the hedge budget adapts to the shard's observed probe
    /// latency: `max(hedge_ms, percentile(p))` over a sliding window.
    pub hedge_percentile: f64,
    /// Consecutive faults that trip a shard's breaker open (0 = breaker
    /// disabled).
    pub breaker_threshold: u32,
    /// Requests skipped while open before a half-open probe is admitted.
    pub breaker_cooldown: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            replicas: 1,
            budget_ms: 0,
            hedge_ms: 0,
            hedge_percentile: 0.0,
            breaker_threshold: 0,
            breaker_cooldown: 4,
        }
    }
}

/// One injected fault, applied at the start of a shard probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Stall the probe this many milliseconds before computing (a slow
    /// replica; the probe still answers if anyone is left waiting).
    Latency(u64),
    /// Panic inside the probe (exercises `catch_unwind` isolation).
    Panic,
    /// Fail the probe with an error reply.
    Error,
}

/// Background fault rates of a seeded plan, in permille per probe.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChaosProfile {
    /// Probability (‰) a probe panics.
    pub panic_permille: u32,
    /// Probability (‰) a probe errors.
    pub error_permille: u32,
    /// Probability (‰) a probe is stalled by `latency_ms`.
    pub latency_permille: u32,
    /// Stall length for latency faults.
    pub latency_ms: u64,
}

/// splitmix64 finalizer (public-domain constants; same avalanche the
/// router uses) — FNV states of small integers need scattering before a
/// modulo draw.
#[inline]
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// A deterministic fault-injection schedule. Explicit per-probe faults
/// take precedence over blanket slow replicas, which take precedence
/// over the seeded background profile.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    profile: Option<ChaosProfile>,
    explicit: HashMap<(u64, u32, u32), FaultKind>,
    slow_replicas: HashMap<(u32, u32), u64>,
    corrupt_swaps: Vec<u64>,
}

impl FaultPlan {
    /// An empty plan (no faults until schedules are added).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan whose background faults are drawn pseudo-randomly from
    /// `profile`, keyed by `(seed, request, shard, replica)`.
    pub fn seeded(seed: u64, profile: ChaosProfile) -> Self {
        FaultPlan {
            seed,
            profile: Some(profile),
            ..FaultPlan::default()
        }
    }

    /// Schedules `kind` for the probe of `(request, shard, replica)`.
    pub fn with_probe_fault(
        mut self,
        request: u64,
        shard: usize,
        replica: usize,
        kind: FaultKind,
    ) -> Self {
        self.explicit
            .insert((request, shard as u32, replica as u32), kind);
        self
    }

    /// Makes every probe of `(shard, replica)` stall `ms` milliseconds —
    /// the "one slow replica" scenario hedging exists for.
    pub fn with_slow_replica(mut self, shard: usize, replica: usize, ms: u64) -> Self {
        self.slow_replicas
            .insert((shard as u32, replica as u32), ms);
        self
    }

    /// Corrupts the stamped tag of the `attempt`-th snapshot publication
    /// (0-based, counted across all shards), forcing the pre-publish
    /// validation to roll the swap back.
    pub fn with_corrupt_swap(mut self, attempt: u64) -> Self {
        self.corrupt_swaps.push(attempt);
        self
    }

    /// The fault (if any) injected into this probe.
    pub fn probe_fault(&self, request: u64, shard: usize, replica: usize) -> Option<FaultKind> {
        if let Some(kind) = self.explicit.get(&(request, shard as u32, replica as u32)) {
            return Some(*kind);
        }
        if let Some(ms) = self.slow_replicas.get(&(shard as u32, replica as u32)) {
            return Some(FaultKind::Latency(*ms));
        }
        let p = self.profile.as_ref()?;
        let h = mix(fnv1a_u64(
            fnv1a_u64(fnv1a_u64(self.seed ^ FNV_OFFSET, request), shard as u64),
            replica as u64,
        ));
        let roll = (h % 1000) as u32;
        if roll < p.panic_permille {
            Some(FaultKind::Panic)
        } else if roll < p.panic_permille + p.error_permille {
            Some(FaultKind::Error)
        } else if roll < p.panic_permille + p.error_permille + p.latency_permille {
            Some(FaultKind::Latency(p.latency_ms))
        } else {
            None
        }
    }

    /// Whether this publication attempt's tag should be corrupted.
    pub fn corrupts_swap(&self, attempt: u64) -> bool {
        self.corrupt_swaps.contains(&attempt)
    }

    /// Corrupts a stamped tag in place (what a torn or buggy build would
    /// look like to the validation gate).
    pub fn corrupt_tag(tag: &mut ShardTag) {
        tag.graph_digest ^= 0xdead_beef_dead_beef;
    }
}

/// Circuit-breaker state of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every request is admitted.
    Closed,
    /// Tripped: requests are rejected (skipped from the fan-out) until
    /// the cooldown admits a probe.
    Open,
    /// One probe is in flight; its outcome closes or re-opens.
    HalfOpen,
}

/// What the breaker decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Normal admission (breaker closed or disabled).
    Allow,
    /// The half-open trial probe.
    Probe,
    /// Rejected: skip the shard, don't probe.
    Reject,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_faults: u32,
    skipped: u32,
}

/// A per-shard circuit breaker: closed → open after `threshold`
/// consecutive faults → half-open probe after `cooldown` rejected
/// requests → closed on probe success (open again on probe fault).
/// Cooldown is counted in requests, not wall-clock, so tests are exact.
pub struct Breaker {
    threshold: u32,
    cooldown: u32,
    inner: parking_lot::Mutex<BreakerInner>,
    opens: AtomicU64,
}

impl Breaker {
    /// A breaker tripping after `threshold` consecutive faults (0
    /// disables it: everything is admitted) and probing after `cooldown`
    /// rejections.
    pub fn new(threshold: u32, cooldown: u32) -> Self {
        Breaker {
            threshold,
            cooldown: cooldown.max(1),
            inner: parking_lot::Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_faults: 0,
                skipped: 0,
            }),
            opens: AtomicU64::new(0),
        }
    }

    /// Admission decision for one request.
    pub fn admit(&self) -> Admission {
        if self.threshold == 0 {
            return Admission::Allow;
        }
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                inner.skipped += 1;
                if inner.skipped >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::Reject
                }
            }
            // A trial probe is already in flight; stay out of its way.
            BreakerState::HalfOpen => Admission::Reject,
        }
    }

    /// Records the outcome of an admitted request. `Reject` admissions
    /// record nothing.
    pub fn record(&self, admission: Admission, ok: bool) {
        if self.threshold == 0 || admission == Admission::Reject {
            return;
        }
        let mut inner = self.inner.lock();
        if ok {
            // Any success is evidence of health, even one admitted before
            // a concurrent trip: close and reset.
            inner.state = BreakerState::Closed;
            inner.consecutive_faults = 0;
            inner.skipped = 0;
            return;
        }
        match admission {
            Admission::Probe => {
                inner.state = BreakerState::Open;
                inner.skipped = 0;
                self.opens.fetch_add(1, Ordering::Relaxed);
            }
            Admission::Allow => {
                inner.consecutive_faults += 1;
                if inner.consecutive_faults >= self.threshold && inner.state == BreakerState::Closed
                {
                    inner.state = BreakerState::Open;
                    inner.consecutive_faults = 0;
                    inner.skipped = 0;
                    self.opens.fetch_add(1, Ordering::Relaxed);
                }
            }
            Admission::Reject => unreachable!("rejections return early"),
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// How many times this breaker tripped open (including re-opens from
    /// a failed half-open probe).
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }
}

/// Monotone fault-tolerance counters of one server (atomics; snapshot
/// via [`FaultCounters::snapshot`]).
#[derive(Debug, Default)]
pub(crate) struct FaultCounters {
    pub probes: AtomicU64,
    pub panics: AtomicU64,
    pub errors: AtomicU64,
    pub timeouts: AtomicU64,
    pub hedges: AtomicU64,
    pub failovers: AtomicU64,
    pub hedge_wins: AtomicU64,
    pub breaker_skips: AtomicU64,
    pub degraded: AtomicU64,
    pub rollbacks: AtomicU64,
}

impl FaultCounters {
    pub fn snapshot(&self, breaker_opens: u64) -> FaultStats {
        FaultStats {
            probes: self.probes.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            breaker_opens,
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time fault-tolerance counters (part of `ServeStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Shard probes spawned (primaries, hedges and failovers).
    pub probes: u64,
    /// Probes that panicked (isolated by `catch_unwind`).
    pub panics: u64,
    /// Probes that returned an error.
    pub errors: u64,
    /// Shards dropped at the request deadline.
    pub timeouts: u64,
    /// Backup probes fired by the latency hedge.
    pub hedges: u64,
    /// Backup probes fired by immediate fail-over after a primary fault.
    pub failovers: u64,
    /// Requests where the backup probe answered.
    pub hedge_wins: u64,
    /// Times any shard breaker tripped open.
    pub breaker_opens: u64,
    /// Requests that skipped a shard because its breaker was open.
    pub breaker_skips: u64,
    /// Replies returned with partial coverage.
    pub degraded: u64,
    /// Snapshot swaps rolled back by the validation gate.
    pub rollbacks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_respects_precedence() {
        let plan = FaultPlan::seeded(
            9,
            ChaosProfile {
                panic_permille: 100,
                error_permille: 100,
                latency_permille: 100,
                latency_ms: 7,
            },
        )
        .with_probe_fault(3, 1, 0, FaultKind::Panic)
        .with_slow_replica(2, 1, 55);
        // Explicit beats everything.
        assert_eq!(plan.probe_fault(3, 1, 0), Some(FaultKind::Panic));
        // Slow replica beats the profile.
        assert_eq!(plan.probe_fault(0, 2, 1), Some(FaultKind::Latency(55)));
        // Seeded draws repeat exactly.
        for req in 0..200u64 {
            for shard in 0..4 {
                for replica in 0..2 {
                    assert_eq!(
                        plan.probe_fault(req, shard, replica),
                        plan.probe_fault(req, shard, replica)
                    );
                }
            }
        }
        // ~30% fault rate: over 1600 draws some of each kind must appear.
        let mut kinds = [0u32; 3];
        for req in 0..200u64 {
            for shard in 0..4 {
                match plan.probe_fault(req, shard, 1) {
                    Some(FaultKind::Panic) => kinds[0] += 1,
                    Some(FaultKind::Error) => kinds[1] += 1,
                    Some(FaultKind::Latency(_)) => kinds[2] += 1,
                    None => {}
                }
            }
        }
        assert!(kinds.iter().all(|&k| k > 0), "kinds drawn: {kinds:?}");
    }

    #[test]
    fn corrupt_tag_breaks_digests() {
        let mut tag = ShardTag {
            shard: 0,
            generation: 3,
            graph_digest: 42,
            profile_digest: 7,
        };
        let before = tag;
        FaultPlan::corrupt_tag(&mut tag);
        assert_ne!(tag.graph_digest, before.graph_digest);
        assert_eq!(tag.generation, before.generation);
    }

    #[test]
    fn breaker_disabled_admits_everything() {
        let b = Breaker::new(0, 4);
        for _ in 0..10 {
            assert_eq!(b.admit(), Admission::Allow);
            b.record(Admission::Allow, false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let b = Breaker::new(2, 2);
        // Two consecutive faults trip it.
        b.record(b.admit(), false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(b.admit(), false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        // Cooldown: first rejection, then a half-open probe.
        assert_eq!(b.admit(), Admission::Reject);
        let probe = b.admit();
        assert_eq!(probe, Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // While the probe is out, others are rejected.
        assert_eq!(b.admit(), Admission::Reject);
        // Failed probe re-opens.
        b.record(probe, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        // Next probe succeeds and closes.
        assert_eq!(b.admit(), Admission::Reject);
        let probe = b.admit();
        assert_eq!(probe, Admission::Probe);
        b.record(probe, true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn success_interrupts_a_fault_streak() {
        let b = Breaker::new(3, 2);
        b.record(b.admit(), false);
        b.record(b.admit(), false);
        b.record(b.admit(), true); // streak reset
        b.record(b.admit(), false);
        b.record(b.admit(), false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(b.admit(), false);
        assert_eq!(b.state(), BreakerState::Open);
    }
}
