//! Exponentially-decayed, log-bucketed latency histograms.
//!
//! The hedge budget of §10 used to come from a 64-sample sliding window:
//! cheap, but cold-start-prone (8 samples made a "percentile") and
//! cliff-edged (one regime change ages out all at once). This histogram
//! replaces it: latencies land in log-spaced buckets (4 per octave of
//! microseconds, so every bucket is within ~12.5 % of its neighbors),
//! and bucket weights decay geometrically on a **request-count clock** —
//! every [`DecayedHistogram::DECAY_PERIOD`] recorded samples, all weights
//! are halved. Old traffic fades smoothly instead of falling off a
//! window edge, and because the clock is a counter rather than wall
//! time, the histogram's state is a *pure function of the recorded
//! sequence*: the same samples in the same order produce bit-identical
//! buckets and quantiles on any host, at any thread count — which is
//! what lets the hedge-delay property tests be exact.
//!
//! Halving is the decay factor on purpose: multiplying by 0.5 is exact
//! in binary floating point, so decayed weights stay exactly
//! representable and the determinism contract costs nothing.

use std::time::Duration;

/// Sub-buckets per octave (power of two). 4 gives ~12.5 % relative
/// resolution — plenty for sizing a hedge delay.
const SUB: u64 = 4;
/// log2(SUB).
const LOG_SUB: u32 = 2;
/// Total buckets: enough for every microsecond value up to u64::MAX.
const NBUCKETS: usize = ((64 - LOG_SUB as usize) + 1) * SUB as usize;
/// Below this many *lifetime* samples a quantile is too noisy to act on
/// (same floor the old window used).
const MIN_SAMPLES: u64 = 8;

/// The bucket index of a microsecond value: values below `SUB` get exact
/// unit buckets; above, the leading `1 + LOG_SUB` significant bits pick
/// the bucket (the classic log-linear scheme).
#[inline]
fn bucket_of(us: u64) -> usize {
    if us < SUB {
        return us as usize;
    }
    let shift = us.ilog2() - LOG_SUB;
    let idx = (shift as u64 + 1) * SUB + ((us >> shift) - SUB);
    (idx as usize).min(NBUCKETS - 1)
}

/// The *upper bound* (µs) of a bucket — quantiles answer conservatively,
/// which for a hedge delay errs toward waiting slightly longer, never
/// toward hedging early.
#[inline]
fn bucket_upper_us(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let shift = (idx / SUB - 1) as u32;
    let lower = (SUB + idx % SUB) << shift;
    lower + (1u64 << shift) - 1
}

/// A point-in-time copy of a histogram's state, used by tests to assert
/// bit-identity and by stats reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// `(bucket index, decayed weight)` for every non-empty bucket, in
    /// bucket order.
    pub buckets: Vec<(usize, f64)>,
    /// Lifetime samples recorded (not decayed).
    pub recorded: u64,
    /// Sum of decayed weights.
    pub total_weight: f64,
}

impl HistogramSnapshot {
    /// The `p`-quantile (0.0–1.0) of the snapshot's decayed distribution,
    /// as the matching bucket's upper bound — the same answer the live
    /// [`DecayedHistogram::quantile`] would give at snapshot time, with
    /// the same [`MIN_SAMPLES`] floor. Lets offline consumers (the
    /// scenario harness's latency columns, stats reporting) read
    /// percentiles out of a captured snapshot without holding the
    /// histogram lock.
    pub fn quantile(&self, p: f64) -> Option<Duration> {
        if self.recorded < MIN_SAMPLES || self.total_weight <= 0.0 {
            return None;
        }
        let target = self.total_weight * p.clamp(0.0, 1.0);
        let mut cum = 0.0;
        for &(idx, w) in &self.buckets {
            if w <= 0.0 {
                continue;
            }
            cum += w;
            if cum >= target {
                return Some(Duration::from_micros(bucket_upper_us(idx)));
            }
        }
        self.buckets
            .iter()
            .rev()
            .find(|&&(_, w)| w > 0.0)
            .map(|&(idx, _)| Duration::from_micros(bucket_upper_us(idx)))
    }
}

struct HistogramState {
    weights: Vec<f64>,
    total_weight: f64,
    recorded: u64,
    since_decay: u64,
}

/// A log-bucketed latency histogram with request-count-clocked
/// exponential decay. All operations are deterministic on the recorded
/// sequence; see the module docs.
pub struct DecayedHistogram {
    state: parking_lot::Mutex<HistogramState>,
    period: u64,
}

impl Default for DecayedHistogram {
    fn default() -> Self {
        DecayedHistogram::new(Self::DECAY_PERIOD)
    }
}

impl DecayedHistogram {
    /// Default decay period: weights halve every this many samples, so
    /// the histogram's "memory" is a few hundred requests — comparable
    /// to the old 64-sample window but without its cliff.
    pub const DECAY_PERIOD: u64 = 256;

    /// A histogram whose weights halve every `period` samples (`period`
    /// is clamped to ≥ 1).
    pub fn new(period: u64) -> Self {
        DecayedHistogram {
            state: parking_lot::Mutex::new(HistogramState {
                weights: vec![0.0; NBUCKETS],
                total_weight: 0.0,
                recorded: 0,
                since_decay: 0,
            }),
            period: period.max(1),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = bucket_of(us);
        let mut s = self.state.lock();
        s.weights[bucket] += 1.0;
        s.total_weight += 1.0;
        s.recorded += 1;
        s.since_decay += 1;
        if s.since_decay >= self.period {
            s.since_decay = 0;
            let mut total = 0.0;
            for w in &mut s.weights {
                // Exact in binary fp: determinism costs nothing.
                *w *= 0.5;
                total += *w;
            }
            s.total_weight = total;
        }
    }

    /// Lifetime samples recorded.
    pub fn recorded(&self) -> u64 {
        self.state.lock().recorded
    }

    /// The `p`-quantile (0.0–1.0) of the decayed distribution, as the
    /// matching bucket's upper bound, or `None` until [`MIN_SAMPLES`]
    /// lifetime samples accumulated.
    pub fn quantile(&self, p: f64) -> Option<Duration> {
        let s = self.state.lock();
        if s.recorded < MIN_SAMPLES || s.total_weight <= 0.0 {
            return None;
        }
        let target = s.total_weight * p.clamp(0.0, 1.0);
        let mut cum = 0.0;
        for (idx, &w) in s.weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            cum += w;
            if cum >= target {
                return Some(Duration::from_micros(bucket_upper_us(idx)));
            }
        }
        // Rounding left the target above the final cumulative weight:
        // answer with the largest non-empty bucket.
        s.weights
            .iter()
            .rposition(|&w| w > 0.0)
            .map(|idx| Duration::from_micros(bucket_upper_us(idx)))
    }

    /// Copies the current state (for tests and stats).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = self.state.lock();
        HistogramSnapshot {
            buckets: s
                .weights
                .iter()
                .enumerate()
                .filter(|(_, &w)| w > 0.0)
                .map(|(i, &w)| (i, w))
                .collect(),
            recorded: s.recorded,
            total_weight: s.total_weight,
        }
    }
}

/// The hedge delay for one shard: `max(floor_ms, quantile(p))` over its
/// decayed probe-latency histogram, or just the floor until the
/// histogram has enough samples. Pure given the histogram state — the
/// determinism property test calls this directly.
pub fn hedge_delay(hist: &DecayedHistogram, floor_ms: u64, percentile: f64) -> Duration {
    let mut delay = Duration::from_millis(floor_ms);
    if percentile > 0.0 {
        if let Some(q) = hist.quantile(percentile) {
            delay = delay.max(q);
        }
    }
    delay
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_bounds_contain_values() {
        let mut prev = 0usize;
        for us in (0..4096u64).chain((12..40).map(|e| (1u64 << e) + 7)) {
            let b = bucket_of(us);
            assert!(b >= prev || us < 4, "bucket order broke at {us}");
            prev = prev.max(b);
            assert!(
                bucket_upper_us(b) >= us,
                "upper bound {} < value {us}",
                bucket_upper_us(b)
            );
        }
        // Relative resolution: the upper bound is within 25 % of the value.
        for us in 8u64..4096 {
            let ub = bucket_upper_us(bucket_of(us));
            assert!(ub < us + us / 4 + 1, "{us} → upper {ub}");
        }
    }

    #[test]
    fn quantile_needs_samples_then_brackets_them() {
        let h = DecayedHistogram::default();
        assert_eq!(h.quantile(0.9), None);
        for ms in 1..=10u64 {
            h.record(Duration::from_millis(ms));
        }
        let p0 = h.quantile(0.0).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert!(p0 >= Duration::from_millis(1));
        assert!(p100 >= Duration::from_millis(10));
        assert!(p100 < Duration::from_millis(13), "p100 {p100:?}");
        assert!(h.quantile(0.5).unwrap() <= p100);
    }

    #[test]
    fn decay_forgets_an_old_regime() {
        let h = DecayedHistogram::new(64);
        for _ in 0..64 {
            h.record(Duration::from_millis(100));
        }
        // Ten decay periods of a new, faster regime: the old 100 ms mass
        // decays to 2^-10 of the new mass.
        for _ in 0..640 {
            h.record(Duration::from_millis(1));
        }
        let p90 = h.quantile(0.9).unwrap();
        assert!(p90 < Duration::from_millis(2), "p90 {p90:?}");
    }

    #[test]
    fn state_is_a_pure_function_of_the_sequence() {
        let seq: Vec<Duration> = (0..500u64)
            .map(|i| Duration::from_micros((i * 2_654_435_761) % 200_000))
            .collect();
        let a = DecayedHistogram::default();
        let b = DecayedHistogram::default();
        for d in &seq {
            a.record(*d);
            b.record(*d);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(p), b.quantile(p));
        }
    }

    #[test]
    fn snapshot_quantile_matches_live_quantile() {
        let h = DecayedHistogram::default();
        let snap_empty = h.snapshot();
        assert_eq!(snap_empty.quantile(0.95), None);
        for i in 0..500u64 {
            h.record(Duration::from_micros((i * 2_654_435_761) % 150_000));
        }
        let snap = h.snapshot();
        for p in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(snap.quantile(p), h.quantile(p), "p = {p}");
        }
    }

    #[test]
    fn hedge_delay_respects_floor_and_percentile() {
        let h = DecayedHistogram::default();
        // No samples: the floor rules.
        assert_eq!(hedge_delay(&h, 5, 0.9), Duration::from_millis(5));
        for _ in 0..32 {
            h.record(Duration::from_millis(40));
        }
        // The observed p90 dominates a lower floor…
        assert!(hedge_delay(&h, 5, 0.9) >= Duration::from_millis(40));
        // …and a higher floor dominates the observation.
        assert_eq!(hedge_delay(&h, 500, 0.9), Duration::from_millis(500));
        // Percentile 0 disables the adaptive part.
        assert_eq!(hedge_delay(&h, 5, 0.0), Duration::from_millis(5));
    }
}
