//! Asynchronous log ingestion: a bounded multi-producer queue feeding the
//! per-shard delta rebuilds.
//!
//! Producers call [`IngestQueue::offer`] from any thread; it never blocks.
//! When the queue is full the entry is *rejected* and counted — bounded
//! backpressure, so a slow rebuild loop can never let the queue grow
//! without limit. The (single) writer drains the queue, partitions the
//! deltas per shard and swaps rebuilt snapshots in.
//!
//! Built on `std::sync::mpsc::sync_channel` — the in-repo crossbeam shim
//! has no channels, and the std bounded channel gives the same non-blocking
//! `try_send` contract a lock-free ring would.

use pqsda_querylog::LogEntry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

/// Counters of one queue's lifetime (monotone; read them for stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Entries accepted into the queue.
    pub accepted: u64,
    /// Entries rejected because the queue was at capacity.
    pub rejected: u64,
    /// Entries drained by the writer so far.
    pub drained: u64,
}

impl IngestStats {
    /// Entries currently waiting (accepted − drained).
    pub fn depth(&self) -> u64 {
        self.accepted - self.drained
    }
}

/// The bounded ingestion queue.
pub struct IngestQueue {
    tx: SyncSender<LogEntry>,
    rx: parking_lot::Mutex<Receiver<LogEntry>>,
    accepted: AtomicU64,
    rejected: AtomicU64,
    drained: AtomicU64,
    capacity: usize,
}

impl IngestQueue {
    /// A queue holding at most `capacity` undrained entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ingestion queue needs positive capacity");
        let (tx, rx) = sync_channel(capacity);
        IngestQueue {
            tx,
            rx: parking_lot::Mutex::new(rx),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one entry; `false` means the queue was full and the entry
    /// was dropped (backpressure — the producer decides whether to retry).
    /// Never blocks.
    pub fn offer(&self, entry: LogEntry) -> bool {
        match self.tx.try_send(entry) {
            Ok(()) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Drains everything currently queued, in arrival order. Called by the
    /// rebuild writer; concurrent producers keep offering while this runs
    /// (their entries land in this or the next drain).
    pub fn drain(&self) -> Vec<LogEntry> {
        let rx = self.rx.lock();
        let mut out = Vec::new();
        while let Ok(e) = rx.try_recv() {
            out.push(e);
        }
        self.drained.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Current counters.
    pub fn stats(&self) -> IngestStats {
        // Load drained before accepted so a racing `offer` can only make
        // the reported depth conservative (never negative).
        let drained = self.drained.load(Ordering::Relaxed);
        let rejected = self.rejected.load(Ordering::Relaxed);
        let accepted = self.accepted.load(Ordering::Relaxed);
        IngestStats {
            accepted: accepted.max(drained),
            rejected,
            drained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqsda_querylog::UserId;

    fn entry(i: u64) -> LogEntry {
        LogEntry::new(UserId(i as u32), format!("q{i}"), None, i)
    }

    #[test]
    fn accepts_until_capacity_then_rejects() {
        let q = IngestQueue::new(3);
        assert!(q.offer(entry(0)));
        assert!(q.offer(entry(1)));
        assert!(q.offer(entry(2)));
        assert!(!q.offer(entry(3)), "fourth offer must hit backpressure");
        let s = q.stats();
        assert_eq!((s.accepted, s.rejected, s.depth()), (3, 1, 3));
    }

    #[test]
    fn drain_returns_arrival_order_and_frees_capacity() {
        let q = IngestQueue::new(2);
        q.offer(entry(0));
        q.offer(entry(1));
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].timestamp, 0);
        assert_eq!(drained[1].timestamp, 1);
        assert_eq!(q.stats().depth(), 0);
        assert!(q.offer(entry(2)), "drain must free capacity");
        assert_eq!(q.drain().len(), 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing_accepted() {
        let q = std::sync::Arc::new(IngestQueue::new(64));
        let mut total_accepted = 0u64;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = std::sync::Arc::clone(&q);
                    s.spawn(move || {
                        let mut ok = 0u64;
                        for i in 0..100u64 {
                            if q.offer(entry(t * 1000 + i)) {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect();
            for h in handles {
                total_accepted += h.join().unwrap();
            }
        });
        let drained = q.drain().len() as u64;
        assert_eq!(drained, total_accepted, "every accepted entry is drained");
        let s = q.stats();
        assert_eq!(s.accepted, total_accepted);
        assert_eq!(s.accepted + s.rejected, 400);
    }
}
