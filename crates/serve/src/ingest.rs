//! Asynchronous log ingestion: a bounded multi-producer queue feeding the
//! per-shard delta rebuilds.
//!
//! Producers call [`IngestQueue::offer`] from any thread; it never blocks.
//! When the queue is full the entry is *rejected* and counted — bounded
//! backpressure, so a slow rebuild loop can never let the queue grow
//! without limit. The (single) writer drains the queue, partitions the
//! deltas per shard and swaps rebuilt snapshots in.
//!
//! Built on `std::sync::mpsc::sync_channel` — the in-repo crossbeam shim
//! has no channels, and the std bounded channel gives the same non-blocking
//! `try_send` contract a lock-free ring would.
//!
//! Deadline-aware producers use [`IngestQueue::offer_with_deadline`]: the
//! queue projects how long a new entry will wait (current depth × the
//! measured per-entry drain cost, fed back by `apply_deltas`) and sheds
//! the entry with an explicit [`IngestOffer::RejectedDeadline`] when the
//! projection exceeds the deadline's remaining budget. Every rejection —
//! capacity or deadline — records the projection it was based on in
//! [`IngestStats::last_projected_wait_us`], so shedding decisions are
//! auditable after the fact.

use pqsda_parallel::Deadline;
use pqsda_querylog::LogEntry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

/// How one deadline-aware offer resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOffer {
    /// The entry is queued.
    Accepted,
    /// The queue was at capacity (classic backpressure).
    RejectedFull,
    /// The projected wait exceeded the deadline's remaining budget.
    RejectedDeadline,
}

impl IngestOffer {
    /// Whether the entry was queued.
    pub fn is_accepted(&self) -> bool {
        matches!(self, IngestOffer::Accepted)
    }
}

/// Counters of one queue's lifetime (monotone; read them for stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Entries accepted into the queue.
    pub accepted: u64,
    /// Entries rejected because the queue was at capacity.
    pub rejected: u64,
    /// Entries rejected because their projected wait exceeded the offer's
    /// deadline.
    pub rejected_deadline: u64,
    /// Entries drained by the writer so far.
    pub drained: u64,
    /// The wait projection (µs) behind the most recent rejection of
    /// either kind — the audit trail for shedding decisions.
    pub last_projected_wait_us: u64,
    /// The per-entry drain-cost estimate (µs) admission projects with.
    pub service_estimate_us: u64,
}

impl IngestStats {
    /// Entries currently waiting (accepted − drained).
    pub fn depth(&self) -> u64 {
        self.accepted - self.drained
    }
}

/// The bounded ingestion queue.
pub struct IngestQueue {
    tx: SyncSender<LogEntry>,
    rx: parking_lot::Mutex<Receiver<LogEntry>>,
    accepted: AtomicU64,
    rejected: AtomicU64,
    rejected_deadline: AtomicU64,
    drained: AtomicU64,
    last_projected_wait_us: AtomicU64,
    service_estimate_us: AtomicU64,
    capacity: usize,
}

impl IngestQueue {
    /// A queue holding at most `capacity` undrained entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ingestion queue needs positive capacity");
        let (tx, rx) = sync_channel(capacity);
        IngestQueue {
            tx,
            rx: parking_lot::Mutex::new(rx),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            last_projected_wait_us: AtomicU64::new(0),
            service_estimate_us: AtomicU64::new(0),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one entry; `false` means the queue was full and the entry
    /// was dropped (backpressure — the producer decides whether to retry).
    /// Never blocks.
    ///
    /// `accepted` is incremented *before* the send and compensated on
    /// rejection. The old order (send, then count) let a concurrent drain
    /// observe `drained > accepted`; this way the accepted counter is
    /// always ≥ the entries actually in flight, so `accepted − drained`
    /// can transiently over-count the depth but never go negative, and at
    /// quiescence `accepted + rejected` equals the entries offered.
    pub fn offer(&self, entry: LogEntry) -> bool {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(entry) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.accepted.fetch_sub(1, Ordering::Relaxed);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                // Audit even capacity rejections: the projection at the
                // decision says how far behind the drain loop was.
                self.last_projected_wait_us
                    .store(self.projected_wait_us(), Ordering::Relaxed);
                false
            }
        }
    }

    /// Deadline-aware offer: sheds the entry up front when its projected
    /// wait (depth × drain-cost estimate) exceeds the deadline's
    /// remaining budget, with an explicit [`IngestOffer::RejectedDeadline`]
    /// — never a silent drop. Without a deadline this is [`Self::offer`]
    /// with a richer return. Never blocks.
    pub fn offer_with_deadline(&self, entry: LogEntry, deadline: Option<&Deadline>) -> IngestOffer {
        if let Some(deadline) = deadline {
            let projected = self.projected_wait_us();
            if projected > deadline.remaining_us() {
                self.last_projected_wait_us
                    .store(projected, Ordering::Relaxed);
                self.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                return IngestOffer::RejectedDeadline;
            }
        }
        if self.offer(entry) {
            IngestOffer::Accepted
        } else {
            IngestOffer::RejectedFull
        }
    }

    /// The wait a newly queued entry should expect (µs): current depth ×
    /// the measured per-entry drain cost. Zero until the writer has fed
    /// an estimate — a queue with an unmeasured drain never deadline-sheds.
    pub fn projected_wait_us(&self) -> u64 {
        self.stats()
            .depth()
            .saturating_mul(self.service_estimate_us.load(Ordering::Relaxed))
    }

    /// Feeds back the measured per-entry drain cost (µs). Called by the
    /// writer after each `apply_deltas` cycle so admission projects with
    /// the host's actual speed, not a config constant.
    pub fn set_service_estimate_us(&self, us: u64) {
        self.service_estimate_us.store(us, Ordering::Relaxed);
    }

    /// Drains everything currently queued, in arrival order. Called by the
    /// rebuild writer; concurrent producers keep offering while this runs
    /// (their entries land in this or the next drain).
    pub fn drain(&self) -> Vec<LogEntry> {
        self.drain_up_to(usize::MAX)
    }

    /// Drains at most `limit` entries, in arrival order — the rate-limited
    /// variant backing `ServeConfig::max_delta_entries`. Entries beyond
    /// the limit stay queued for the next cycle.
    pub fn drain_up_to(&self, limit: usize) -> Vec<LogEntry> {
        let rx = self.rx.lock();
        let mut out = Vec::new();
        while out.len() < limit {
            match rx.try_recv() {
                Ok(e) => out.push(e),
                Err(_) => break,
            }
        }
        self.drained.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Current counters.
    pub fn stats(&self) -> IngestStats {
        // Load drained before accepted: `offer` counts an entry accepted
        // before sending it, so accepted ≥ drained always holds and the
        // reported depth can only be conservative (never negative).
        let drained = self.drained.load(Ordering::Relaxed);
        let rejected = self.rejected.load(Ordering::Relaxed);
        let accepted = self.accepted.load(Ordering::Relaxed);
        IngestStats {
            accepted,
            rejected,
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            drained,
            last_projected_wait_us: self.last_projected_wait_us.load(Ordering::Relaxed),
            service_estimate_us: self.service_estimate_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqsda_querylog::UserId;
    use proptest::prelude::*;

    fn entry(i: u64) -> LogEntry {
        LogEntry::new(UserId(i as u32), format!("q{i}"), None, i)
    }

    #[test]
    fn accepts_until_capacity_then_rejects() {
        let q = IngestQueue::new(3);
        assert!(q.offer(entry(0)));
        assert!(q.offer(entry(1)));
        assert!(q.offer(entry(2)));
        assert!(!q.offer(entry(3)), "fourth offer must hit backpressure");
        let s = q.stats();
        assert_eq!((s.accepted, s.rejected, s.depth()), (3, 1, 3));
    }

    #[test]
    fn drain_returns_arrival_order_and_frees_capacity() {
        let q = IngestQueue::new(2);
        q.offer(entry(0));
        q.offer(entry(1));
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].timestamp, 0);
        assert_eq!(drained[1].timestamp, 1);
        assert_eq!(q.stats().depth(), 0);
        assert!(q.offer(entry(2)), "drain must free capacity");
        assert_eq!(q.drain().len(), 1);
    }

    #[test]
    fn drain_up_to_respects_the_limit_and_keeps_the_rest() {
        let q = IngestQueue::new(8);
        for i in 0..6 {
            assert!(q.offer(entry(i)));
        }
        let first = q.drain_up_to(4);
        assert_eq!(first.len(), 4);
        assert_eq!(first[0].timestamp, 0);
        let s = q.stats();
        assert_eq!((s.drained, s.depth()), (4, 2));
        // The remainder arrives in order on the next cycle.
        let rest = q.drain_up_to(4);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].timestamp, 4);
        assert_eq!(q.stats().depth(), 0);
    }

    #[test]
    fn deadline_offer_sheds_explicitly_and_audits_the_projection() {
        let q = IngestQueue::new(16);
        // Unmeasured drain → projection 0 → deadline offers always pass.
        assert_eq!(
            q.offer_with_deadline(entry(0), Some(&Deadline::in_ms(0))),
            IngestOffer::Accepted
        );
        // Writer feeds back a 10 ms per-entry drain cost; with 4 queued
        // entries the projection is 40 ms.
        for i in 1..4 {
            assert!(q.offer(entry(i)));
        }
        q.set_service_estimate_us(10_000);
        assert_eq!(q.projected_wait_us(), 40_000);
        let shed = q.offer_with_deadline(entry(9), Some(&Deadline::in_ms(5)));
        assert_eq!(shed, IngestOffer::RejectedDeadline);
        assert!(!shed.is_accepted());
        let s = q.stats();
        assert_eq!(s.rejected_deadline, 1);
        assert_eq!(s.rejected, 0, "deadline sheds are counted apart");
        assert_eq!(s.last_projected_wait_us, 40_000);
        assert_eq!(s.service_estimate_us, 10_000);
        // A generous deadline is still admitted; no deadline always is.
        assert!(q
            .offer_with_deadline(entry(10), Some(&Deadline::in_ms(10_000)))
            .is_accepted());
        assert!(q.offer_with_deadline(entry(11), None).is_accepted());
        assert_eq!(q.stats().depth(), 6);
    }

    #[test]
    fn capacity_rejection_records_its_projection_too() {
        let q = IngestQueue::new(2);
        q.set_service_estimate_us(1_000);
        assert!(q.offer(entry(0)));
        assert!(q.offer(entry(1)));
        assert_eq!(
            q.offer_with_deadline(entry(2), None),
            IngestOffer::RejectedFull
        );
        let s = q.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.last_projected_wait_us, 2_000, "depth 2 × 1 ms estimate");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Under concurrent producers racing a concurrent drainer, the
        /// ledger must balance exactly: accepted + rejected = offered and
        /// (after a final drain) drained = accepted. The pre-fix ordering
        /// (send, then count) let a racing drain observe drained >
        /// accepted, which `stats` papered over with a `max`.
        #[test]
        fn counters_sum_to_offered_under_concurrency(
            capacity in 1usize..40,
            producers in 1u64..5,
            per_producer in 1u64..120,
        ) {
            let q = std::sync::Arc::new(IngestQueue::new(capacity));
            let offered = producers * per_producer;
            let mut produced_ok = 0u64;
            let mut drained_live = 0u64;
            std::thread::scope(|s| {
                let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
                let drainer = {
                    let q = std::sync::Arc::clone(&q);
                    let stop = std::sync::Arc::clone(&stop);
                    s.spawn(move || {
                        let mut got = 0u64;
                        while !stop.load(Ordering::Acquire) {
                            got += q.drain_up_to(3).len() as u64;
                            // Mid-drain stats may over-count depth but the
                            // ledger must never go negative or un-balance.
                            let st = q.stats();
                            assert!(st.accepted >= st.drained, "depth underflow: {st:?}");
                            std::thread::yield_now();
                        }
                        got
                    })
                };
                let handles: Vec<_> = (0..producers)
                    .map(|t| {
                        let q = std::sync::Arc::clone(&q);
                        s.spawn(move || {
                            let mut ok = 0u64;
                            for i in 0..per_producer {
                                if q.offer(entry(t * 10_000 + i)) {
                                    ok += 1;
                                }
                            }
                            ok
                        })
                    })
                    .collect();
                for h in handles {
                    produced_ok += h.join().unwrap();
                }
                stop.store(true, Ordering::Release);
                drained_live = drainer.join().unwrap();
            });
            let final_drain = q.drain().len() as u64;
            let s = q.stats();
            prop_assert_eq!(s.accepted, produced_ok);
            prop_assert_eq!(s.accepted + s.rejected, offered);
            prop_assert_eq!(s.drained, drained_live + final_drain);
            prop_assert_eq!(s.drained, s.accepted);
            prop_assert_eq!(s.depth(), 0);
        }
    }

    #[test]
    fn concurrent_producers_lose_nothing_accepted() {
        let q = std::sync::Arc::new(IngestQueue::new(64));
        let mut total_accepted = 0u64;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let q = std::sync::Arc::clone(&q);
                    s.spawn(move || {
                        let mut ok = 0u64;
                        for i in 0..100u64 {
                            if q.offer(entry(t * 1000 + i)) {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect();
            for h in handles {
                total_accepted += h.join().unwrap();
            }
        });
        let drained = q.drain().len() as u64;
        assert_eq!(drained, total_accepted, "every accepted entry is drained");
        let s = q.stats();
        assert_eq!(s.accepted, total_accepted);
        assert_eq!(s.accepted + s.rejected, 400);
    }
}
