//! Sharded serving for PQS-DA: scale-out of the suggestion engine across
//! N independent shards with online log ingestion, zero-downtime
//! snapshot reloads, and fault-tolerant degraded serving.
//!
//! The crate is a thin production layer over `pqsda`'s single-node engine:
//!
//! - [`router`] — consistent-hash routing of users/queries/log entries to
//!   shards over a deterministic FNV-1a virtual-node ring ([`HashRing`]:
//!   pure content hashing, survives restarts and rebuilds, and a resize
//!   only relocates the ~1/N of keys the new shard claims),
//! - [`swap`] — `ArcSwap`-style snapshot publication with generation tags
//!   and content digests ([`ShardTag`]), validated before publish
//!   ([`ShardSnapshot::verify`]),
//! - [`replica`] — R serving replicas per shard ([`ReplicaSet`]) with
//!   round-robin primary selection,
//! - [`fault`] — the fault model: [`FaultConfig`] knobs (deadlines,
//!   hedging, per-shard circuit [`Breaker`]s), the deterministic
//!   [`FaultPlan`] injection harness, and [`FaultStats`] counters,
//! - [`histogram`] — exponentially-decayed, log-bucketed latency
//!   histograms ([`DecayedHistogram`]) sizing the hedge budgets,
//! - [`admission`] — the deadline-aware [`AdmissionGate`]: shed load
//!   with an explicit rejection when the projected wait exceeds the
//!   request deadline,
//! - [`coalesce`] — singleflight [`Coalescer`] for duplicate in-flight
//!   requests (followers reuse the leader's reply verbatim),
//! - [`ingest`] — a bounded, non-blocking delta queue with backpressure
//!   and deadline-aware shedding,
//! - [`sharded`] — [`ShardedPqsDa`], the scatter-gather facade tying it
//!   together: build, serve (healthy or degraded, with honest
//!   [`Coverage`] reporting), ingest, `apply_deltas` (rate-limited
//!   per-shard incremental delta application with cold-rebuild fallback,
//!   swap validation + rollback), stats.
//!
//! With one shard the router-merged output is bit-identical to the plain
//! [`pqsda::PqsDa`] engine — pinned by the equivalence proptest in
//! `tests/equivalence.rs` — so sharding is a pure deployment decision,
//! not a quality trade-off. Under faults the contract weakens honestly:
//! a full-coverage reply is still bit-identical to the healthy engine,
//! and a degraded reply equals the healthy merge over exactly the shards
//! whose tags it carries (pinned by the chaos soak in `tests/chaos.rs`).

pub mod admission;
pub mod coalesce;
pub mod fault;
pub mod histogram;
pub mod ingest;
pub mod replica;
pub mod router;
pub mod sharded;
pub mod store;
pub mod swap;

pub use admission::{AdmissionGate, AdmissionStats, Rejection, ServicePermit};
pub use coalesce::{CoalesceStats, Coalescer, Join, LeaderToken};
pub use fault::{
    Admission, Breaker, BreakerState, ChaosProfile, FaultConfig, FaultKind, FaultPlan, FaultStats,
};
pub use histogram::{hedge_delay, DecayedHistogram, HistogramSnapshot};
pub use ingest::{IngestOffer, IngestQueue, IngestStats};
pub use replica::ReplicaSet;
pub use router::{
    partition_entries, route_query, route_query_text, route_user, HashRing, PartitionKey,
    VNODES_PER_SHARD,
};
pub use sharded::{
    merge_rank_stratified, shard_probe, Coverage, ServeConfig, ServeOutcome, ServeReply,
    ServeStats, ShardedPqsDa, SuggestService, SwapReport,
};
pub use store::{
    load_server, save_server, shard_file, CommitReport, LoadReport, SaveReport, Snapshotter,
    ROUTER_FILE, WAL_FILE,
};
pub use swap::{ShardSnapshot, ShardTag, Swap};
