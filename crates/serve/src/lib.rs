//! Sharded serving for PQS-DA: scale-out of the suggestion engine across
//! N independent shards with online log ingestion and zero-downtime
//! snapshot reloads.
//!
//! The crate is a thin production layer over `pqsda`'s single-node engine:
//!
//! - [`router`] — consistent-hash routing of users/queries/log entries to
//!   shards over a deterministic FNV-1a virtual-node ring ([`HashRing`]:
//!   pure content hashing, survives restarts and rebuilds, and a resize
//!   only relocates the ~1/N of keys the new shard claims),
//! - [`swap`] — `ArcSwap`-style snapshot publication with generation tags
//!   and content digests ([`ShardTag`]),
//! - [`ingest`] — a bounded, non-blocking delta queue with backpressure,
//! - [`sharded`] — [`ShardedPqsDa`], the scatter-gather facade tying the
//!   three together: build, serve, ingest, `apply_deltas` (per-shard
//!   incremental delta application with a cold-rebuild fallback + swap),
//!   stats.
//!
//! With one shard the router-merged output is bit-identical to the plain
//! [`pqsda::PqsDa`] engine — pinned by the equivalence proptest in
//! `tests/equivalence.rs` — so sharding is a pure deployment decision,
//! not a quality trade-off.

pub mod ingest;
pub mod router;
pub mod sharded;
pub mod swap;

pub use ingest::{IngestQueue, IngestStats};
pub use router::{
    partition_entries, route_query, route_query_text, route_user, HashRing, PartitionKey,
    VNODES_PER_SHARD,
};
pub use sharded::{ServeConfig, ServeReply, ServeStats, ShardedPqsDa, SwapReport};
pub use swap::{ShardSnapshot, ShardTag, Swap};
