//! Replica groups: R snapshot slots per shard behind the existing
//! [`Swap`] cell.
//!
//! Replicas here are *serving* replicas of one shard's snapshot, not
//! copies of the data on different machines — each slot is an independent
//! publication cell holding (initially) the same `Arc`. The point is the
//! probe topology: a request picks a deterministic round-robin primary,
//! and a hedge or fail-over probe runs against the *next* slot, so a
//! fault pinned to one replica (a stalled runner, an injected panic)
//! does not take the shard out.
//!
//! The hedge budget these probes run under used to come from a 64-sample
//! sliding `LatencyWindow` that lived here; it is now sized by the
//! exponentially-decayed histograms in [`crate::histogram`].

use crate::swap::{ShardSnapshot, ShardTag, Swap};
use std::sync::Arc;

/// R publication slots for one shard's snapshot.
pub struct ReplicaSet {
    slots: Vec<Swap<ShardSnapshot>>,
}

impl ReplicaSet {
    /// A set of `replicas` slots (min 1), all publishing `initial`.
    pub fn new(initial: Arc<ShardSnapshot>, replicas: usize) -> Self {
        let n = replicas.max(1);
        ReplicaSet {
            slots: (0..n).map(|_| Swap::new(Arc::clone(&initial))).collect(),
        }
    }

    /// Number of replica slots.
    pub fn replicas(&self) -> usize {
        self.slots.len()
    }

    /// Deterministic round-robin primary for a request: `request mod R`.
    /// Keyed by the request counter (not an internal cursor) so a test
    /// knows exactly which replica a given request probes first.
    pub fn primary_for(&self, request: u64) -> usize {
        (request % self.slots.len() as u64) as usize
    }

    /// The backup slot probed by a hedge or fail-over from `primary`.
    pub fn backup_of(&self, primary: usize) -> usize {
        (primary + 1) % self.slots.len()
    }

    /// Loads replica `index`'s current snapshot.
    pub fn load(&self, index: usize) -> Arc<ShardSnapshot> {
        self.slots[index].load()
    }

    /// Publishes `snapshot` to every slot (one store per slot; each
    /// store is atomic, and all slots converge before the writer's next
    /// publication).
    pub fn publish(&self, snapshot: Arc<ShardSnapshot>) {
        for slot in &self.slots {
            slot.store(Arc::clone(&snapshot));
        }
    }

    /// The tag currently published on slot 0 (the writer's view; slots
    /// only ever differ mid-`publish`).
    pub fn current_tag(&self) -> ShardTag {
        self.slots[0].load().tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqsda::{EngineBuildOptions, PqsDa};
    use pqsda_querylog::{LogEntry, UserId};

    fn tiny_snapshot(generation: u64) -> Arc<ShardSnapshot> {
        let entries = vec![
            LogEntry::new(UserId(0), "alpha", None, 0),
            LogEntry::new(UserId(0), "beta", None, 1),
        ];
        let engine = PqsDa::build_from_entries(&entries, &EngineBuildOptions::default());
        Arc::new(ShardSnapshot::stamp(engine, 0, generation))
    }

    #[test]
    fn primary_round_robins_and_backup_is_next() {
        let set = ReplicaSet::new(tiny_snapshot(0), 3);
        assert_eq!(set.replicas(), 3);
        assert_eq!(
            (0..6).map(|r| set.primary_for(r)).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
        assert_eq!(set.backup_of(2), 0);
    }

    #[test]
    fn zero_replicas_clamps_to_one() {
        let set = ReplicaSet::new(tiny_snapshot(0), 0);
        assert_eq!(set.replicas(), 1);
        assert_eq!(set.primary_for(7), 0);
        assert_eq!(set.backup_of(0), 0);
    }

    #[test]
    fn publish_reaches_every_slot() {
        let set = ReplicaSet::new(tiny_snapshot(0), 2);
        let next = tiny_snapshot(1);
        set.publish(Arc::clone(&next));
        for i in 0..set.replicas() {
            assert_eq!(set.load(i).tag.generation, 1);
        }
        assert_eq!(set.current_tag().generation, 1);
    }
}
