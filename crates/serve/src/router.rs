//! Shard routing: stable-hash partitioning of users, queries and raw log
//! entries across N independent shards.
//!
//! Routing must be a pure function of the *content* being routed — never
//! of interning order, process state or `std::hash`'s per-process seed —
//! so the same user lands on the same shard across restarts and across
//! the router/shard rebuilds of the swap protocol. Users route by their
//! external id; queries route by their **normalized text** (the id a
//! query gets is an artifact of interning order and would differ between
//! the global log and a shard's partition log).

use pqsda_querylog::hash::{fnv1a_bytes, fnv1a_u64, FNV_OFFSET};
use pqsda_querylog::{text, LogEntry, QueryId, QueryLog, UserId};

/// Which field of a log entry determines its shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionKey {
    /// Partition by user: each user's whole history (sessions, clicks and
    /// therefore their UPM profile document) lives in exactly one shard,
    /// so personalization stays intact. Popular queries appear in many
    /// shards and anonymous requests scatter-gather across all of them.
    #[default]
    User,
    /// Partition by query text: every record of a query lands in one home
    /// shard, so a request touches exactly one shard. Users spread across
    /// shards (a profile is trained from the user's in-shard records only).
    Query,
}

/// The home shard of a user. Pure in `(user, shards)`.
pub fn route_user(user: UserId, shards: usize) -> usize {
    assert!(shards > 0, "route_user needs at least one shard");
    (fnv1a_u64(FNV_OFFSET, u64::from(user.0)) % shards as u64) as usize
}

/// The home shard of a *normalized* query text. Pure in `(text, shards)`.
pub fn route_query_text(normalized: &str, shards: usize) -> usize {
    assert!(shards > 0, "route_query_text needs at least one shard");
    (fnv1a_bytes(normalized.as_bytes()) % shards as u64) as usize
}

/// The home shard of an interned query: routes by its normalized text, so
/// the answer is independent of which log interned the id.
pub fn route_query(log: &QueryLog, query: QueryId, shards: usize) -> usize {
    route_query_text(log.query_text(query), shards)
}

/// Splits raw entries into per-shard partitions by the chosen key,
/// preserving relative order within each partition. Every entry lands in
/// exactly one partition.
pub fn partition_entries(
    entries: &[LogEntry],
    key: PartitionKey,
    shards: usize,
) -> Vec<Vec<LogEntry>> {
    assert!(shards > 0, "partition_entries needs at least one shard");
    let mut parts: Vec<Vec<LogEntry>> = (0..shards).map(|_| Vec::new()).collect();
    for e in entries {
        let s = match key {
            PartitionKey::User => route_user(e.user, shards),
            PartitionKey::Query => route_query_text(&text::normalize(&e.query), shards),
        };
        parts[s].push(e.clone());
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for raw in 0..200u32 {
                let s = route_user(UserId(raw), shards);
                assert!(s < shards);
                assert_eq!(s, route_user(UserId(raw), shards));
            }
            for t in ["sun", "sun java", "solar panels", ""] {
                let s = route_query_text(t, shards);
                assert!(s < shards);
                assert_eq!(s, route_query_text(t, shards));
            }
        }
    }

    #[test]
    fn one_shard_takes_everything() {
        for raw in 0..50u32 {
            assert_eq!(route_user(UserId(raw), 1), 0);
        }
        assert_eq!(route_query_text("anything", 1), 0);
    }

    #[test]
    fn routing_spreads_across_shards() {
        // Not a uniformity proof — just that FNV doesn't collapse
        // consecutive ids onto one shard.
        let shards = 4;
        let mut hit = vec![false; shards];
        for raw in 0..64u32 {
            hit[route_user(UserId(raw), shards)] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards should receive users");
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let entries: Vec<LogEntry> = (0..40)
            .map(|i| {
                LogEntry::new(
                    UserId(i % 7),
                    format!("query {}", i % 11),
                    Some("u.com"),
                    u64::from(i) * 10,
                )
            })
            .collect();
        for key in [PartitionKey::User, PartitionKey::Query] {
            for shards in [1usize, 2, 4] {
                let parts = partition_entries(&entries, key, shards);
                assert_eq!(parts.len(), shards);
                assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), entries.len());
                // Same-key entries stay together.
                for (s, part) in parts.iter().enumerate() {
                    for e in part {
                        let home = match key {
                            PartitionKey::User => route_user(e.user, shards),
                            PartitionKey::Query => {
                                route_query_text(&text::normalize(&e.query), shards)
                            }
                        };
                        assert_eq!(home, s);
                    }
                }
            }
        }
    }
}
