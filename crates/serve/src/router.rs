//! Shard routing: consistent hashing of users, queries and raw log
//! entries onto N independent shards via a virtual-node hash ring.
//!
//! Routing must be a pure function of the *content* being routed — never
//! of interning order, process state or `std::hash`'s per-process seed —
//! so the same user lands on the same shard across restarts and across
//! the router/shard rebuilds of the swap protocol. Users route by their
//! external id; queries route by their **normalized text** (the id a
//! query gets is an artifact of interning order and would differ between
//! the global log and a shard's partition log).
//!
//! ## Why a ring instead of `hash % N`
//!
//! Modulo routing reshuffles nearly every key when the shard count
//! changes: going from N to N+1 shards moves ~N/(N+1) of all users, which
//! means re-training almost every UPM profile document in a resize. The
//! [`HashRing`] places [`VNODES_PER_SHARD`] deterministic FNV-1a points
//! per shard on a `u64` circle and routes each key to the first point at
//! or after its hash; adding a shard only claims the arc segments its own
//! points cut out, so an N→N+1 resize moves ~1/(N+1) of the keys and
//! every other shard's partition (and engine state) carries over intact.
//! Rings are canonical per shard count — two processes, or two builds of
//! the same process, always agree.

use pqsda_querylog::hash::{fnv1a_bytes, fnv1a_u64, FNV_OFFSET};
use pqsda_querylog::{text, LogEntry, QueryId, QueryLog, UserId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Which field of a log entry determines its shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionKey {
    /// Partition by user: each user's whole history (sessions, clicks and
    /// therefore their UPM profile document) lives in exactly one shard,
    /// so personalization stays intact. Popular queries appear in many
    /// shards and anonymous requests scatter-gather across all of them.
    #[default]
    User,
    /// Partition by query text: every record of a query lands in one home
    /// shard, so a request touches exactly one shard. Users spread across
    /// shards (a profile is trained from the user's in-shard records only).
    Query,
}

/// Virtual nodes per shard. More points smooth the load split (the
/// largest arc shrinks like `log(N·V)/(N·V)`) at the cost of a longer
/// sorted array; 64 keeps the max/min shard load ratio under ~1.3 for
/// small N while the whole ring stays a few KiB.
pub const VNODES_PER_SHARD: usize = 64;

/// Finalizer scattering FNV-1a states uniformly over the circle (the
/// splitmix64 avalanche step, public-domain constants). FNV alone is a
/// *keyed identity* on small inputs — `fnv1a_u64(OFFSET, u)` is
/// `(OFFSET ⊕ u) · p⁸ mod 2⁶⁴`, so consecutive ids form an arithmetic
/// progression that clumps onto a handful of arcs. Modulo routing never
/// noticed (the low bits still vary); circle *ordering* does, so every
/// hash crossing the ring boundary gets avalanched first.
#[inline]
fn scatter(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// A consistent-hash ring: `shards × VNODES_PER_SHARD` deterministic
/// points on the `u64` circle, each owned by one shard.
///
/// Point placement is pure FNV-1a over `(shard, vnode)` plus the
/// [`scatter`] finalizer — no RNG, no process state — so every process
/// builds the identical ring for a given shard count. Lookup scatters the
/// key's hash the same way, then binary-searches for the first point at
/// or after it, wrapping past the top of the circle.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Sorted `(point, shard)` pairs; ties (astronomically unlikely with
    /// 64-bit points) order by shard, keeping the sort fully determined.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl HashRing {
    /// The ring for `shards` shards with `vnodes` points per shard.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one point per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards as u64 {
            let h = fnv1a_u64(FNV_OFFSET, shard);
            for vnode in 0..vnodes as u64 {
                points.push((scatter(fnv1a_u64(h, vnode)), shard as u32));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// The canonical ring for `shards` shards ([`VNODES_PER_SHARD`] points
    /// each), memoized per shard count — every routing helper in this
    /// module resolves through it, so building one is a one-time cost.
    pub fn canonical(shards: usize) -> Arc<HashRing> {
        static RINGS: OnceLock<Mutex<HashMap<usize, Arc<HashRing>>>> = OnceLock::new();
        let rings = RINGS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = rings.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(shards)
                .or_insert_with(|| Arc::new(HashRing::new(shards, VNODES_PER_SHARD))),
        )
    }

    /// The shard owning `hash` (a raw FNV-1a state): the first ring point
    /// at or after its scattered position, wrapping around the top of the
    /// circle.
    pub fn shard_of_hash(&self, hash: u64) -> usize {
        let key = scatter(hash);
        let i = self.points.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.points[if i == self.points.len() { 0 } else { i }];
        shard as usize
    }

    /// Routes raw bytes (hashed with FNV-1a) to their shard.
    pub fn shard_of_bytes(&self, bytes: &[u8]) -> usize {
        self.shard_of_hash(fnv1a_bytes(bytes))
    }

    /// Number of shards the ring routes onto.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total points on the circle (`shards × vnodes`).
    pub fn num_points(&self) -> usize {
        self.points.len()
    }
}

/// The home shard of a user. Pure in `(user, shards)`.
pub fn route_user(user: UserId, shards: usize) -> usize {
    assert!(shards > 0, "route_user needs at least one shard");
    HashRing::canonical(shards).shard_of_hash(fnv1a_u64(FNV_OFFSET, u64::from(user.0)))
}

/// The home shard of a *normalized* query text. Pure in `(text, shards)`.
pub fn route_query_text(normalized: &str, shards: usize) -> usize {
    assert!(shards > 0, "route_query_text needs at least one shard");
    HashRing::canonical(shards).shard_of_bytes(normalized.as_bytes())
}

/// The home shard of an interned query: routes by its normalized text, so
/// the answer is independent of which log interned the id.
pub fn route_query(log: &QueryLog, query: QueryId, shards: usize) -> usize {
    route_query_text(log.query_text(query), shards)
}

/// Splits raw entries into per-shard partitions by the chosen key,
/// preserving relative order within each partition. Every entry lands in
/// exactly one partition.
pub fn partition_entries(
    entries: &[LogEntry],
    key: PartitionKey,
    shards: usize,
) -> Vec<Vec<LogEntry>> {
    assert!(shards > 0, "partition_entries needs at least one shard");
    let ring = HashRing::canonical(shards);
    let mut parts: Vec<Vec<LogEntry>> = (0..shards).map(|_| Vec::new()).collect();
    for e in entries {
        let s = match key {
            PartitionKey::User => ring.shard_of_hash(fnv1a_u64(FNV_OFFSET, u64::from(e.user.0))),
            PartitionKey::Query => ring.shard_of_bytes(text::normalize(&e.query).as_bytes()),
        };
        parts[s].push(e.clone());
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for raw in 0..200u32 {
                let s = route_user(UserId(raw), shards);
                assert!(s < shards);
                assert_eq!(s, route_user(UserId(raw), shards));
            }
            for t in ["sun", "sun java", "solar panels", ""] {
                let s = route_query_text(t, shards);
                assert!(s < shards);
                assert_eq!(s, route_query_text(t, shards));
            }
        }
    }

    #[test]
    fn one_shard_takes_everything() {
        for raw in 0..50u32 {
            assert_eq!(route_user(UserId(raw), 1), 0);
        }
        assert_eq!(route_query_text("anything", 1), 0);
    }

    #[test]
    fn routing_spreads_across_shards() {
        // Not a uniformity proof — just that the ring doesn't collapse
        // consecutive ids onto one shard.
        let shards = 4;
        let mut hit = vec![false; shards];
        for raw in 0..64u32 {
            hit[route_user(UserId(raw), shards)] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards should receive users");
    }

    #[test]
    fn ring_matches_helper_functions() {
        let ring = HashRing::canonical(4);
        assert_eq!(ring.shards(), 4);
        assert_eq!(ring.num_points(), 4 * VNODES_PER_SHARD);
        for raw in 0..100u32 {
            assert_eq!(
                ring.shard_of_hash(fnv1a_u64(FNV_OFFSET, u64::from(raw))),
                route_user(UserId(raw), 4)
            );
        }
        for t in ["sun", "jdk download", "solar cell"] {
            assert_eq!(ring.shard_of_bytes(t.as_bytes()), route_query_text(t, 4));
        }
    }

    #[test]
    fn ring_growth_only_steals_a_fraction_of_keys() {
        // The consistent-hashing payoff: going 4 → 5 shards must move
        // far fewer keys than the ~4/5 a modulo router reshuffles, and
        // every moved key must land on the *new* shard (existing shards
        // never trade keys with each other).
        let before = HashRing::canonical(4);
        let after = HashRing::canonical(5);
        let total = 4000u32;
        let mut moved = 0u32;
        for raw in 0..total {
            let h = fnv1a_u64(FNV_OFFSET, u64::from(raw));
            let (b, a) = (before.shard_of_hash(h), after.shard_of_hash(h));
            if b != a {
                moved += 1;
                assert_eq!(a, 4, "key moved between two pre-existing shards");
            }
        }
        // Expected share is 1/5 = 800; allow generous slack but stay far
        // below the modulo router's ~3200.
        assert!(
            (400..1600).contains(&moved),
            "moved {moved} of {total} keys — ring balance is off"
        );
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let entries: Vec<LogEntry> = (0..40)
            .map(|i| {
                LogEntry::new(
                    UserId(i % 7),
                    format!("query {}", i % 11),
                    Some("u.com"),
                    u64::from(i) * 10,
                )
            })
            .collect();
        for key in [PartitionKey::User, PartitionKey::Query] {
            for shards in [1usize, 2, 4] {
                let parts = partition_entries(&entries, key, shards);
                assert_eq!(parts.len(), shards);
                assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), entries.len());
                // Same-key entries stay together.
                for (s, part) in parts.iter().enumerate() {
                    for e in part {
                        let home = match key {
                            PartitionKey::User => route_user(e.user, shards),
                            PartitionKey::Query => {
                                route_query_text(&text::normalize(&e.query), shards)
                            }
                        };
                        assert_eq!(home, s);
                    }
                }
            }
        }
    }
}
