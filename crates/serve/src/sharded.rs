//! The sharded serving engine: scatter-gather suggestion over N
//! independent [`PqsDa`] shards with score-ordered merging, plus the
//! writer side (delta ingestion → per-shard incremental update, with a
//! cold-rebuild fallback → snapshot swap) and the fault-tolerance layer
//! (replica probes, hedged requests, deadlines, circuit breakers,
//! validated swaps — see DESIGN §10).
//!
//! ## Id spaces
//!
//! Requests and responses speak the **router log**'s [`QueryId`] space
//! (the interned full log). Each shard interns its own partition, so ids
//! differ per shard; translation goes through normalized query *text* in
//! both directions — an O(1) hash lookup per id, and the only
//! representation that is stable across rebuilds.
//!
//! ## Merge
//!
//! Each consulted shard returns its top-k `(query, F*)` list in rank
//! order. The router merges **rank-stratified**: all shards' rank-0
//! candidates (ordered by relevance score, ties toward the smaller global
//! id), then rank-1, and so on until `k` distinct queries are collected.
//! Rank position encodes the diversification order (Algorithm 1's
//! discovery order *is* the ranking), so stratifying by rank preserves
//! each shard's diversity structure while relevance orders candidates
//! within a stratum. With one shard the merge is the identity — the
//! equivalence proptest pins sharded N=1 output to the unsharded engine,
//! bit for bit.
//!
//! ## Degraded serving
//!
//! A reply built from a subset of the responsible shards is a strictly
//! better answer than an error: every merged list over K of N shards is
//! exactly what a healthy K-shard deployment of the same partitions would
//! have returned. [`ServeReply::coverage`] says honestly which case the
//! caller got; the chaos tests pin full-coverage replies bit-identical to
//! the healthy engine and degraded replies to the merge over precisely
//! the shards whose tags appear in the reply.

use crate::admission::{AdmissionGate, AdmissionStats, Rejection};
use crate::coalesce::{CoalesceStats, Coalescer, Join};
use crate::fault::{Admission, FaultConfig, FaultCounters, FaultKind, FaultPlan, FaultStats};
use crate::histogram::{self, DecayedHistogram, HistogramSnapshot};
use crate::ingest::{IngestOffer, IngestQueue, IngestStats};
use crate::replica::ReplicaSet;
use crate::router::{partition_entries, route_query_text, PartitionKey};
use crate::swap::{ShardSnapshot, ShardTag};
use crate::Swap;
use pqsda::{CacheStats, EngineBuildOptions, PqsDa};
use pqsda_baselines::{Backend, SuggestRequest};
use pqsda_parallel::{spawn_cancellable, Deadline, TaskHandle, TaskPoll};
use pqsda_querylog::{text, LogEntry, QueryId, QueryLog, UserId};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::Breaker;
pub use crate::fault::BreakerState;

/// Configuration of a sharded server.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// How entries are partitioned.
    pub key: PartitionKey,
    /// The per-shard engine build recipe.
    pub build: EngineBuildOptions,
    /// Ingestion-queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Most entries one [`ShardedPqsDa::apply_deltas`] call drains from
    /// the queue (0 = unlimited). The remainder stays queued for the next
    /// cycle, bounding per-swap rebuild work.
    pub max_delta_entries: usize,
    /// Fault-tolerance knobs (replicas, deadlines, hedging, breakers).
    /// The default disables all of them.
    pub fault: FaultConfig,
    /// Coalesce duplicate in-flight requests: the first arrival computes,
    /// duplicates wait and reuse its reply verbatim (off by default).
    pub coalesce: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            key: PartitionKey::default(),
            build: EngineBuildOptions::default(),
            queue_capacity: 4096,
            max_delta_entries: 0,
            fault: FaultConfig::default(),
            coalesce: false,
        }
    }
}

/// How much of the responsible shard set answered a request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Shards whose candidates made it into the merge.
    pub answered: usize,
    /// Shards the request was responsible for consulting.
    pub consulted: usize,
}

impl Coverage {
    /// Full coverage over `n` shards.
    pub fn full(n: usize) -> Self {
        Coverage {
            answered: n,
            consulted: n,
        }
    }

    /// Answered fraction (1.0 when nothing needed consulting).
    pub fn fraction(&self) -> f64 {
        if self.consulted == 0 {
            1.0
        } else {
            self.answered as f64 / self.consulted as f64
        }
    }

    /// Whether any responsible shard is missing from the merge.
    pub fn is_degraded(&self) -> bool {
        self.answered < self.consulted
    }
}

/// One answered request: the merged suggestions (global ids, with the
/// relevance score each earned in its shard) and the exact snapshot tags
/// that produced them.
#[derive(Clone, Debug)]
pub struct ServeReply {
    /// Merged top-k, rank order, global [`QueryId`]s.
    pub suggestions: Vec<(QueryId, f64)>,
    /// The tag of every shard snapshot that **answered**, in shard order.
    /// Readers use these to verify generation consistency — see the soak
    /// test — and, when degraded, to know exactly which shards the merge
    /// covers.
    pub tags: Vec<ShardTag>,
    /// Shards answered vs. consulted; `coverage.is_degraded()` means some
    /// responsible shard was dropped (fault, deadline, open breaker).
    pub coverage: Coverage,
}

impl ServeReply {
    /// The suggestion ranking without scores.
    pub fn ranked(&self) -> Vec<QueryId> {
        self.suggestions.iter().map(|&(q, _)| q).collect()
    }

    fn empty() -> Self {
        ServeReply {
            suggestions: Vec::new(),
            tags: Vec::new(),
            coverage: Coverage::default(),
        }
    }
}

/// A point-in-time view of the server's counters.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Shard count.
    pub shards: usize,
    /// Current generation of each shard.
    pub generations: Vec<u64>,
    /// Snapshot swaps performed since construction (across all shards).
    pub total_swaps: u64,
    /// Ingestion-queue counters (accepted/rejected/drained; depth derives).
    pub ingest: IngestStats,
    /// Expansion-memo counters aggregated over all live shard snapshots.
    pub cache: CacheStats,
    /// Entries left queued by rate-limited `apply_deltas` calls
    /// (cumulative over calls; a deferred entry drains in a later cycle).
    pub deferred: u64,
    /// Fault-tolerance counters (probes, panics, hedges, rollbacks, …).
    pub fault: FaultStats,
    /// Current circuit-breaker state of each shard.
    pub breakers: Vec<BreakerState>,
    /// Suggest-path admission counters (admitted / shed / in flight).
    pub admission: AdmissionStats,
    /// Request-coalescing counters (leaders / coalesced / fallbacks).
    pub coalesce: CoalesceStats,
}

/// How one deadline-aware request resolved: a reply, or an explicit
/// admission-control rejection. Shed requests are never silent — the
/// [`Rejection`] carries the projection that justified the shed.
#[derive(Clone, Debug)]
pub enum ServeOutcome {
    /// The request was served (possibly degraded; see the reply's
    /// coverage).
    Served(ServeReply),
    /// The request was shed at the admission gate before any shard was
    /// probed.
    Rejected(Rejection),
}

impl ServeOutcome {
    /// The reply, if the request was served.
    pub fn reply(&self) -> Option<&ServeReply> {
        match self {
            ServeOutcome::Served(r) => Some(r),
            ServeOutcome::Rejected(_) => None,
        }
    }

    /// Whether the request was shed.
    pub fn is_rejected(&self) -> bool {
        matches!(self, ServeOutcome::Rejected(_))
    }
}

/// What one [`ShardedPqsDa::apply_deltas`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwapReport {
    /// Entries drained from the ingestion queue.
    pub drained: usize,
    /// Shards that swapped in a new snapshot (those whose partition got
    /// deltas), whether the snapshot was produced incrementally or cold.
    pub rebuilt: Vec<usize>,
    /// The subset of `rebuilt` whose snapshot was produced by the
    /// incremental delta path ([`PqsDa::apply_delta`]) instead of a cold
    /// `build_from_entries` over the whole partition. A chronological
    /// delta always takes this path; a late-arriving batch (older than
    /// the shard's newest record) falls back to the cold rebuild.
    pub incremental: Vec<usize>,
    /// Shards whose new snapshot failed pre-publish digest validation and
    /// kept their prior generation; the batch is parked and retried next
    /// cycle.
    pub rolled_back: Vec<usize>,
    /// Entries left in the queue by the `max_delta_entries` rate limit.
    pub deferred: usize,
    /// Parked entries from earlier rolled-back swaps retried this cycle.
    pub retried: usize,
    /// The entries drained from the queue this cycle, in drain order —
    /// exactly the batch a snapshotter must append to its delta WAL
    /// (parked retries are excluded: they were already logged on their
    /// first drain).
    pub drained_entries: Vec<LogEntry>,
}

/// A shard's cold-rebuild ground truth: the entries its current snapshot
/// was built from.
///
/// Servers assembled from persisted snapshots start `Lazy` — the base is
/// derivable on demand by partitioning a prefix of the router log, so the
/// cold-start path never pays for materializing it. It stays lazy across
/// *incremental* delta applies (the prefix just advances to the grown
/// router's length) and is materialized only if a full cold rebuild is
/// actually needed.
enum ShardBase {
    Ready(Vec<LogEntry>),
    /// Base = this shard's partition of the first `router_prefix` router
    /// records. Valid because router growth is append-only and happens
    /// before any shard update.
    Lazy {
        router_prefix: usize,
    },
}

struct Shard {
    replicas: ReplicaSet,
    /// The raw entries the *current* snapshot was built from. Writer-only
    /// (guarded by the rebuild lock); readers never touch it.
    base: parking_lot::Mutex<ShardBase>,
    /// Delta entries whose swap was rolled back, parked for retry.
    /// Writer-only.
    pending: parking_lot::Mutex<Vec<LogEntry>>,
    breaker: Breaker,
    /// Decayed histogram of successful probe latencies; sizes the hedge
    /// budget (DESIGN §11).
    latency: DecayedHistogram,
}

/// What a shard probe resolves to: the snapshot's tag, plus its candidate
/// list (`None` = the probe faulted with an error).
type ProbeOut = (ShardTag, Option<Vec<(QueryId, f64)>>);

/// N independent PQS-DA shards behind one request-level facade.
pub struct ShardedPqsDa {
    config: ServeConfig,
    /// The global id-space log: interns every entry ever built or
    /// ingested, so request/response ids outlive shard rebuilds. Swapped
    /// (grow-only) *before* the shards it feeds.
    router: Swap<QueryLog>,
    shards: Vec<Shard>,
    queue: IngestQueue,
    /// Every tag ever published, registered before its snapshot goes
    /// live — the ground truth the soak test checks responses against.
    registered: parking_lot::Mutex<Vec<ShardTag>>,
    /// Serializes writers (`apply_deltas`).
    rebuild_lock: parking_lot::Mutex<()>,
    total_swaps: AtomicU64,
    /// Active fault-injection schedule (tests/chaos only; `None` in
    /// production).
    fault_plan: parking_lot::RwLock<Option<Arc<FaultPlan>>>,
    /// Request counter: keys round-robin primary selection and the fault
    /// plan's per-request schedules.
    requests: AtomicU64,
    /// Snapshot publication attempts (keys the corrupt-swap schedule).
    swap_attempts: AtomicU64,
    counters: FaultCounters,
    deferred_total: AtomicU64,
    /// Deadline-aware admission gate in front of the scatter-gather.
    gate: AdmissionGate,
    /// Singleflight table for duplicate in-flight requests (used only
    /// when `config.coalesce` is set).
    coalescer: Coalescer<CoalesceKey, ServeReply>,
}

/// The identity of a request for coalescing purposes: every field that
/// can influence the reply — including the ranking [`Backend`], so an
/// A/B pair differing only in backend never shares a leader reply. Two
/// requests with equal keys are duplicates by construction, so sharing
/// the leader's reply is exact, not approximate.
type CoalesceKey = (
    QueryId,
    Vec<QueryId>,
    Vec<u64>,
    u64,
    Option<UserId>,
    usize,
    Backend,
);

fn coalesce_key(req: &SuggestRequest) -> CoalesceKey {
    (
        req.query,
        req.context.clone(),
        req.context_times.clone(),
        req.query_time,
        req.user,
        req.k,
        req.backend,
    )
}

impl ShardedPqsDa {
    /// Partitions `entries` and builds every shard with `config.build`.
    pub fn build(entries: &[LogEntry], config: ServeConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        let router = QueryLog::from_entries(entries);
        let parts = partition_entries(entries, config.key, config.shards);
        let mut registered = Vec::with_capacity(config.shards);
        let shards: Vec<Shard> = parts
            .into_iter()
            .enumerate()
            .map(|(s, part)| {
                let engine = PqsDa::build_from_entries(&part, &config.build);
                let snap = ShardSnapshot::stamp(engine, s, 0);
                registered.push(snap.tag);
                Shard {
                    replicas: ReplicaSet::new(Arc::new(snap), config.fault.replicas),
                    base: parking_lot::Mutex::new(ShardBase::Ready(part)),
                    pending: parking_lot::Mutex::new(Vec::new()),
                    breaker: Breaker::new(
                        config.fault.breaker_threshold,
                        config.fault.breaker_cooldown,
                    ),
                    latency: DecayedHistogram::default(),
                }
            })
            .collect();
        ShardedPqsDa {
            queue: IngestQueue::new(config.queue_capacity),
            config,
            router: Swap::new(Arc::new(router)),
            shards,
            registered: parking_lot::Mutex::new(registered),
            rebuild_lock: parking_lot::Mutex::new(()),
            total_swaps: AtomicU64::new(0),
            fault_plan: parking_lot::RwLock::new(None),
            requests: AtomicU64::new(0),
            swap_attempts: AtomicU64::new(0),
            counters: FaultCounters::default(),
            deferred_total: AtomicU64::new(0),
            gate: AdmissionGate::new(),
            coalescer: Coalescer::new(),
        }
    }

    /// Reassembles a server from persisted shard snapshots plus the
    /// saved router log — the snapshot-store cold-start path. The
    /// engines are used exactly as loaded (bit-identical to what was
    /// saved; generations continue from the stamped tags). Each shard's
    /// cold-rebuild base starts [`ShardBase::Lazy`]: it is derivable by
    /// partitioning the router's entries under the configured key —
    /// precisely how [`ShardedPqsDa::build`] + `apply_deltas` accumulated
    /// it — so nothing is materialized here and cold start stays O(1) in
    /// the log size beyond the mmap'd sections themselves.
    ///
    /// # Panics
    /// Panics when the snapshot count differs from `config.shards` or a
    /// snapshot's tag names a different shard than its position.
    pub fn from_snapshots(
        router: QueryLog,
        snapshots: Vec<ShardSnapshot>,
        config: ServeConfig,
    ) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert_eq!(snapshots.len(), config.shards, "snapshot count != shards");
        let router_prefix = router.records().len();
        let mut registered = Vec::with_capacity(config.shards);
        let shards: Vec<Shard> = snapshots
            .into_iter()
            .enumerate()
            .map(|(s, snap)| {
                assert_eq!(snap.tag.shard, s, "snapshot shard number mismatch");
                registered.push(snap.tag);
                Shard {
                    replicas: ReplicaSet::new(Arc::new(snap), config.fault.replicas),
                    base: parking_lot::Mutex::new(ShardBase::Lazy { router_prefix }),
                    pending: parking_lot::Mutex::new(Vec::new()),
                    breaker: Breaker::new(
                        config.fault.breaker_threshold,
                        config.fault.breaker_cooldown,
                    ),
                    latency: DecayedHistogram::default(),
                }
            })
            .collect();
        ShardedPqsDa {
            queue: IngestQueue::new(config.queue_capacity),
            config,
            router: Swap::new(Arc::new(router)),
            shards,
            registered: parking_lot::Mutex::new(registered),
            rebuild_lock: parking_lot::Mutex::new(()),
            total_swaps: AtomicU64::new(0),
            fault_plan: parking_lot::RwLock::new(None),
            requests: AtomicU64::new(0),
            swap_attempts: AtomicU64::new(0),
            counters: FaultCounters::default(),
            deferred_total: AtomicU64::new(0),
            gate: AdmissionGate::new(),
            coalescer: Coalescer::new(),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Installs (or clears) a deterministic fault-injection schedule.
    /// Probes and swaps consult it from then on; `None` restores healthy
    /// operation.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault_plan.write() = plan.map(Arc::new);
    }

    /// The current global id-space log (for resolving suggestion text).
    pub fn router_log(&self) -> Arc<QueryLog> {
        self.router.load()
    }

    /// Takes the writer lock for an external consistent cut (snapshot
    /// save): while the guard lives no `apply_deltas` can run, so the
    /// router and every shard snapshot describe one generation vector.
    pub fn writer_cut(&self) -> impl Drop + '_ {
        self.rebuild_lock.lock()
    }

    /// The current snapshot of shard `s` (the writer's consistent view).
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    pub fn shard_snapshot(&self, s: usize) -> Arc<ShardSnapshot> {
        self.shards[s].replicas.load(0)
    }

    /// The tag of every shard's *current* snapshot, in shard order.
    pub fn shard_tags(&self) -> Vec<ShardTag> {
        self.shards
            .iter()
            .map(|s| s.replicas.current_tag())
            .collect()
    }

    /// Every tag ever published (including superseded generations).
    /// A response's tags must all appear here — the torn-read invariant.
    pub fn registered_tags(&self) -> Vec<ShardTag> {
        self.registered.lock().clone()
    }

    /// Serves one request: scatter to the responsible shard(s), gather
    /// scored candidates, merge rank-stratified. With fault tolerance
    /// configured (or a fault plan installed) the fan-out runs on
    /// cancellable probe tasks with hedging/deadline/breaker semantics;
    /// otherwise it runs serially in the caller (panic isolation applies
    /// either way). A reply never errors: faulted shards are dropped and
    /// reported through [`ServeReply::coverage`].
    ///
    /// Deadline-less requests are never shed, so this always serves; the
    /// deadline-aware front door is [`ShardedPqsDa::suggest_with_deadline`].
    pub fn suggest(&self, req: &SuggestRequest) -> ServeReply {
        match self.suggest_with_deadline(req, None) {
            ServeOutcome::Served(reply) => reply,
            ServeOutcome::Rejected(_) => {
                unreachable!("admission never sheds a deadline-less request")
            }
        }
    }

    /// The deadline-aware front door: admission control first (a request
    /// whose projected wait exceeds its deadline is shed with an explicit
    /// [`ServeOutcome::Rejected`] before any shard is probed), then —
    /// when `config.coalesce` is on — singleflight coalescing of
    /// duplicate in-flight requests, then the scatter-gather of
    /// [`ShardedPqsDa::suggest`] with the deadline bounding the gather.
    /// A served reply is bit-identical to what a dedicated healthy server
    /// would return for the same request whenever coverage is full.
    pub fn suggest_with_deadline(
        &self,
        req: &SuggestRequest,
        deadline: Option<Deadline>,
    ) -> ServeOutcome {
        let permit = match self.gate.admit(deadline.as_ref()) {
            Ok(p) => p,
            Err(rejection) => return ServeOutcome::Rejected(rejection),
        };
        let reply = if self.config.coalesce {
            match self.coalescer.join(coalesce_key(req)) {
                Join::Leader(token) => {
                    // If the gather panics, `token`'s Drop abandons the
                    // flight and followers fall back to their own gather.
                    let reply = self.suggest_core(req, deadline.as_ref());
                    token.publish(reply.clone());
                    reply
                }
                Join::Coalesced(reply) => {
                    // A follower reusing the leader's reply is a cache
                    // hit: classify it so the admission gate's service
                    // estimate keeps the two populations apart.
                    permit.mark_cached();
                    reply
                }
                Join::Fallback => self.suggest_core(req, deadline.as_ref()),
            }
        } else {
            self.suggest_core(req, deadline.as_ref())
        };
        drop(permit); // releases the in-flight slot, records service time
        ServeOutcome::Served(reply)
    }

    /// The scatter-gather behind both front doors.
    fn suggest_core(&self, req: &SuggestRequest, deadline: Option<&Deadline>) -> ServeReply {
        let request = self.requests.fetch_add(1, Ordering::Relaxed);
        let router = self.router.load();
        if req.query.index() >= router.num_queries() || req.k == 0 {
            return ServeReply::empty();
        }
        let input_text = router.query_text(req.query).to_owned();
        let targets = self.targets_for(&input_text);
        // A per-request deadline must be enforced even when no fault
        // tolerance is configured, so it activates the task-based path.
        let reply = if self.fault_path_active() || deadline.is_some() {
            self.suggest_ft(request, &router, &input_text, req, &targets, deadline)
        } else {
            self.gather_serial(&router, &input_text, req, &targets)
        };
        if reply.coverage.is_degraded() {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
        }
        reply
    }

    /// Serves `req` against exactly `targets` (shard indices), serially
    /// and without fault injection — the reference merge for a given
    /// shard subset. A degraded reply over answered shards S must equal
    /// `suggest_on(req, S)`; the chaos tests pin that.
    pub fn suggest_on(&self, req: &SuggestRequest, targets: &[usize]) -> ServeReply {
        let router = self.router.load();
        if req.query.index() >= router.num_queries() || req.k == 0 {
            return ServeReply::empty();
        }
        let input_text = router.query_text(req.query).to_owned();
        self.gather_serial(&router, &input_text, req, targets)
    }

    /// The shard set responsible for a query under the configured key.
    fn targets_for(&self, input_text: &str) -> Vec<usize> {
        match self.config.key {
            // The query's home shard holds every record of it.
            PartitionKey::Query => vec![route_query_text(input_text, self.config.shards)],
            // User partitions spread a query's evidence across shards:
            // consult all of them and merge.
            PartitionKey::User => (0..self.config.shards).collect(),
        }
    }

    /// Whether requests must take the task-based fault-tolerant fan-out.
    fn fault_path_active(&self) -> bool {
        let f = &self.config.fault;
        f.replicas > 1
            || f.budget_ms > 0
            || f.breaker_threshold > 0
            || f.hedge_ms > 0
            || f.hedge_percentile > 0.0
            || self.fault_plan.read().is_some()
    }

    /// Serial fan-out: one probe per target in the calling thread, each
    /// isolated by `catch_unwind` (a panicking shard is dropped from the
    /// merge, not propagated).
    fn gather_serial(
        &self,
        router: &QueryLog,
        input_text: &str,
        req: &SuggestRequest,
        targets: &[usize],
    ) -> ServeReply {
        let consulted = targets.len();
        let mut tags = Vec::with_capacity(consulted);
        let mut lists: Vec<Vec<(QueryId, f64)>> = Vec::with_capacity(consulted);
        for &s in targets {
            // One load per shard: the whole per-shard computation runs
            // against this single immutable snapshot.
            let snap = self.shards[s].replicas.load(0);
            self.counters.probes.fetch_add(1, Ordering::Relaxed);
            match catch_unwind(AssertUnwindSafe(|| {
                shard_probe(router, &snap, input_text, req)
            })) {
                Ok(list) => {
                    tags.push(snap.tag);
                    lists.push(list);
                }
                Err(_) => {
                    self.counters.panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        ServeReply {
            suggestions: merge_rank_stratified(&lists, req.k),
            coverage: Coverage {
                answered: tags.len(),
                consulted,
            },
            tags,
        }
    }

    /// Fault-tolerant fan-out: per target, admit through the breaker,
    /// probe the round-robin primary replica on a cancellable task, hedge
    /// to the backup replica when the primary is slow, fail over
    /// immediately when it faults, and drop whatever is unresolved at the
    /// request deadline. Answers assemble in shard order so the merge is
    /// deterministic.
    fn suggest_ft(
        &self,
        request: u64,
        router: &Arc<QueryLog>,
        input_text: &str,
        req: &SuggestRequest,
        targets: &[usize],
        request_deadline: Option<&Deadline>,
    ) -> ServeReply {
        let fc = &self.config.fault;
        let plan = self.fault_plan.read().clone();
        let ctx = ProbeCtx {
            request,
            router,
            input_text,
            req,
            plan: &plan,
        };
        let start = Instant::now();
        // The gather stops at the tighter of the configured budget and
        // the caller's own deadline.
        let budget = (fc.budget_ms > 0).then(|| start + Duration::from_millis(fc.budget_ms));
        let deadline = match (budget, request_deadline.map(Deadline::instant)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };

        let mut slots: Vec<ProbeSlot> = Vec::with_capacity(targets.len());
        for &s in targets {
            let admission = self.shards[s].breaker.admit();
            if admission == Admission::Reject {
                self.counters.breaker_skips.fetch_add(1, Ordering::Relaxed);
                slots.push(ProbeSlot::rejected(s, admission, start));
                continue;
            }
            let primary_replica = self.shards[s].replicas.primary_for(request);
            let handle = self.spawn_probe(&ctx, s, primary_replica);
            slots.push(ProbeSlot {
                shard: s,
                admission,
                primary: Some(handle),
                backup: None,
                backup_spawned: false,
                primary_replica,
                hedge_at: self.hedge_deadline(s, start),
                started: start,
                state: SlotState::Waiting,
            });
        }

        loop {
            let mut waiting = 0usize;
            for slot in &mut slots {
                if !matches!(slot.state, SlotState::Waiting) {
                    continue;
                }
                let shard = &self.shards[slot.shard];
                // Primary outcome first, so on a tie the primary wins
                // (both replicas serve the same published snapshot).
                let ev = slot.primary.as_ref().map(|h| self.poll_probe(h));
                match ev {
                    Some(ProbeEvent::Success(tag, list)) => {
                        shard.latency.record(slot.started.elapsed());
                        shard.breaker.record(slot.admission, true);
                        if let Some(b) = &slot.backup {
                            b.cancel();
                        }
                        slot.state = SlotState::Done(tag, list);
                        continue;
                    }
                    Some(ProbeEvent::Fault) => slot.primary = None,
                    Some(ProbeEvent::Pending) | None => {}
                }
                let ev = slot.backup.as_ref().map(|h| self.poll_probe(h));
                match ev {
                    Some(ProbeEvent::Success(tag, list)) => {
                        shard.breaker.record(slot.admission, true);
                        self.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
                        if let Some(p) = &slot.primary {
                            p.cancel();
                        }
                        slot.state = SlotState::Done(tag, list);
                        continue;
                    }
                    Some(ProbeEvent::Fault) => slot.backup = None,
                    Some(ProbeEvent::Pending) | None => {}
                }
                if slot.primary.is_none() && slot.backup.is_none() {
                    if !slot.backup_spawned && shard.replicas.replicas() > 1 {
                        // The primary faulted: fail over to the next
                        // replica immediately instead of waiting for the
                        // hedge budget.
                        let backup = shard.replicas.backup_of(slot.primary_replica);
                        slot.backup = Some(self.spawn_probe(&ctx, slot.shard, backup));
                        slot.backup_spawned = true;
                        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shard.breaker.record(slot.admission, false);
                        slot.state = SlotState::Failed;
                        continue;
                    }
                } else if slot.primary.is_some() && !slot.backup_spawned {
                    // Primary still out: fire the hedge once its latency
                    // budget lapses.
                    if slot.hedge_at.is_some_and(|at| Instant::now() >= at) {
                        let backup = shard.replicas.backup_of(slot.primary_replica);
                        slot.backup = Some(self.spawn_probe(&ctx, slot.shard, backup));
                        slot.backup_spawned = true;
                        self.counters.hedges.fetch_add(1, Ordering::Relaxed);
                    }
                }
                waiting += 1;
            }
            if waiting == 0 {
                break;
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                for slot in &mut slots {
                    if matches!(slot.state, SlotState::Waiting) {
                        self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.shards[slot.shard]
                            .breaker
                            .record(slot.admission, false);
                        if let Some(p) = &slot.primary {
                            p.cancel();
                        }
                        if let Some(b) = &slot.backup {
                            b.cancel();
                        }
                        slot.state = SlotState::Failed;
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_micros(300));
        }

        let consulted = slots.len();
        let mut tags = Vec::new();
        let mut lists = Vec::new();
        for slot in slots {
            if let SlotState::Done(tag, list) = slot.state {
                tags.push(tag);
                lists.push(list);
            }
        }
        ServeReply {
            suggestions: merge_rank_stratified(&lists, req.k),
            coverage: Coverage {
                answered: tags.len(),
                consulted,
            },
            tags,
        }
    }

    /// When the hedge for shard `s` should fire, if hedging is on:
    /// `start + max(hedge_ms, decayed latency quantile)` (DESIGN §11).
    fn hedge_deadline(&self, s: usize, start: Instant) -> Option<Instant> {
        let fc = &self.config.fault;
        if self.shards[s].replicas.replicas() < 2
            || (fc.hedge_ms == 0 && fc.hedge_percentile <= 0.0)
        {
            return None;
        }
        Some(
            start
                + histogram::hedge_delay(&self.shards[s].latency, fc.hedge_ms, fc.hedge_percentile),
        )
    }

    /// The hedge delay each shard would use for a request arriving now —
    /// a pure function of the decayed histograms and the fault config
    /// (the determinism property tests read this).
    pub fn hedge_delays(&self) -> Vec<Duration> {
        let fc = &self.config.fault;
        self.shards
            .iter()
            .map(|s| histogram::hedge_delay(&s.latency, fc.hedge_ms, fc.hedge_percentile))
            .collect()
    }

    /// Snapshots every shard's probe-latency histogram (stats / tests).
    pub fn hedge_histograms(&self) -> Vec<HistogramSnapshot> {
        self.shards.iter().map(|s| s.latency.snapshot()).collect()
    }

    /// Spawns one probe task against `(shard, replica)`, consulting the
    /// fault plan first (injected latency sleeps cooperatively, so a
    /// cancelled probe winds down in milliseconds).
    fn spawn_probe(&self, ctx: &ProbeCtx<'_>, s: usize, replica: usize) -> TaskHandle<ProbeOut> {
        self.counters.probes.fetch_add(1, Ordering::Relaxed);
        let snap = self.shards[s].replicas.load(replica);
        let router = Arc::clone(ctx.router);
        let input_text = ctx.input_text.to_owned();
        let req = ctx.req.clone();
        let plan = ctx.plan.clone();
        let request = ctx.request;
        spawn_cancellable(move |token| {
            let tag = snap.tag;
            if let Some(plan) = &plan {
                match plan.probe_fault(request, s, replica) {
                    // The guard *performs* the injected stall: it is true
                    // only when the sleep was cancelled mid-stall, in which
                    // case nobody will read this probe's output.
                    Some(FaultKind::Latency(ms)) if !token.sleep(Duration::from_millis(ms)) => {
                        return (tag, None);
                    }
                    // Stall survived to completion: probe normally below.
                    Some(FaultKind::Latency(_)) => {}
                    Some(FaultKind::Panic) => {
                        panic!("injected fault: request {request} shard {s} replica {replica}")
                    }
                    Some(FaultKind::Error) => return (tag, None),
                    None => {}
                }
            }
            (tag, Some(shard_probe(&router, &snap, &input_text, &req)))
        })
    }

    /// Classifies a probe handle's current state, counting faults.
    fn poll_probe(&self, handle: &TaskHandle<ProbeOut>) -> ProbeEvent {
        match handle.try_take() {
            TaskPoll::Pending => ProbeEvent::Pending,
            TaskPoll::Ready(Ok((tag, Some(list)))) => ProbeEvent::Success(tag, list),
            TaskPoll::Ready(Ok((_, None))) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                ProbeEvent::Fault
            }
            TaskPoll::Ready(Err(_panic)) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                ProbeEvent::Fault
            }
        }
    }

    /// Serves a batch, fanning requests across the worker pool (`0` =
    /// auto). Output order matches input order and each reply is identical
    /// to a serial [`ShardedPqsDa::suggest`] call.
    pub fn suggest_many_with_threads(
        &self,
        reqs: &[SuggestRequest],
        threads: usize,
    ) -> Vec<ServeReply> {
        let threads = pqsda_parallel::effective_threads(threads, reqs.len(), 1);
        pqsda_parallel::map_indexed(reqs.len(), threads, |i| self.suggest(&reqs[i]))
    }

    /// [`ShardedPqsDa::suggest_many_with_threads`] with automatic threads.
    pub fn suggest_many(&self, reqs: &[SuggestRequest]) -> Vec<ServeReply> {
        self.suggest_many_with_threads(reqs, 0)
    }

    /// Offers one new log entry to the ingestion queue (non-blocking;
    /// `false` = backpressure rejection). The entry takes effect at the
    /// next [`ShardedPqsDa::apply_deltas`].
    pub fn ingest(&self, entry: LogEntry) -> bool {
        self.queue.offer(entry)
    }

    /// Deadline-aware ingestion: sheds the entry with an explicit
    /// [`IngestOffer::RejectedDeadline`] when the queue's projected wait
    /// (depth × measured drain cost) exceeds the deadline's remaining
    /// budget. Never blocks, never drops silently.
    pub fn ingest_with_deadline(
        &self,
        entry: LogEntry,
        deadline: Option<&Deadline>,
    ) -> IngestOffer {
        self.queue.offer_with_deadline(entry, deadline)
    }

    /// The writer step: drains the queue (at most
    /// `config.max_delta_entries` entries when set), extends the router
    /// id space, updates the shards whose partitions received deltas and
    /// swaps the new snapshots in. Readers are never blocked — they keep
    /// answering from the old `Arc`s until the pointer store, and from
    /// the new ones after. Safe to call from any thread; writers
    /// serialize.
    ///
    /// Each touched shard first tries the **incremental** path: the live
    /// snapshot's [`PqsDa::apply_delta`] threads the batch through every
    /// layer as a delta (log append, scoped CF-IQF reweight, warm-started
    /// UPM retrain, scoped expansion-memo invalidation), which is
    /// equivalent to — and far cheaper than — rebuilding the partition
    /// from scratch. When the delta violates the chronological contract
    /// (an entry older than the shard's newest record) the shard falls
    /// back to a full cold rebuild; either way the swap protocol below is
    /// identical, so readers cannot tell the paths apart.
    ///
    /// Before publishing, each snapshot passes the **validation gate**
    /// ([`ShardSnapshot::verify`]): its content digests are recomputed
    /// and checked against the stamped tag. On mismatch the swap rolls
    /// back — the shard keeps its prior generation, the batch parks in a
    /// retry buffer drained by the next call, and the rollback is counted
    /// in the report and stats. Readers never observe a corrupt
    /// publication.
    pub fn apply_deltas(&self) -> SwapReport {
        let _writer = self.rebuild_lock.lock();
        let cycle_start = Instant::now();
        let limit = match self.config.max_delta_entries {
            0 => usize::MAX,
            n => n,
        };
        let deltas = self.queue.drain_up_to(limit);
        let deferred = if deltas.len() == limit {
            self.queue.stats().depth() as usize
        } else {
            0
        };
        if deferred > 0 {
            self.deferred_total
                .fetch_add(deferred as u64, Ordering::Relaxed);
        }
        let any_pending = self.shards.iter().any(|s| !s.pending.lock().is_empty());
        if deltas.is_empty() && !any_pending {
            return SwapReport {
                deferred,
                ..SwapReport::default()
            };
        }

        // Router first: its vocabulary must cover every shard's before a
        // rebuilt shard goes live (response translation relies on it).
        // Growth is append-only, so existing global ids stay valid.
        // Parked (rolled-back) entries were interned on their first
        // attempt and need no re-growth.
        if !deltas.is_empty() {
            let mut grown = (*self.router.load()).clone();
            for e in &deltas {
                grown.push_entry(e);
            }
            self.router.store(Arc::new(grown));
        }

        let plan = self.fault_plan.read().clone();
        let parts = partition_entries(&deltas, self.config.key, self.config.shards);
        let mut report = SwapReport {
            drained: deltas.len(),
            drained_entries: deltas,
            ..SwapReport::default()
        };
        report.deferred = deferred;
        for (s, delta) in parts.into_iter().enumerate() {
            let shard = &self.shards[s];
            let mut batch = std::mem::take(&mut *shard.pending.lock());
            report.retried += batch.len();
            batch.extend(delta);
            if batch.is_empty() {
                continue;
            }
            let previous = shard.replicas.load(0);
            let warm = previous.engine.apply_delta(&batch, &self.config.build);
            let was_warm = warm.is_some();
            let engine = match warm {
                Some((engine, _delta_report)) => engine,
                // Full off-line rebuild of this shard's world (the engine
                // build sorts by timestamp, so late-arriving old entries
                // land in their chronological place). The base list is
                // not extended yet — a rollback must leave it untouched.
                None => {
                    let entries: Vec<LogEntry> = {
                        let mut base = shard.base.lock();
                        if let ShardBase::Lazy { router_prefix } = *base {
                            // First cold rebuild since a snapshot load:
                            // materialize this shard's partition of the
                            // router prefix the snapshot covered.
                            let router = self.router.load();
                            let mut all = router.entries();
                            all.truncate(router_prefix);
                            let part = partition_entries(&all, self.config.key, self.config.shards)
                                .swap_remove(s);
                            *base = ShardBase::Ready(part);
                        }
                        let ShardBase::Ready(base_entries) = &*base else {
                            unreachable!("materialized above");
                        };
                        base_entries.iter().chain(batch.iter()).cloned().collect()
                    };
                    PqsDa::build_from_entries(&entries, &self.config.build)
                }
            };
            let generation = previous.tag.generation + 1;
            let mut snap = ShardSnapshot::stamp(engine, s, generation);
            let attempt = self.swap_attempts.fetch_add(1, Ordering::Relaxed);
            if let Some(p) = &plan {
                if p.corrupts_swap(attempt) {
                    FaultPlan::corrupt_tag(&mut snap.tag);
                }
            }
            if !snap.verify() {
                // Validation gate: the snapshot does not match its tag.
                // Keep the prior generation live, park the batch for the
                // next cycle.
                self.counters.rollbacks.fetch_add(1, Ordering::Relaxed);
                shard.pending.lock().extend(batch);
                report.rolled_back.push(s);
                continue;
            }
            // The base entry list stays current for any *future* delta
            // that arrives out of order (cold-rebuild ground truth). A
            // still-lazy base advances its router prefix instead: the
            // router already interned this batch (and any previously
            // parked entries for this shard), so this shard's partition
            // of the longer prefix is exactly the extended base.
            match &mut *shard.base.lock() {
                ShardBase::Ready(v) => v.extend(batch),
                ShardBase::Lazy { router_prefix } => {
                    *router_prefix = self.router.load().records().len();
                }
            }
            // Register the tag BEFORE publishing: a reader can never hold
            // a tag the registry hasn't seen.
            self.registered.lock().push(snap.tag);
            shard.replicas.publish(Arc::new(snap));
            self.total_swaps.fetch_add(1, Ordering::Relaxed);
            report.rebuilt.push(s);
            if was_warm {
                report.incremental.push(s);
            }
        }
        if report.drained > 0 {
            // Feed the measured per-entry drain cost back so deadline
            // offers project with the host's actual speed.
            let per_entry_us = (cycle_start.elapsed().as_micros() / report.drained as u128)
                .min(u128::from(u64::MAX));
            self.queue.set_service_estimate_us(per_entry_us as u64);
        }
        report
    }

    /// Counters: per-shard generations, swap count, queue, cache, and
    /// fault-tolerance stats.
    pub fn stats(&self) -> ServeStats {
        let mut cache = CacheStats::default();
        let mut generations = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            let snap = s.replicas.load(0);
            generations.push(snap.tag.generation);
            let c = snap.engine.cache_stats();
            cache.hits += c.hits;
            cache.misses += c.misses;
            cache.evictions += c.evictions;
        }
        let breaker_opens: u64 = self.shards.iter().map(|s| s.breaker.opens()).sum();
        ServeStats {
            shards: self.shards.len(),
            generations,
            total_swaps: self.total_swaps.load(Ordering::Relaxed),
            ingest: self.queue.stats(),
            cache,
            deferred: self.deferred_total.load(Ordering::Relaxed),
            fault: self.counters.snapshot(breaker_opens),
            breakers: self.shards.iter().map(|s| s.breaker.state()).collect(),
            admission: self.gate.stats(),
            coalesce: self.coalescer.stats(),
        }
    }

    /// Resolves a global id to its text (current router generation).
    pub fn query_text(&self, q: QueryId) -> Option<String> {
        let router = self.router.load();
        (q.index() < router.num_queries()).then(|| router.query_text(q).to_owned())
    }

    /// Looks a query up in the global id space.
    pub fn find_query(&self, raw: &str) -> Option<QueryId> {
        self.router.load().find_query(raw)
    }

    /// The home shard of `raw` under the configured key (Query key only
    /// routes by text; under the User key data placement is per-user).
    pub fn home_shard_of_query(&self, raw: &str) -> usize {
        route_query_text(&text::normalize(raw), self.config.shards)
    }
}

/// Anything that can answer a deadline-aware suggest request with the
/// serving contract of [`ShardedPqsDa::suggest_with_deadline`]: an
/// explicit [`ServeOutcome`] — served (possibly degraded, with honest
/// coverage) or rejected — never a hang, never a silent drop.
///
/// Implemented by the in-process [`ShardedPqsDa`] and by the
/// socket-backed router in `pqsda-net`, so load generators and smoke
/// harnesses drive either deployment shape through one interface.
pub trait SuggestService: Sync {
    /// Serves one request under an optional deadline.
    fn suggest_with_deadline(
        &self,
        req: &SuggestRequest,
        deadline: Option<Deadline>,
    ) -> ServeOutcome;
}

impl SuggestService for ShardedPqsDa {
    fn suggest_with_deadline(
        &self,
        req: &SuggestRequest,
        deadline: Option<Deadline>,
    ) -> ServeOutcome {
        ShardedPqsDa::suggest_with_deadline(self, req, deadline)
    }
}

/// Shared read-only context of one request's probe spawns.
struct ProbeCtx<'a> {
    request: u64,
    router: &'a Arc<QueryLog>,
    input_text: &'a str,
    req: &'a SuggestRequest,
    plan: &'a Option<Arc<FaultPlan>>,
}

enum SlotState {
    Waiting,
    Done(ShardTag, Vec<(QueryId, f64)>),
    Failed,
}

/// Per-target bookkeeping of the fault-tolerant gather loop.
struct ProbeSlot {
    shard: usize,
    admission: Admission,
    primary: Option<TaskHandle<ProbeOut>>,
    backup: Option<TaskHandle<ProbeOut>>,
    backup_spawned: bool,
    primary_replica: usize,
    hedge_at: Option<Instant>,
    started: Instant,
    state: SlotState,
}

impl ProbeSlot {
    fn rejected(shard: usize, admission: Admission, started: Instant) -> Self {
        ProbeSlot {
            shard,
            admission,
            primary: None,
            backup: None,
            backup_spawned: false,
            primary_replica: 0,
            hedge_at: None,
            started,
            state: SlotState::Failed,
        }
    }
}

enum ProbeEvent {
    Pending,
    Success(ShardTag, Vec<(QueryId, f64)>),
    Fault,
}

/// One shard's share of a request: translate the query and context into
/// the shard's id space, ask the snapshot's engine, translate the
/// candidates back to global ids. Empty when the shard never saw the
/// query.
///
/// Public because the wire-protocol shard server (`pqsda-net`) must run
/// the *identical* translation so a full-coverage socket reply stays
/// bit-identical to the in-process gather.
pub fn shard_probe(
    router: &QueryLog,
    snap: &ShardSnapshot,
    input_text: &str,
    req: &SuggestRequest,
) -> Vec<(QueryId, f64)> {
    let shard_log = snap.engine.log();
    let Some(local_query) = shard_log.find_query(input_text) else {
        return Vec::new(); // this shard never saw the query
    };
    // Translate the context into the shard's id space, dropping context
    // queries the shard has never seen (the compact expansion drops
    // unknown seeds the same way).
    let mut context = Vec::with_capacity(req.context.len());
    let mut context_times = Vec::with_capacity(req.context.len());
    for (&c, &t) in req.context.iter().zip(&req.context_times) {
        if c.index() >= router.num_queries() {
            continue;
        }
        if let Some(lc) = shard_log.find_query(router.query_text(c)) {
            context.push(lc);
            context_times.push(t);
        }
    }
    let local_req = SuggestRequest {
        query: local_query,
        context,
        context_times,
        query_time: req.query_time,
        user: req.user,
        k: req.k,
        backend: req.backend,
    };
    let scored = snap.engine.suggest_scored(&local_req);
    scored
        .into_iter()
        .filter_map(|(q, score)| {
            // Shard vocabularies are subsets of the router's (the router
            // swaps first on ingest), so this lookup only filters
            // pathological races out.
            router
                .find_query(shard_log.query_text(q))
                .map(|g| (g, score))
        })
        .collect()
}

/// Rank-stratified, score-ordered merge of per-shard candidate lists.
///
/// Stratum `r` holds every list's rank-`r` candidate; within a stratum
/// candidates order by `(score desc, global id asc)`; duplicates keep
/// their first (highest-stratum) occurrence. Stops at `k`. With a single
/// list this is the identity (already ≤ k and duplicate-free).
///
/// Public so the socket-backed router in `pqsda-net` merges remote
/// candidate lists with the exact function the in-process gather uses —
/// the bit-identity contract depends on sharing this code, not
/// reimplementing it.
pub fn merge_rank_stratified(lists: &[Vec<(QueryId, f64)>], k: usize) -> Vec<(QueryId, f64)> {
    let max_len = lists.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::new();
    let mut seen: HashSet<QueryId> = HashSet::new();
    'strata: for r in 0..max_len {
        let mut stratum: Vec<(QueryId, f64)> =
            lists.iter().filter_map(|l| l.get(r)).copied().collect();
        stratum.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("relevance scores are finite")
                .then(a.0.cmp(&b.0))
        });
        for (q, score) in stratum {
            if seen.insert(q) {
                out.push((q, score));
                if out.len() == k {
                    break 'strata;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqsda_querylog::UserId;

    fn q(i: u32) -> QueryId {
        QueryId(i)
    }

    #[test]
    fn coalesce_key_separates_backends() {
        // An A/B pair differing only in backend must never share a leader
        // reply; everything else equal, keys must still collide so true
        // duplicates do coalesce.
        let base = SuggestRequest::simple(q(3), 5).for_user(UserId(7));
        assert_eq!(coalesce_key(&base), coalesce_key(&base.clone()));
        for b in Backend::ALL {
            for other in Backend::ALL {
                let kb = coalesce_key(&base.clone().with_backend(b));
                let ko = coalesce_key(&base.clone().with_backend(other));
                assert_eq!(kb == ko, b == other, "{b:?} vs {other:?}");
            }
        }
    }

    #[test]
    fn merge_single_list_is_identity() {
        let list = vec![(q(3), 0.9), (q(1), 0.5), (q(7), 0.4)];
        let lists = std::slice::from_ref(&list);
        assert_eq!(merge_rank_stratified(lists, 5), list);
        assert_eq!(merge_rank_stratified(lists, 2), list[..2].to_vec());
    }

    #[test]
    fn merge_orders_within_stratum_by_score_then_id() {
        let a = vec![(q(1), 0.5), (q(2), 0.4)];
        let b = vec![(q(3), 0.9), (q(4), 0.1)];
        let merged = merge_rank_stratified(&[a, b], 10);
        // Stratum 0: q3 (0.9) before q1 (0.5); stratum 1: q2 before q4.
        assert_eq!(
            merged,
            vec![(q(3), 0.9), (q(1), 0.5), (q(2), 0.4), (q(4), 0.1)]
        );
    }

    #[test]
    fn merge_dedups_keeping_first_stratum() {
        let a = vec![(q(1), 0.8), (q(2), 0.6)];
        let b = vec![(q(2), 0.7), (q(1), 0.3)];
        let merged = merge_rank_stratified(&[a, b], 10);
        assert_eq!(merged, vec![(q(1), 0.8), (q(2), 0.7)]);
    }

    #[test]
    fn merge_breaks_score_ties_toward_smaller_id() {
        let a = vec![(q(9), 0.5)];
        let b = vec![(q(2), 0.5)];
        let merged = merge_rank_stratified(&[a, b], 10);
        assert_eq!(merged, vec![(q(2), 0.5), (q(9), 0.5)]);
    }

    #[test]
    fn ranked_reflects_merge_tie_breaking() {
        // Two shards; a score tie in stratum 0 breaks toward the smaller
        // global id, and the duplicate in stratum 1 keeps its better
        // score while holding one rank slot.
        let a = vec![(q(9), 0.5), (q(4), 0.2)];
        let b = vec![(q(2), 0.5), (q(4), 0.9)];
        let merged = merge_rank_stratified(&[a, b], 10);
        assert_eq!(merged, vec![(q(2), 0.5), (q(9), 0.5), (q(4), 0.9)]);
        let reply = ServeReply {
            suggestions: merged,
            tags: Vec::new(),
            coverage: Coverage::full(2),
        };
        assert_eq!(reply.ranked(), vec![q(2), q(9), q(4)]);
        assert!(!reply.coverage.is_degraded());
        assert_eq!(reply.coverage.fraction(), 1.0);
    }

    fn tiny_entries() -> Vec<LogEntry> {
        let mut entries = Vec::new();
        for rep in 0..4u64 {
            let base = rep * 50_000;
            for (u, qtext, url, dt) in [
                (0u32, "sun", "java.com", 0u64),
                (0, "sun java", "java.com", 30),
                (0, "java jdk", "jdk.com", 60),
                (1, "sun", "solar.org", 1000),
                (1, "sun solar energy", "solar.org", 1030),
                (1, "solar panels", "panels.com", 1060),
                (2, "sun java", "java.com", 2000),
            ] {
                entries.push(LogEntry::new(UserId(u), qtext, Some(url), base + dt));
            }
        }
        entries
    }

    #[test]
    fn end_to_end_two_shards_cover_both_facets() {
        // A tiny world; user key with 2 shards: users split somehow, and
        // an anonymous request must still gather candidates from every
        // shard that knows the query.
        let entries = tiny_entries();
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig {
                shards: 2,
                key: PartitionKey::User,
                ..ServeConfig::default()
            },
        );
        let sun = server.find_query("sun").unwrap();
        let reply = server.suggest(&SuggestRequest::simple(sun, 4));
        assert!(!reply.suggestions.is_empty());
        assert_eq!(reply.tags.len(), 2, "user key consults every shard");
        assert_eq!(reply.coverage, Coverage::full(2));
        // All returned ids live in the router space.
        for (qid, _) in &reply.suggestions {
            assert!(server.query_text(*qid).is_some());
        }
        // Batch serving matches serial.
        let reqs = vec![SuggestRequest::simple(sun, 4); 8];
        for r in server.suggest_many_with_threads(&reqs, 4) {
            assert_eq!(r.ranked(), reply.ranked());
        }
        // suggest_on over all shards is the same merge.
        let subset = server.suggest_on(&SuggestRequest::simple(sun, 4), &[0, 1]);
        assert_eq!(subset.suggestions, reply.suggestions);
    }

    #[test]
    fn ingest_then_apply_deltas_swaps_only_touched_shards() {
        let entries: Vec<LogEntry> = (0..30)
            .map(|i| {
                LogEntry::new(
                    UserId(i % 5),
                    format!("query {}", i % 7),
                    Some("u.com"),
                    u64::from(i) * 100,
                )
            })
            .collect();
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig {
                shards: 4,
                key: PartitionKey::User,
                ..ServeConfig::default()
            },
        );
        assert_eq!(server.stats().generations, vec![0, 0, 0, 0]);
        assert_eq!(server.apply_deltas(), SwapReport::default());

        // One new user's entries → exactly one shard rebuilds.
        let new_user = UserId(77);
        assert!(server.ingest(LogEntry::new(new_user, "brand new query", None, 9_000)));
        assert!(server.ingest(LogEntry::new(new_user, "query 1", Some("u.com"), 9_100)));
        let report = server.apply_deltas();
        assert_eq!(report.drained, 2);
        assert_eq!(report.rebuilt, vec![crate::router::route_user(new_user, 4)]);
        // The batch is chronological, so the swap took the delta path.
        assert_eq!(report.incremental, report.rebuilt);
        assert!(report.rolled_back.is_empty());
        let stats = server.stats();
        assert_eq!(stats.total_swaps, 1);
        assert_eq!(stats.generations.iter().sum::<u64>(), 1);
        assert_eq!(stats.ingest.depth(), 0);
        assert_eq!(stats.fault.rollbacks, 0);

        // The ingested query is now servable end to end.
        let nq = server.find_query("brand new query").unwrap();
        let reply = server.suggest(&SuggestRequest::simple(nq, 3).for_user(new_user));
        assert_eq!(reply.tags.len(), 4);
        // Every consulted tag is registered (torn-read invariant).
        let registered = server.registered_tags();
        for t in &reply.tags {
            assert!(registered.contains(t), "unregistered tag {t:?}");
        }
    }

    #[test]
    fn rate_limited_apply_deltas_defers_and_carries_the_remainder() {
        let entries = tiny_entries();
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig {
                shards: 2,
                key: PartitionKey::User,
                max_delta_entries: 3,
                ..ServeConfig::default()
            },
        );
        for i in 0..8u64 {
            assert!(server.ingest(LogEntry::new(
                UserId(9),
                format!("rate limited {i}"),
                None,
                1_000_000 + i,
            )));
        }
        let r1 = server.apply_deltas();
        assert_eq!((r1.drained, r1.deferred), (3, 5));
        let r2 = server.apply_deltas();
        assert_eq!((r2.drained, r2.deferred), (3, 2));
        let r3 = server.apply_deltas();
        assert_eq!((r3.drained, r3.deferred), (2, 0));
        let stats = server.stats();
        assert_eq!(stats.deferred, 7, "cumulative deferrals");
        assert_eq!(stats.ingest.depth(), 0);
        assert_eq!(stats.total_swaps, 3);
        // Every rate-limited batch eventually landed.
        assert!(server.find_query("rate limited 7").is_some());
    }

    #[test]
    fn corrupt_swap_rolls_back_then_retries_cleanly() {
        let entries = tiny_entries();
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig {
                shards: 1,
                key: PartitionKey::User,
                ..ServeConfig::default()
            },
        );
        server.set_fault_plan(Some(FaultPlan::new().with_corrupt_swap(0)));
        let registered_before = server.registered_tags().len();
        assert!(server.ingest(LogEntry::new(UserId(5), "poisoned swap", None, 900_000)));
        assert!(server.ingest(LogEntry::new(UserId(5), "sun", None, 900_100)));
        let report = server.apply_deltas();
        assert_eq!(report.drained, 2);
        assert_eq!(report.rolled_back, vec![0]);
        assert!(report.rebuilt.is_empty());
        assert_eq!(report.retried, 0);
        let stats = server.stats();
        assert_eq!(stats.generations, vec![0], "generation unchanged");
        assert_eq!(stats.total_swaps, 0);
        assert_eq!(stats.fault.rollbacks, 1);
        // The corrupt tag was never registered or published.
        assert_eq!(server.registered_tags().len(), registered_before);
        // Clearing the plan lets the parked batch retry and publish.
        server.set_fault_plan(None);
        let retry = server.apply_deltas();
        assert_eq!(retry.drained, 0);
        assert_eq!(retry.retried, 2);
        assert_eq!(retry.rebuilt, vec![0]);
        assert_eq!(retry.incremental, vec![0]);
        assert_eq!(server.stats().generations, vec![1]);
        // The rolled-back-then-retried entry is servable.
        let nq = server.find_query("poisoned swap").unwrap();
        let reply = server.suggest(&SuggestRequest::simple(nq, 3));
        assert!(!reply.coverage.is_degraded());
    }

    #[test]
    fn breaker_opens_after_consecutive_faults_and_recovers_via_probe() {
        let entries = tiny_entries();
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig {
                shards: 1,
                key: PartitionKey::Query,
                fault: FaultConfig {
                    breaker_threshold: 2,
                    breaker_cooldown: 2,
                    ..FaultConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        // Panics injected into the probes of requests 0 and 1 (one shard,
        // one replica → replica 0 is always primary).
        server.set_fault_plan(Some(
            FaultPlan::new()
                .with_probe_fault(0, 0, 0, FaultKind::Panic)
                .with_probe_fault(1, 0, 0, FaultKind::Panic),
        ));
        let sun = server.find_query("sun").unwrap();
        let req = SuggestRequest::simple(sun, 4);
        let healthy = server.suggest_on(&req, &[0]);

        // Requests 0 and 1 fault; the second trips the breaker.
        for _ in 0..2 {
            let r = server.suggest(&req);
            assert!(r.coverage.is_degraded());
            assert!(r.suggestions.is_empty());
        }
        assert_eq!(server.stats().breakers, vec![BreakerState::Open]);
        // Request 2 is skipped by the open breaker (cooldown 1 of 2).
        let r = server.suggest(&req);
        assert!(r.coverage.is_degraded());
        assert_eq!(server.stats().fault.breaker_skips, 1);
        // Request 3 is the half-open probe; no fault scheduled → success
        // closes the breaker and the reply is full and healthy.
        let r = server.suggest(&req);
        assert_eq!(r.coverage, Coverage::full(1));
        assert_eq!(r.suggestions, healthy.suggestions);
        let stats = server.stats();
        assert_eq!(stats.breakers, vec![BreakerState::Closed]);
        assert_eq!(stats.fault.panics, 2);
        assert_eq!(stats.fault.breaker_opens, 1);
        assert_eq!(stats.fault.degraded, 3);
        // Request 4 serves normally.
        let r = server.suggest(&req);
        assert_eq!(r.suggestions, healthy.suggestions);
    }

    #[test]
    fn hedge_rescues_a_slow_primary_replica() {
        let entries = tiny_entries();
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig {
                shards: 1,
                key: PartitionKey::Query,
                fault: FaultConfig {
                    replicas: 2,
                    hedge_ms: 2,
                    ..FaultConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        // Replica 0 of the only shard is pathologically slow; requests
        // with an even index pick it as primary (request % 2).
        server.set_fault_plan(Some(FaultPlan::new().with_slow_replica(0, 0, 200)));
        let sun = server.find_query("sun").unwrap();
        let req = SuggestRequest::simple(sun, 4);
        let healthy = server.suggest_on(&req, &[0]);
        // Request 0: slow primary, the hedge fires and the backup wins.
        let r = server.suggest(&req);
        assert_eq!(r.coverage, Coverage::full(1));
        assert_eq!(r.suggestions, healthy.suggestions);
        // Request 1: fast primary (replica 1), no hedge needed... but a
        // hedge MAY still fire on a slow machine; only the reply is
        // pinned.
        let r = server.suggest(&req);
        assert_eq!(r.suggestions, healthy.suggestions);
        let stats = server.stats();
        assert!(stats.fault.hedges >= 1, "stats: {:?}", stats.fault);
        assert!(stats.fault.hedge_wins >= 1, "stats: {:?}", stats.fault);
        assert_eq!(stats.fault.degraded, 0);
    }

    #[test]
    fn deadline_drops_a_stalled_shard_and_reports_degraded_coverage() {
        let entries = tiny_entries();
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig {
                shards: 2,
                key: PartitionKey::User,
                fault: FaultConfig {
                    budget_ms: 120,
                    ..FaultConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        // Shard 0's only replica stalls far past the request budget.
        server.set_fault_plan(Some(FaultPlan::new().with_slow_replica(0, 0, 2_000)));
        let sun = server.find_query("sun").unwrap();
        let req = SuggestRequest::simple(sun, 4);
        let start = Instant::now();
        let r = server.suggest(&req);
        assert!(
            start.elapsed() < Duration::from_millis(1_500),
            "deadline must cut the stalled probe off"
        );
        assert!(r.coverage.is_degraded());
        assert_eq!(
            r.coverage,
            Coverage {
                answered: 1,
                consulted: 2
            }
        );
        // The reply covers exactly the answering shard (tags say which).
        assert_eq!(r.tags.len(), 1);
        assert_eq!(r.tags[0].shard, 1);
        let subset = server.suggest_on(&req, &[1]);
        assert_eq!(r.suggestions, subset.suggestions);
        assert_eq!(server.stats().fault.timeouts, 1);
    }
}
