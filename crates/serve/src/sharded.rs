//! The sharded serving engine: scatter-gather suggestion over N
//! independent [`PqsDa`] shards with score-ordered merging, plus the
//! writer side (delta ingestion → per-shard incremental update, with a
//! cold-rebuild fallback → snapshot swap).
//!
//! ## Id spaces
//!
//! Requests and responses speak the **router log**'s [`QueryId`] space
//! (the interned full log). Each shard interns its own partition, so ids
//! differ per shard; translation goes through normalized query *text* in
//! both directions — an O(1) hash lookup per id, and the only
//! representation that is stable across rebuilds.
//!
//! ## Merge
//!
//! Each consulted shard returns its top-k `(query, F*)` list in rank
//! order. The router merges **rank-stratified**: all shards' rank-0
//! candidates (ordered by relevance score, ties toward the smaller global
//! id), then rank-1, and so on until `k` distinct queries are collected.
//! Rank position encodes the diversification order (Algorithm 1's
//! discovery order *is* the ranking), so stratifying by rank preserves
//! each shard's diversity structure while relevance orders candidates
//! within a stratum. With one shard the merge is the identity — the
//! equivalence proptest pins sharded N=1 output to the unsharded engine,
//! bit for bit.

use crate::ingest::{IngestQueue, IngestStats};
use crate::router::{partition_entries, route_query_text, PartitionKey};
use crate::swap::{ShardSnapshot, ShardTag, Swap};
use pqsda::{CacheStats, EngineBuildOptions, PqsDa};
use pqsda_baselines::SuggestRequest;
use pqsda_querylog::{text, LogEntry, QueryId, QueryLog};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of a sharded server.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// How entries are partitioned.
    pub key: PartitionKey,
    /// The per-shard engine build recipe.
    pub build: EngineBuildOptions,
    /// Ingestion-queue capacity (backpressure bound).
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            key: PartitionKey::default(),
            build: EngineBuildOptions::default(),
            queue_capacity: 4096,
        }
    }
}

/// One answered request: the merged suggestions (global ids, with the
/// relevance score each earned in its shard) and the exact snapshot tags
/// that produced them.
#[derive(Clone, Debug)]
pub struct ServeReply {
    /// Merged top-k, rank order, global [`QueryId`]s.
    pub suggestions: Vec<(QueryId, f64)>,
    /// The tag of every shard snapshot consulted (one per consulted
    /// shard, in shard order). Readers use these to verify generation
    /// consistency — see the soak test.
    pub tags: Vec<ShardTag>,
}

impl ServeReply {
    /// The suggestion ranking without scores.
    pub fn ranked(&self) -> Vec<QueryId> {
        self.suggestions.iter().map(|&(q, _)| q).collect()
    }
}

/// A point-in-time view of the server's counters.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Shard count.
    pub shards: usize,
    /// Current generation of each shard.
    pub generations: Vec<u64>,
    /// Snapshot swaps performed since construction (across all shards).
    pub total_swaps: u64,
    /// Ingestion-queue counters (accepted/rejected/drained; depth derives).
    pub ingest: IngestStats,
    /// Expansion-memo counters aggregated over all live shard snapshots.
    pub cache: CacheStats,
}

/// What one [`ShardedPqsDa::apply_deltas`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwapReport {
    /// Entries drained from the ingestion queue.
    pub drained: usize,
    /// Shards that swapped in a new snapshot (those whose partition got
    /// deltas), whether the snapshot was produced incrementally or cold.
    pub rebuilt: Vec<usize>,
    /// The subset of `rebuilt` whose snapshot was produced by the
    /// incremental delta path ([`PqsDa::apply_delta`]) instead of a cold
    /// `build_from_entries` over the whole partition. A chronological
    /// delta always takes this path; a late-arriving batch (older than
    /// the shard's newest record) falls back to the cold rebuild.
    pub incremental: Vec<usize>,
}

struct Shard {
    snap: Swap<ShardSnapshot>,
    /// The raw entries the *current* snapshot was built from. Writer-only
    /// (guarded by the rebuild lock); readers never touch it.
    base: parking_lot::Mutex<Vec<LogEntry>>,
}

/// N independent PQS-DA shards behind one request-level facade.
pub struct ShardedPqsDa {
    config: ServeConfig,
    /// The global id-space log: interns every entry ever built or
    /// ingested, so request/response ids outlive shard rebuilds. Swapped
    /// (grow-only) *before* the shards it feeds.
    router: Swap<QueryLog>,
    shards: Vec<Shard>,
    queue: IngestQueue,
    /// Every tag ever published, registered before its snapshot goes
    /// live — the ground truth the soak test checks responses against.
    registered: parking_lot::Mutex<Vec<ShardTag>>,
    /// Serializes writers (`apply_deltas`).
    rebuild_lock: parking_lot::Mutex<()>,
    total_swaps: AtomicU64,
}

impl ShardedPqsDa {
    /// Partitions `entries` and builds every shard with `config.build`.
    pub fn build(entries: &[LogEntry], config: ServeConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        let router = QueryLog::from_entries(entries);
        let parts = partition_entries(entries, config.key, config.shards);
        let mut registered = Vec::with_capacity(config.shards);
        let shards: Vec<Shard> = parts
            .into_iter()
            .enumerate()
            .map(|(s, part)| {
                let engine = PqsDa::build_from_entries(&part, &config.build);
                let snap = ShardSnapshot::stamp(engine, s, 0);
                registered.push(snap.tag);
                Shard {
                    snap: Swap::new(Arc::new(snap)),
                    base: parking_lot::Mutex::new(part),
                }
            })
            .collect();
        ShardedPqsDa {
            queue: IngestQueue::new(config.queue_capacity),
            config,
            router: Swap::new(Arc::new(router)),
            shards,
            registered: parking_lot::Mutex::new(registered),
            rebuild_lock: parking_lot::Mutex::new(()),
            total_swaps: AtomicU64::new(0),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The current global id-space log (for resolving suggestion text).
    pub fn router_log(&self) -> Arc<QueryLog> {
        self.router.load()
    }

    /// The tag of every shard's *current* snapshot, in shard order.
    pub fn shard_tags(&self) -> Vec<ShardTag> {
        self.shards.iter().map(|s| s.snap.load().tag).collect()
    }

    /// Every tag ever published (including superseded generations).
    /// A response's tags must all appear here — the torn-read invariant.
    pub fn registered_tags(&self) -> Vec<ShardTag> {
        self.registered.lock().clone()
    }

    /// Serves one request: scatter to the responsible shard(s), gather
    /// scored candidates, merge rank-stratified.
    pub fn suggest(&self, req: &SuggestRequest) -> ServeReply {
        let router = self.router.load();
        if req.query.index() >= router.num_queries() || req.k == 0 {
            return ServeReply {
                suggestions: Vec::new(),
                tags: Vec::new(),
            };
        }
        let input_text = router.query_text(req.query);
        let targets: Vec<usize> = match self.config.key {
            // The query's home shard holds every record of it.
            PartitionKey::Query => vec![route_query_text(input_text, self.config.shards)],
            // User partitions spread a query's evidence across shards:
            // consult all of them and merge.
            PartitionKey::User => (0..self.config.shards).collect(),
        };

        let mut tags = Vec::with_capacity(targets.len());
        let mut lists: Vec<Vec<(QueryId, f64)>> = Vec::with_capacity(targets.len());
        for s in targets {
            // One load per shard: the whole per-shard computation runs
            // against this single immutable snapshot.
            let snap = self.shards[s].snap.load();
            tags.push(snap.tag);
            let shard_log = snap.engine.log();
            let Some(local_query) = shard_log.find_query(input_text) else {
                continue; // this shard never saw the query
            };
            // Translate the context into the shard's id space, dropping
            // context queries the shard has never seen (the compact
            // expansion drops unknown seeds the same way).
            let mut context = Vec::with_capacity(req.context.len());
            let mut context_times = Vec::with_capacity(req.context.len());
            for (&c, &t) in req.context.iter().zip(&req.context_times) {
                if c.index() >= router.num_queries() {
                    continue;
                }
                if let Some(lc) = shard_log.find_query(router.query_text(c)) {
                    context.push(lc);
                    context_times.push(t);
                }
            }
            let local_req = SuggestRequest {
                query: local_query,
                context,
                context_times,
                query_time: req.query_time,
                user: req.user,
                k: req.k,
            };
            let scored = snap.engine.suggest_scored(&local_req);
            lists.push(
                scored
                    .into_iter()
                    .filter_map(|(q, score)| {
                        // Shard vocabularies are subsets of the router's
                        // (the router swaps first on ingest), so this
                        // lookup only filters pathological races out.
                        router
                            .find_query(shard_log.query_text(q))
                            .map(|g| (g, score))
                    })
                    .collect(),
            );
        }
        ServeReply {
            suggestions: merge_rank_stratified(&lists, req.k),
            tags,
        }
    }

    /// Serves a batch, fanning requests across the worker pool (`0` =
    /// auto). Output order matches input order and each reply is identical
    /// to a serial [`ShardedPqsDa::suggest`] call.
    pub fn suggest_many_with_threads(
        &self,
        reqs: &[SuggestRequest],
        threads: usize,
    ) -> Vec<ServeReply> {
        let threads = pqsda_parallel::effective_threads(threads, reqs.len(), 1);
        pqsda_parallel::map_indexed(reqs.len(), threads, |i| self.suggest(&reqs[i]))
    }

    /// [`ShardedPqsDa::suggest_many_with_threads`] with automatic threads.
    pub fn suggest_many(&self, reqs: &[SuggestRequest]) -> Vec<ServeReply> {
        self.suggest_many_with_threads(reqs, 0)
    }

    /// Offers one new log entry to the ingestion queue (non-blocking;
    /// `false` = backpressure rejection). The entry takes effect at the
    /// next [`ShardedPqsDa::apply_deltas`].
    pub fn ingest(&self, entry: LogEntry) -> bool {
        self.queue.offer(entry)
    }

    /// The writer step: drains the queue, extends the router id space,
    /// updates the shards whose partitions received deltas and swaps the
    /// new snapshots in. Readers are never blocked — they keep answering
    /// from the old `Arc`s until the pointer store, and from the new ones
    /// after. Safe to call from any thread; writers serialize.
    ///
    /// Each touched shard first tries the **incremental** path: the live
    /// snapshot's [`PqsDa::apply_delta`] threads the batch through every
    /// layer as a delta (log append, scoped CF-IQF reweight, warm-started
    /// UPM retrain, scoped expansion-memo invalidation), which is
    /// equivalent to — and far cheaper than — rebuilding the partition
    /// from scratch. When the delta violates the chronological contract
    /// (an entry older than the shard's newest record) the shard falls
    /// back to a full cold rebuild; either way the swap protocol below is
    /// identical, so readers cannot tell the paths apart.
    pub fn apply_deltas(&self) -> SwapReport {
        let _writer = self.rebuild_lock.lock();
        let deltas = self.queue.drain();
        if deltas.is_empty() {
            return SwapReport::default();
        }

        // Router first: its vocabulary must cover every shard's before a
        // rebuilt shard goes live (response translation relies on it).
        // Growth is append-only, so existing global ids stay valid.
        let mut grown = (*self.router.load()).clone();
        for e in &deltas {
            grown.push_entry(e);
        }
        self.router.store(Arc::new(grown));

        let parts = partition_entries(&deltas, self.config.key, self.config.shards);
        let mut rebuilt = Vec::new();
        let mut incremental = Vec::new();
        for (s, delta) in parts.into_iter().enumerate() {
            if delta.is_empty() {
                continue;
            }
            let shard = &self.shards[s];
            let previous = shard.snap.load();
            let warm = previous.engine.apply_delta(&delta, &self.config.build);
            // The base entry list stays current either way: it is the
            // cold-rebuild ground truth for any *future* delta that
            // arrives out of order.
            let entries: Vec<LogEntry> = {
                let mut base = shard.base.lock();
                base.extend(delta);
                if warm.is_some() {
                    Vec::new()
                } else {
                    base.clone()
                }
            };
            let engine = match warm {
                Some((engine, _delta_report)) => {
                    incremental.push(s);
                    engine
                }
                // Full off-line rebuild of this shard's world (the engine
                // build sorts by timestamp, so late-arriving old entries
                // land in their chronological place).
                None => PqsDa::build_from_entries(&entries, &self.config.build),
            };
            let generation = previous.tag.generation + 1;
            let snap = ShardSnapshot::stamp(engine, s, generation);
            // Register the tag BEFORE publishing: a reader can never hold
            // a tag the registry hasn't seen.
            self.registered.lock().push(snap.tag);
            shard.snap.store(Arc::new(snap));
            self.total_swaps.fetch_add(1, Ordering::Relaxed);
            rebuilt.push(s);
        }
        SwapReport {
            drained: deltas.len(),
            rebuilt,
            incremental,
        }
    }

    /// Counters: per-shard generations, swap count, queue and cache stats.
    pub fn stats(&self) -> ServeStats {
        let mut cache = CacheStats::default();
        let mut generations = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            let snap = s.snap.load();
            generations.push(snap.tag.generation);
            let c = snap.engine.cache_stats();
            cache.hits += c.hits;
            cache.misses += c.misses;
            cache.evictions += c.evictions;
        }
        ServeStats {
            shards: self.shards.len(),
            generations,
            total_swaps: self.total_swaps.load(Ordering::Relaxed),
            ingest: self.queue.stats(),
            cache,
        }
    }

    /// Resolves a global id to its text (current router generation).
    pub fn query_text(&self, q: QueryId) -> Option<String> {
        let router = self.router.load();
        (q.index() < router.num_queries()).then(|| router.query_text(q).to_owned())
    }

    /// Looks a query up in the global id space.
    pub fn find_query(&self, raw: &str) -> Option<QueryId> {
        self.router.load().find_query(raw)
    }

    /// The home shard of `raw` under the configured key (Query key only
    /// routes by text; under the User key data placement is per-user).
    pub fn home_shard_of_query(&self, raw: &str) -> usize {
        route_query_text(&text::normalize(raw), self.config.shards)
    }
}

/// Rank-stratified, score-ordered merge of per-shard candidate lists.
///
/// Stratum `r` holds every list's rank-`r` candidate; within a stratum
/// candidates order by `(score desc, global id asc)`; duplicates keep
/// their first (highest-stratum) occurrence. Stops at `k`. With a single
/// list this is the identity (already ≤ k and duplicate-free).
fn merge_rank_stratified(lists: &[Vec<(QueryId, f64)>], k: usize) -> Vec<(QueryId, f64)> {
    let max_len = lists.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::new();
    let mut seen: HashSet<QueryId> = HashSet::new();
    'strata: for r in 0..max_len {
        let mut stratum: Vec<(QueryId, f64)> =
            lists.iter().filter_map(|l| l.get(r)).copied().collect();
        stratum.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("relevance scores are finite")
                .then(a.0.cmp(&b.0))
        });
        for (q, score) in stratum {
            if seen.insert(q) {
                out.push((q, score));
                if out.len() == k {
                    break 'strata;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqsda_querylog::UserId;

    fn q(i: u32) -> QueryId {
        QueryId(i)
    }

    #[test]
    fn merge_single_list_is_identity() {
        let list = vec![(q(3), 0.9), (q(1), 0.5), (q(7), 0.4)];
        let lists = std::slice::from_ref(&list);
        assert_eq!(merge_rank_stratified(lists, 5), list);
        assert_eq!(merge_rank_stratified(lists, 2), list[..2].to_vec());
    }

    #[test]
    fn merge_orders_within_stratum_by_score_then_id() {
        let a = vec![(q(1), 0.5), (q(2), 0.4)];
        let b = vec![(q(3), 0.9), (q(4), 0.1)];
        let merged = merge_rank_stratified(&[a, b], 10);
        // Stratum 0: q3 (0.9) before q1 (0.5); stratum 1: q2 before q4.
        assert_eq!(
            merged,
            vec![(q(3), 0.9), (q(1), 0.5), (q(2), 0.4), (q(4), 0.1)]
        );
    }

    #[test]
    fn merge_dedups_keeping_first_stratum() {
        let a = vec![(q(1), 0.8), (q(2), 0.6)];
        let b = vec![(q(2), 0.7), (q(1), 0.3)];
        let merged = merge_rank_stratified(&[a, b], 10);
        assert_eq!(merged, vec![(q(1), 0.8), (q(2), 0.7)]);
    }

    #[test]
    fn merge_breaks_score_ties_toward_smaller_id() {
        let a = vec![(q(9), 0.5)];
        let b = vec![(q(2), 0.5)];
        let merged = merge_rank_stratified(&[a, b], 10);
        assert_eq!(merged, vec![(q(2), 0.5), (q(9), 0.5)]);
    }

    #[test]
    fn end_to_end_two_shards_cover_both_facets() {
        // A tiny world; user key with 2 shards: users split somehow, and
        // an anonymous request must still gather candidates from every
        // shard that knows the query.
        let mut entries = Vec::new();
        for rep in 0..4u64 {
            let base = rep * 50_000;
            for (u, qtext, url, dt) in [
                (0u32, "sun", "java.com", 0u64),
                (0, "sun java", "java.com", 30),
                (0, "java jdk", "jdk.com", 60),
                (1, "sun", "solar.org", 1000),
                (1, "sun solar energy", "solar.org", 1030),
                (1, "solar panels", "panels.com", 1060),
                (2, "sun java", "java.com", 2000),
            ] {
                entries.push(LogEntry::new(UserId(u), qtext, Some(url), base + dt));
            }
        }
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig {
                shards: 2,
                key: PartitionKey::User,
                ..ServeConfig::default()
            },
        );
        let sun = server.find_query("sun").unwrap();
        let reply = server.suggest(&SuggestRequest::simple(sun, 4));
        assert!(!reply.suggestions.is_empty());
        assert_eq!(reply.tags.len(), 2, "user key consults every shard");
        // All returned ids live in the router space.
        for (qid, _) in &reply.suggestions {
            assert!(server.query_text(*qid).is_some());
        }
        // Batch serving matches serial.
        let reqs = vec![SuggestRequest::simple(sun, 4); 8];
        for r in server.suggest_many_with_threads(&reqs, 4) {
            assert_eq!(r.ranked(), reply.ranked());
        }
    }

    #[test]
    fn ingest_then_apply_deltas_swaps_only_touched_shards() {
        let entries: Vec<LogEntry> = (0..30)
            .map(|i| {
                LogEntry::new(
                    UserId(i % 5),
                    format!("query {}", i % 7),
                    Some("u.com"),
                    u64::from(i) * 100,
                )
            })
            .collect();
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig {
                shards: 4,
                key: PartitionKey::User,
                ..ServeConfig::default()
            },
        );
        assert_eq!(server.stats().generations, vec![0, 0, 0, 0]);
        assert_eq!(server.apply_deltas(), SwapReport::default());

        // One new user's entries → exactly one shard rebuilds.
        let new_user = UserId(77);
        assert!(server.ingest(LogEntry::new(new_user, "brand new query", None, 9_000)));
        assert!(server.ingest(LogEntry::new(new_user, "query 1", Some("u.com"), 9_100)));
        let report = server.apply_deltas();
        assert_eq!(report.drained, 2);
        assert_eq!(report.rebuilt, vec![crate::router::route_user(new_user, 4)]);
        // The batch is chronological, so the swap took the delta path.
        assert_eq!(report.incremental, report.rebuilt);
        let stats = server.stats();
        assert_eq!(stats.total_swaps, 1);
        assert_eq!(stats.generations.iter().sum::<u64>(), 1);
        assert_eq!(stats.ingest.depth(), 0);

        // The ingested query is now servable end to end.
        let nq = server.find_query("brand new query").unwrap();
        let reply = server.suggest(&SuggestRequest::simple(nq, 3).for_user(new_user));
        assert_eq!(reply.tags.len(), 4);
        // Every consulted tag is registered (torn-read invariant).
        let registered = server.registered_tags();
        for t in &reply.tags {
            assert!(registered.contains(t), "unregistered tag {t:?}");
        }
    }
}
