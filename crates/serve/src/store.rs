//! Server-level persistence: snapshotting a whole [`ShardedPqsDa`] to a
//! directory and reassembling it on cold start (DESIGN.md §12).
//!
//! Layout of a snapshot directory:
//!
//! ```text
//! router.pqss     the global id-space log + serving topology
//! shard-N.pqss    one engine snapshot per shard (zero-copy loadable)
//! deltas.wal      post-snapshot delta batches (sidecar WAL)
//! ```
//!
//! Saving takes a **consistent cut** under the writer lock: no
//! `apply_deltas` can run between reading the router and the last
//! shard, so the files always describe one generation vector. Every
//! file is published by atomic rename, and a successful save resets the
//! WAL — the snapshot owns everything up to its cut, the WAL owns
//! everything after.
//!
//! Restart = [`load_server`] (mmap the shards, digest-verified) +
//! replay of the WAL batch-by-batch through the ordinary
//! ingest/`apply_deltas` pipeline. The result is the same engine state
//! a log-rebuild would produce — the CLI's `--snapshot-smoke` gate pins
//! reply bit-identity — at a fraction of the cold-start cost (the
//! `cold_start_mmap` vs `cold_start_rebuild` rows in `BENCH_perf.json`).

use crate::router::PartitionKey;
use crate::sharded::{ServeConfig, ShardedPqsDa, SwapReport};
use crate::swap::{ShardSnapshot, ShardTag};
use pqsda_store::snapshot::{load_engine, load_router, save_engine, save_router, LoadInfo};
use pqsda_store::wal::{WalReader, WalWriter};
use pqsda_store::SnapError;
use std::path::{Path, PathBuf};

/// File name of the router snapshot inside a snapshot directory.
pub const ROUTER_FILE: &str = "router.pqss";
/// File name of the delta WAL inside a snapshot directory.
pub const WAL_FILE: &str = "deltas.wal";

/// The shard file name for shard `s`.
pub fn shard_file(s: usize) -> String {
    format!("shard-{s}.pqss")
}

fn key_code(key: PartitionKey) -> u32 {
    match key {
        PartitionKey::User => 0,
        PartitionKey::Query => 1,
    }
}

fn key_from_code(code: u32) -> Result<PartitionKey, SnapError> {
    Ok(match code {
        0 => PartitionKey::User,
        1 => PartitionKey::Query,
        _ => return Err(SnapError::BadLayout("unknown partition key")),
    })
}

/// What one [`save_server`] wrote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaveReport {
    /// The generation each shard was saved at, in shard order.
    pub generations: Vec<u64>,
    /// Total bytes across router + shard files.
    pub total_bytes: u64,
}

/// What one [`load_server`] reassembled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadReport {
    /// Per-shard load provenance (mmap vs fallback, zero-copy, size).
    pub shards: Vec<LoadInfo>,
    /// Router file provenance.
    pub router: LoadInfo,
    /// WAL batches replayed through `apply_deltas` after the load.
    pub wal_batches_replayed: usize,
    /// Entries those batches carried.
    pub wal_entries_replayed: usize,
    /// Torn-tail bytes the WAL replay discarded.
    pub wal_dropped_bytes: u64,
}

/// Saves the whole server into `dir` (created if missing): router file,
/// one `PQSS` file per shard, and a **reset** (empty) delta WAL. The cut
/// is consistent — taken under the writer lock, so it can never
/// interleave with an `apply_deltas`.
pub fn save_server(server: &ShardedPqsDa, dir: &Path) -> Result<SaveReport, SnapError> {
    std::fs::create_dir_all(dir)?;
    let _cut = server.writer_cut();
    let config = server.config();
    let router = server.router_log();
    save_router(
        &router,
        config.shards as u64,
        key_code(config.key),
        &dir.join(ROUTER_FILE),
    )?;
    let mut generations = Vec::with_capacity(config.shards);
    for s in 0..config.shards {
        let snap = server.shard_snapshot(s);
        let meta = save_engine(
            &snap.engine,
            s as u64,
            snap.tag.generation,
            &dir.join(shard_file(s)),
        )?;
        debug_assert_eq!(meta.graph_digest, snap.tag.graph_digest);
        debug_assert_eq!(meta.profile_digest, snap.tag.profile_digest);
        generations.push(snap.tag.generation);
    }
    // The snapshot now owns everything up to the cut: restart the WAL.
    WalWriter::create(&dir.join(WAL_FILE))?;
    let mut total_bytes = std::fs::metadata(dir.join(ROUTER_FILE))?.len();
    for s in 0..config.shards {
        total_bytes += std::fs::metadata(dir.join(shard_file(s)))?.len();
    }
    Ok(SaveReport {
        generations,
        total_bytes,
    })
}

/// Reassembles a server from `dir`: router + shard files (each digest-
/// verified, loaded through mmap when `use_mmap`), then WAL replay
/// batch-by-batch through the ordinary `apply_deltas` pipeline. Shard
/// count and partition key come from the router file — the `config`
/// argument supplies everything runtime-only (build recipe, fault
/// knobs, queue size, coalescing).
pub fn load_server(
    dir: &Path,
    mut config: ServeConfig,
    use_mmap: bool,
) -> Result<(ShardedPqsDa, LoadReport), SnapError> {
    let (router, shards, key, router_info) = load_router(&dir.join(ROUTER_FILE))?;
    config.shards =
        usize::try_from(shards).map_err(|_| SnapError::BadLayout("shard count exceeds usize"))?;
    if config.shards == 0 {
        return Err(SnapError::BadLayout("router file declares zero shards"));
    }
    config.key = key_from_code(key)?;

    let mut snapshots = Vec::with_capacity(config.shards);
    let mut infos = Vec::with_capacity(config.shards);
    for s in 0..config.shards {
        let (engine, meta, info) =
            load_engine(&dir.join(shard_file(s)), config.build.config, use_mmap)?;
        if meta.shard != s as u64 {
            return Err(SnapError::BadLayout(
                "shard file numbered for another shard",
            ));
        }
        snapshots.push(ShardSnapshot {
            engine,
            tag: ShardTag {
                shard: s,
                generation: meta.generation,
                graph_digest: meta.graph_digest,
                profile_digest: meta.profile_digest,
            },
        });
        infos.push(info);
    }
    let server = ShardedPqsDa::from_snapshots(router, snapshots, config);

    // Replay the post-snapshot suffix batch-by-batch, reproducing the
    // original drain boundaries (each WAL frame was one apply cycle).
    let replay = WalReader::replay(&dir.join(WAL_FILE))?;
    let mut entries_replayed = 0;
    for batch in &replay.batches {
        for e in batch {
            entries_replayed += 1;
            // The queue is freshly built with the configured capacity;
            // a WAL batch that was once accepted must be re-accepted.
            assert!(server.ingest(e.clone()), "WAL replay overran the queue");
        }
        server.apply_deltas();
    }
    Ok((
        server,
        LoadReport {
            shards: infos,
            router: router_info,
            wal_batches_replayed: replay.batches.len(),
            wal_entries_replayed: entries_replayed,
            wal_dropped_bytes: replay.dropped_bytes,
        },
    ))
}

/// What one [`Snapshotter::commit`] did beyond the swap itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitReport {
    /// The underlying `apply_deltas` report.
    pub swap: SwapReport,
    /// The WAL batch id the drained entries were logged as (`None` when
    /// nothing was drained).
    pub wal_batch: Option<u64>,
    /// Whether this commit crossed the policy threshold and wrote a
    /// fresh full snapshot (which also reset the WAL).
    pub saved_snapshot: bool,
}

/// The background snapshot policy: every delta batch is WAL-logged, and
/// every `every_entries` applied entries the whole server is re-saved
/// (atomic rename) and the WAL reset — bounding both restart replay
/// work and WAL growth.
pub struct Snapshotter {
    dir: PathBuf,
    every_entries: usize,
    wal: WalWriter,
    applied_since_save: usize,
}

impl Snapshotter {
    /// Saves an initial full snapshot of `server` into `dir` and returns
    /// a snapshotter whose WAL continues from that cut.
    pub fn create(
        server: &ShardedPqsDa,
        dir: &Path,
        every_entries: usize,
    ) -> Result<Self, SnapError> {
        save_server(server, dir)?;
        // `save_server` reset the WAL; reopen it as ours.
        let replay = WalReader::replay(&dir.join(WAL_FILE))?;
        let wal = WalWriter::resume(&dir.join(WAL_FILE), &replay)?;
        Ok(Snapshotter {
            dir: dir.to_path_buf(),
            every_entries: every_entries.max(1),
            wal,
            applied_since_save: 0,
        })
    }

    /// Resumes after [`load_server`]: reopens the WAL at its valid
    /// prefix (truncating any torn tail) so new batches append after the
    /// replayed ones.
    pub fn resume(dir: &Path, every_entries: usize) -> Result<Self, SnapError> {
        let replay = WalReader::replay(&dir.join(WAL_FILE))?;
        let applied = replay.batches.iter().map(Vec::len).sum();
        let wal = WalWriter::resume(&dir.join(WAL_FILE), &replay)?;
        Ok(Snapshotter {
            dir: dir.to_path_buf(),
            every_entries: every_entries.max(1),
            wal,
            applied_since_save: applied,
        })
    }

    /// One write cycle: drain + apply the queued deltas, append the
    /// drained batch to the WAL, and — once `every_entries` entries have
    /// accumulated since the last full save — write a fresh snapshot and
    /// reset the WAL.
    pub fn commit(&mut self, server: &ShardedPqsDa) -> Result<CommitReport, SnapError> {
        let swap = server.apply_deltas();
        let wal_batch = if swap.drained_entries.is_empty() {
            None
        } else {
            let id = self.wal.append(&swap.drained_entries)?;
            self.applied_since_save += swap.drained_entries.len();
            Some(id)
        };
        let saved_snapshot = self.applied_since_save >= self.every_entries;
        if saved_snapshot {
            save_server(server, &self.dir)?;
            let replay = WalReader::replay(&self.dir.join(WAL_FILE))?;
            self.wal = WalWriter::resume(&self.dir.join(WAL_FILE), &replay)?;
            self.applied_since_save = 0;
        }
        Ok(CommitReport {
            swap,
            wal_batch,
            saved_snapshot,
        })
    }

    /// Entries applied (and WAL-logged) since the last full save.
    pub fn applied_since_save(&self) -> usize {
        self.applied_since_save
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
