//! Snapshot-and-swap reloads: immutable shard snapshots behind an
//! `ArcSwap`-style cell, each stamped with a generation and content
//! digests so readers can prove they never saw a torn graph+profile pair.
//!
//! The swap protocol:
//!
//! 1. the writer builds a complete new [`ShardSnapshot`] off to the side
//!    (graph, profiles, caches — nothing shared with the live one),
//! 2. computes its digests and **registers the tag** with the server,
//! 3. publishes the snapshot with one pointer store.
//!
//! A reader's whole request runs against the one `Arc` it loaded, so the
//! invariant "every response is answered by exactly one registered
//! generation" holds by construction; the soak test checks it by echoing
//! each response's tag against the registered set.

use pqsda::PqsDa;
use std::sync::Arc;

/// The identity of one published shard snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardTag {
    /// Which shard this snapshot serves.
    pub shard: usize,
    /// Monotone per-shard generation counter (0 = the initial build).
    pub generation: u64,
    /// [`pqsda_graph::multi::MultiBipartite::digest`] of the snapshot's graph.
    pub graph_digest: u64,
    /// [`pqsda::Personalizer::digest`] of the profile store (0 = none).
    pub profile_digest: u64,
}

/// One immutable generation of one shard: a full engine plus its tag.
pub struct ShardSnapshot {
    /// The engine answering requests for this generation.
    pub engine: PqsDa,
    /// The snapshot's registered identity.
    pub tag: ShardTag,
}

impl ShardSnapshot {
    /// Stamps an engine with its shard/generation identity, computing the
    /// content digests from the engine itself.
    pub fn stamp(engine: PqsDa, shard: usize, generation: u64) -> Self {
        let tag = ShardTag {
            shard,
            generation,
            graph_digest: engine.multi().digest(),
            profile_digest: engine.personalizer().map_or(0, |p| p.digest()),
        };
        ShardSnapshot { engine, tag }
    }

    /// Pre-publish validation gate: recomputes the engine's content
    /// digests and checks them against the stamped tag. A mismatch means
    /// the snapshot was corrupted between stamping and publication (or a
    /// build produced something other than what it claimed) — the writer
    /// must roll the swap back instead of publishing.
    pub fn verify(&self) -> bool {
        self.tag.graph_digest == self.engine.multi().digest()
            && self.tag.profile_digest == self.engine.personalizer().map_or(0, |p| p.digest())
    }
}

/// An `ArcSwap`-style publication cell (the no-new-deps substitute): a
/// `parking_lot::RwLock<Arc<T>>` where readers hold the lock only long
/// enough to clone the `Arc` and writers only long enough to store a
/// pointer. Readers never observe a partially-built value — the `Arc` is
/// complete before [`Swap::store`] — and in-flight readers keep the old
/// generation alive through their clone until they drop it.
pub struct Swap<T> {
    slot: parking_lot::RwLock<Arc<T>>,
}

impl<T> Swap<T> {
    /// Wraps the initial value.
    pub fn new(value: Arc<T>) -> Self {
        Swap {
            slot: parking_lot::RwLock::new(value),
        }
    }

    /// Loads the current value (a cheap refcount bump; the read lock is
    /// released before this returns).
    pub fn load(&self) -> Arc<T> {
        self.slot.read().clone()
    }

    /// Publishes a new value. Readers that loaded before this keep the old
    /// value alive; readers after see the new one.
    pub fn store(&self, value: Arc<T>) {
        *self.slot.write() = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqsda::EngineBuildOptions;
    use pqsda_querylog::{LogEntry, UserId};

    #[test]
    fn verify_accepts_honest_tags_and_rejects_corrupt_ones() {
        let entries = vec![
            LogEntry::new(UserId(0), "alpha", None, 0),
            LogEntry::new(UserId(1), "beta", None, 1),
        ];
        let engine = PqsDa::build_from_entries(&entries, &EngineBuildOptions::default());
        let mut snap = ShardSnapshot::stamp(engine, 0, 0);
        assert!(snap.verify(), "freshly stamped snapshots must verify");
        snap.tag.graph_digest ^= 1;
        assert!(!snap.verify(), "a flipped graph digest must be caught");
        snap.tag.graph_digest ^= 1;
        snap.tag.profile_digest ^= 1;
        assert!(!snap.verify(), "a flipped profile digest must be caught");
    }

    #[test]
    fn load_sees_latest_store_and_old_arcs_survive() {
        let cell = Swap::new(Arc::new(1u64));
        let old = cell.load();
        cell.store(Arc::new(2u64));
        assert_eq!(*cell.load(), 2);
        // The pre-swap reader still holds a consistent old generation.
        assert_eq!(*old, 1);
    }

    #[test]
    fn concurrent_readers_always_see_a_whole_value() {
        // Publish (n, n) pairs; readers must never see a mixed pair.
        let cell = Arc::new(Swap::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let v = cell.load();
                        assert_eq!(v.0, v.1, "torn read");
                    }
                });
            }
            for n in 1..=500u64 {
                cell.store(Arc::new((n, n)));
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let last = cell.load();
        assert_eq!(*last, (500, 500));
    }
}
