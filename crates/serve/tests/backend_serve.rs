//! Backend selection through the serving layer.
//!
//! The `backend` field on [`SuggestRequest`] must flow intact through
//! scatter-gather, shard-local request translation, and the threaded
//! batch path: with one shard every backend's reply is bit-identical to
//! the plain engine's, the default backend stays bit-identical at any
//! shard count to its own single-threaded run, and BiRank remains
//! deterministic across shard × thread combinations.

use pqsda::{EngineBuildOptions, PqsDa};
use pqsda_baselines::{Backend, SuggestRequest};
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::QueryLog;
use pqsda_serve::{ServeConfig, ShardedPqsDa};
use proptest::prelude::*;

/// Anonymous, contextual and personalized requests, all under `backend`.
fn request_mix(log: &QueryLog, backend: Backend) -> Vec<SuggestRequest> {
    let records = log.records();
    let mut reqs = Vec::new();
    for (i, r) in records.iter().enumerate().step_by(records.len() / 10 + 1) {
        let mut req = SuggestRequest::simple(r.query, 1 + i % 8)
            .for_user(r.user)
            .with_backend(backend);
        if i > 0 {
            let prev = &records[i - 1];
            req = req.with_context(vec![prev.query], vec![prev.timestamp], r.timestamp);
        }
        reqs.push(req);
        reqs.push(SuggestRequest::simple(r.query, 5).with_backend(backend));
    }
    reqs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// N = 1 serving matches the plain engine bit for bit under EVERY
    /// backend — the request's backend survives the shard-local
    /// translation (`shard_probe` copies it) and the reply path.
    #[test]
    fn one_shard_matches_plain_engine_per_backend(seed in 0u64..400) {
        let s = generate(&SynthConfig::tiny(seed));
        let entries = s.log.entries();
        let build = EngineBuildOptions::default();
        let plain = PqsDa::build_from_entries(&entries, &build);
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig { shards: 1, build, ..ServeConfig::default() },
        );
        for backend in Backend::ALL {
            let reqs = request_mix(plain.log(), backend);
            let expected = plain.suggest_many(&reqs);
            for (reply, want) in server.suggest_many(&reqs).iter().zip(&expected) {
                prop_assert_eq!(&reply.ranked(), want, "backend {:?}", backend);
            }
        }
    }

    /// Shard-count × thread-count determinism: for each backend and each
    /// N ∈ {1, 2, 4}, every thread count reproduces that topology's
    /// single-threaded reply exactly. (Replies differ *across* shard
    /// counts — partitions see different subgraphs — but never across
    /// threads, and never between repeat runs.)
    #[test]
    fn backends_are_deterministic_across_shards_and_threads(seed in 0u64..400) {
        let s = generate(&SynthConfig::tiny(seed));
        let entries = s.log.entries();
        let build = EngineBuildOptions::default();
        let router = PqsDa::build_from_entries(&entries, &build);
        for backend in [Backend::Eq15, Backend::BiRank] {
            let reqs = request_mix(router.log(), backend);
            for shards in [1usize, 2, 4] {
                let server = ShardedPqsDa::build(
                    &entries,
                    ServeConfig { shards, build, ..ServeConfig::default() },
                );
                let baseline: Vec<Vec<_>> = server
                    .suggest_many_with_threads(&reqs, 1)
                    .iter()
                    .map(|r| r.ranked())
                    .collect();
                for threads in [2usize, 4] {
                    let got: Vec<Vec<_>> = server
                        .suggest_many_with_threads(&reqs, threads)
                        .iter()
                        .map(|r| r.ranked())
                        .collect();
                    prop_assert_eq!(
                        &got, &baseline,
                        "backend {:?} shards {} threads {}", backend, shards, threads
                    );
                }
            }
        }
    }
}

#[test]
fn backend_requests_coalesce_only_with_their_own_kind() {
    // Coalescing on: concurrent identical requests share a leader reply,
    // but the same request under a different backend computes its own.
    let s = generate(&SynthConfig::tiny(7));
    let entries = s.log.entries();
    let server = ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: 2,
            coalesce: true,
            ..ServeConfig::default()
        },
    );
    let q = s.log.records()[0].query;
    let eq15 = SuggestRequest::simple(q, 5);
    let birank = SuggestRequest::simple(q, 5).with_backend(Backend::BiRank);
    // Interleave the two kinds; each reply must match its backend's own
    // serial answer regardless of what was in flight.
    let want_eq15 = server.suggest(&eq15).ranked();
    let want_birank = server.suggest(&birank).ranked();
    let mix: Vec<SuggestRequest> = (0..12)
        .map(|i| {
            if i % 2 == 0 {
                eq15.clone()
            } else {
                birank.clone()
            }
        })
        .collect();
    for (i, reply) in server.suggest_many_with_threads(&mix, 4).iter().enumerate() {
        let want = if i % 2 == 0 { &want_eq15 } else { &want_birank };
        assert_eq!(&reply.ranked(), want, "request {i}");
    }
}
