//! Chaos soak: reader threads hammer a fault-injected server (seeded
//! panics, errors, latency spikes; explicit double-replica panics; one
//! corrupt-digest swap) and every reply must still be *honest*:
//!
//! - **no request errors out** — every `suggest` call returns a reply;
//! - **full coverage ⇒ bit-identical** — a reply covering all shards
//!   equals the healthy twin server's reply exactly, scores included;
//! - **degraded ⇒ subset-consistent** — a partial reply equals the
//!   healthy merge over precisely the shards whose tags it carries;
//! - **corrupt swaps roll back** — the poisoned publication leaves every
//!   generation untouched and is counted, and the parked batch retries
//!   cleanly once the plan is cleared.

use pqsda_baselines::SuggestRequest;
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::{LogEntry, QueryId, UserId};
use pqsda_serve::{
    ChaosProfile, Coverage, FaultConfig, FaultKind, FaultPlan, PartitionKey, ServeConfig,
    ShardedPqsDa,
};
use std::collections::HashSet;
use std::sync::Arc;

const SHARDS: usize = 4;
const READERS: usize = 4;
const REQUESTS_PER_READER: usize = 40;
/// The request whose probes panic on *both* replicas of every shard —
/// guarantees at least one fully degraded reply per run.
const DOOMED_REQUEST: u64 = 7;

fn chaos_plan() -> FaultPlan {
    let mut plan = FaultPlan::seeded(
        0xC4A0_5EED,
        ChaosProfile {
            panic_permille: 60,
            error_permille: 40,
            latency_permille: 12,
            latency_ms: 600,
        },
    )
    .with_corrupt_swap(0);
    for shard in 0..SHARDS {
        for replica in 0..2 {
            plan = plan.with_probe_fault(DOOMED_REQUEST, shard, replica, FaultKind::Panic);
        }
    }
    plan
}

#[test]
fn chaos_soak_replies_stay_honest_under_injected_faults() {
    let s = generate(&SynthConfig::tiny(31));
    let entries = s.log.entries();
    let config = ServeConfig {
        shards: SHARDS,
        key: PartitionKey::User,
        fault: FaultConfig {
            replicas: 2,
            budget_ms: 400,
            hedge_ms: 4,
            breaker_threshold: 3,
            breaker_cooldown: 4,
            ..FaultConfig::default()
        },
        ..ServeConfig::default()
    };
    let chaotic = Arc::new(ShardedPqsDa::build(&entries, config));
    // The healthy twin: same entries, same partitioning, no faults. The
    // chaotic server's snapshots must stay equal to it for the whole soak
    // because its only swap attempt is corrupted and rolls back.
    let healthy = Arc::new(ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: SHARDS,
            key: PartitionKey::User,
            ..ServeConfig::default()
        },
    ));
    chaotic.set_fault_plan(Some(chaos_plan()));

    let queries: Vec<QueryId> = s.log.records().iter().step_by(5).map(|r| r.query).collect();
    // Healthy reference replies, computed up front (they never change).
    let reference: Vec<Vec<(QueryId, f64)>> = queries
        .iter()
        .map(|&q| healthy.suggest(&SuggestRequest::simple(q, 5)).suggestions)
        .collect();

    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..READERS)
            .map(|t| {
                let chaotic = Arc::clone(&chaotic);
                let healthy = Arc::clone(&healthy);
                let queries = &queries;
                let reference = &reference;
                scope.spawn(move || {
                    let mut high_water = [0u64; SHARDS];
                    let mut degraded_seen = 0u64;
                    let mut observed_tags = HashSet::new();
                    for i in 0..REQUESTS_PER_READER {
                        let qi = (t + i * READERS) % queries.len();
                        let req = SuggestRequest::simple(queries[qi], 5);
                        let reply = chaotic.suggest(&req);
                        // Well-formed, whatever the faults did.
                        assert!(reply.suggestions.len() <= 5);
                        let distinct: HashSet<_> = reply.ranked().into_iter().collect();
                        assert_eq!(distinct.len(), reply.suggestions.len(), "dup suggestion");
                        assert_eq!(reply.coverage.consulted, SHARDS);
                        assert_eq!(reply.coverage.answered, reply.tags.len());
                        let mut shards_in_reply = HashSet::new();
                        for tag in &reply.tags {
                            assert!(
                                shards_in_reply.insert(tag.shard),
                                "reply mixed two snapshots of shard {}",
                                tag.shard
                            );
                            assert!(
                                tag.generation >= high_water[tag.shard],
                                "shard {} went backwards",
                                tag.shard
                            );
                            high_water[tag.shard] = tag.generation;
                            observed_tags.insert(*tag);
                        }
                        if reply.coverage == Coverage::full(SHARDS) {
                            // Full coverage: bit-identical to the healthy
                            // engine, scores included.
                            assert_eq!(
                                reply.suggestions, reference[qi],
                                "full-coverage reply diverged from healthy engine"
                            );
                        } else {
                            degraded_seen += 1;
                            // Degraded: exactly the healthy merge over the
                            // shards that answered (the tags say which).
                            let answered: Vec<usize> =
                                reply.tags.iter().map(|tag| tag.shard).collect();
                            let subset = healthy.suggest_on(&req, &answered);
                            assert_eq!(
                                reply.suggestions, subset.suggestions,
                                "degraded reply is not subset-consistent (shards {answered:?})"
                            );
                            assert!(reply.coverage.fraction() < 1.0);
                        }
                    }
                    (degraded_seen, observed_tags)
                })
            })
            .collect();

        // Writer, mid-soak: one user's chronological batch → exactly one
        // shard publication attempt (attempt 0), which the plan corrupts.
        // The swap must roll back: generations untouched, batch parked.
        let t0 = 1 + entries.iter().map(|e| e.timestamp).max().unwrap();
        let chaos_user = UserId(4242);
        for j in 0..5u64 {
            assert!(chaotic.ingest(LogEntry::new(
                chaos_user,
                format!("chaos delta {j}"),
                Some("chaos.example"),
                t0 + j,
            )));
        }
        let poisoned = chaotic.apply_deltas();
        let victim = pqsda_serve::route_user(chaos_user, SHARDS);
        assert_eq!(poisoned.drained, 5);
        assert_eq!(
            poisoned.rolled_back,
            vec![victim],
            "corrupt swap must roll back"
        );
        assert!(poisoned.rebuilt.is_empty());
        assert_eq!(
            chaotic.stats().generations,
            vec![0; SHARDS],
            "rollback must leave every generation untouched"
        );

        let mut total_degraded = 0u64;
        let registered: HashSet<_> = chaotic.registered_tags().into_iter().collect();
        for r in readers {
            let (degraded, observed) = r.join().expect("reader panicked");
            total_degraded += degraded;
            for tag in observed {
                assert!(registered.contains(&tag), "unregistered tag {tag:?}");
            }
        }
        // Request DOOMED_REQUEST panicked on both replicas of every
        // shard, so at least one reply was degraded.
        assert!(total_degraded >= 1, "chaos produced no degraded replies");
    });

    let stats = chaotic.stats();
    assert!(stats.fault.panics > 0, "injected panics were not isolated");
    assert!(
        stats.fault.hedges + stats.fault.failovers > 0,
        "no backup probes fired: {:?}",
        stats.fault
    );
    assert!(stats.fault.degraded >= 1);
    assert_eq!(stats.fault.rollbacks, 1);
    assert_eq!(stats.total_swaps, 0, "the only swap attempt was corrupt");

    // Clear the plan: the parked batch retries and publishes cleanly.
    chaotic.set_fault_plan(None);
    let retry = chaotic.apply_deltas();
    assert_eq!(retry.retried, 5);
    let victim = pqsda_serve::route_user(UserId(4242), SHARDS);
    assert_eq!(retry.rebuilt, vec![victim]);
    assert_eq!(
        retry.incremental,
        vec![victim],
        "chronological batch goes warm"
    );
    assert_eq!(chaotic.stats().generations[victim], 1);
    // The delta is now fully servable, with full coverage.
    let nq = chaotic.find_query("chaos delta 0").expect("retried delta");
    let reply = chaotic.suggest(&SuggestRequest::simple(nq, 3));
    assert_eq!(reply.coverage, Coverage::full(SHARDS));
}
