//! Server-level routing contracts: adding a shard to the ring must only
//! relocate the ~1/(N+1) of queries the new shard claims, and relocated
//! queries must land exactly on the new shard — the property that makes
//! a resize an incremental migration instead of a full reshuffle.
//! (The ring itself is proptested in `router`; this pins the contract at
//! the `ShardedPqsDa::home_shard_of_query` surface serving depends on.)

use pqsda_querylog::{LogEntry, UserId};
use pqsda_serve::{PartitionKey, ServeConfig, ShardedPqsDa};

const PROBES: usize = 2000;

fn tiny_server(shards: usize) -> ShardedPqsDa {
    let entries: Vec<LogEntry> = (0..8)
        .map(|i| LogEntry::new(UserId(i % 3), format!("seed query {i}"), None, u64::from(i)))
        .collect();
    ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards,
            key: PartitionKey::Query,
            ..ServeConfig::default()
        },
    )
}

#[test]
fn ring_resize_moves_few_queries_and_only_onto_the_new_shard() {
    let before = tiny_server(3);
    let after = tiny_server(4);
    let mut moved = 0usize;
    for i in 0..PROBES {
        let text = format!("resize stability probe {i} q{}", i * 37 % 101);
        let old_home = before.home_shard_of_query(&text);
        let new_home = after.home_shard_of_query(&text);
        assert!(old_home < 3 && new_home < 4, "home shard out of range");
        if old_home != new_home {
            moved += 1;
            assert_eq!(
                new_home, 3,
                "a resize may only move queries onto the new shard ({text:?} moved {old_home}→{new_home})"
            );
        }
    }
    // Expect ~1/(N+1) = 1/4 of queries to move; allow generous slack for
    // vnode placement variance but fail on a reshuffle (or on nothing
    // moving, which would mean the new shard takes no load).
    let expected = PROBES / 4;
    assert!(
        moved > expected / 3 && moved < expected * 2,
        "moved {moved} of {PROBES} queries on a 3→4 resize (expected ≈{expected})"
    );
}

#[test]
fn home_shard_is_stable_across_identical_servers_and_rebuilds() {
    let a = tiny_server(4);
    let b = tiny_server(4);
    for i in 0..PROBES / 4 {
        let text = format!("stability probe {i}");
        assert_eq!(a.home_shard_of_query(&text), b.home_shard_of_query(&text));
    }
}
