//! Sharding is a deployment decision, not a quality trade-off: with one
//! shard the router-merged output must be **bit-identical** to the plain
//! single-node engine, and routing must place every user and query on
//! exactly one stable shard for any shard count.

use pqsda::{EngineBuildOptions, PqsDa, ProfileTrainOptions};
use pqsda_baselines::SuggestRequest;
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::{text, QueryLog};
use pqsda_serve::{
    partition_entries, route_query, route_user, PartitionKey, ServeConfig, ShardedPqsDa,
};
use proptest::prelude::*;

/// A request mix exercising every code path: anonymous, contextual,
/// personalized, k = 0 and out-of-range ids.
fn request_mix(log: &QueryLog) -> Vec<SuggestRequest> {
    let records = log.records();
    let mut reqs = Vec::new();
    for (i, r) in records.iter().enumerate().step_by(records.len() / 12 + 1) {
        let mut req = SuggestRequest::simple(r.query, 1 + i % 8).for_user(r.user);
        if i > 0 {
            let prev = &records[i - 1];
            req = req.with_context(vec![prev.query], vec![prev.timestamp], r.timestamp);
        }
        reqs.push(req);
        reqs.push(SuggestRequest::simple(r.query, 5)); // anonymous
    }
    reqs.push(SuggestRequest::simple(records[0].query, 0)); // k = 0
    reqs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N = 1 sharded serving reproduces `PqsDa::suggest_many` bit for bit,
    /// under both partition keys.
    #[test]
    fn one_shard_matches_plain_engine(seed in 0u64..400) {
        let s = generate(&SynthConfig::tiny(seed));
        let entries = s.log.entries();
        let build = EngineBuildOptions::default();
        let plain = PqsDa::build_from_entries(&entries, &build);
        let reqs = request_mix(plain.log());
        let expected = plain.suggest_many(&reqs);
        for key in [PartitionKey::User, PartitionKey::Query] {
            let server = ShardedPqsDa::build(
                &entries,
                ServeConfig { shards: 1, key, build, ..ServeConfig::default() },
            );
            let replies = server.suggest_many(&reqs);
            prop_assert_eq!(replies.len(), expected.len());
            for (reply, want) in replies.iter().zip(&expected) {
                prop_assert_eq!(&reply.ranked(), want, "key {:?}", key);
            }
        }
    }

    /// Every user and every query routes to exactly one in-range shard,
    /// stably, for N ∈ {1, 2, 4}; partitioning the raw entries is
    /// exhaustive and disjoint under both keys.
    #[test]
    fn routing_is_a_stable_single_assignment(seed in 0u64..400) {
        let s = generate(&SynthConfig::tiny(seed));
        let entries = s.log.entries();
        for shards in [1usize, 2, 4] {
            for r in s.log.records() {
                let su = route_user(r.user, shards);
                prop_assert!(su < shards);
                prop_assert_eq!(su, route_user(r.user, shards));
                let sq = route_query(&s.log, r.query, shards);
                prop_assert!(sq < shards);
                prop_assert_eq!(sq, route_query(&s.log, r.query, shards));
            }
            for key in [PartitionKey::User, PartitionKey::Query] {
                let parts = partition_entries(&entries, key, shards);
                prop_assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), entries.len());
                for (shard, part) in parts.iter().enumerate() {
                    for e in part {
                        let home = match key {
                            PartitionKey::User => route_user(e.user, shards),
                            PartitionKey::Query => {
                                pqsda_serve::route_query_text(&text::normalize(&e.query), shards)
                            }
                        };
                        prop_assert_eq!(home, shard, "entry in a foreign shard");
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The N = 1 identity survives personalization: the shard trains the
    /// same UPM from the same partition, so personalized rankings match too.
    #[test]
    fn one_shard_matches_plain_engine_personalized(seed in 0u64..100) {
        let s = generate(&SynthConfig::tiny(seed));
        let entries = s.log.entries();
        let build = EngineBuildOptions {
            personalize: Some(ProfileTrainOptions {
                num_topics: 5,
                iterations: 15,
                hyper_every: 0,
                ..ProfileTrainOptions::default()
            }),
            ..EngineBuildOptions::default()
        };
        let plain = PqsDa::build_from_entries(&entries, &build);
        let reqs = request_mix(plain.log());
        let expected = plain.suggest_many(&reqs);
        let server = ShardedPqsDa::build(
            &entries,
            ServeConfig { shards: 1, build, ..ServeConfig::default() },
        );
        for (reply, want) in server.suggest_many(&reqs).iter().zip(&expected) {
            prop_assert_eq!(&reply.ranked(), want);
        }
    }
}

/// Multi-shard serving stays well-formed (ids valid, length ≤ k, no
/// duplicates, input excluded) even though rankings legitimately differ
/// from the unsharded engine.
#[test]
fn multi_shard_replies_are_well_formed() {
    let s = generate(&SynthConfig::tiny(7));
    let entries = s.log.entries();
    for key in [PartitionKey::User, PartitionKey::Query] {
        for shards in [2usize, 4] {
            let server = ShardedPqsDa::build(
                &entries,
                ServeConfig {
                    shards,
                    key,
                    ..ServeConfig::default()
                },
            );
            for r in s.log.records().iter().step_by(9) {
                let req = SuggestRequest::simple(r.query, 6).for_user(r.user);
                let reply = server.suggest(&req);
                assert!(reply.suggestions.len() <= 6);
                let mut seen = std::collections::HashSet::new();
                for &(q, score) in &reply.suggestions {
                    assert!(seen.insert(q), "duplicate suggestion");
                    assert_ne!(q, r.query, "input query suggested back");
                    assert!(score.is_finite());
                    assert!(server.query_text(q).is_some(), "unknown global id");
                }
            }
        }
    }
}
