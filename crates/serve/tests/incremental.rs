//! Incremental updates are an optimization, never a semantic fork: a
//! server that ingests the tail of a log as a delta and applies it
//! incrementally must answer **identically** to a server cold-built from
//! the whole log — for any split point, any shard count and any serving
//! thread count. The per-shard engines are bit-identical by the engine
//! layer's own property tests; this suite pins the serving layer on top
//! (router growth, partitioning, snapshot swap, rank-stratified merge).

use pqsda_baselines::SuggestRequest;
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::{LogEntry, QueryLog};
use pqsda_serve::{PartitionKey, ServeConfig, ShardedPqsDa, SwapReport};
use proptest::prelude::*;

/// A request mix over the full log: anonymous, personalized and
/// contextual lookups, including queries that only exist in the tail.
fn request_mix(log: &QueryLog) -> Vec<SuggestRequest> {
    let records = log.records();
    let mut reqs = Vec::new();
    for (i, r) in records.iter().enumerate().step_by(records.len() / 16 + 1) {
        reqs.push(SuggestRequest::simple(r.query, 1 + i % 6).for_user(r.user));
        reqs.push(SuggestRequest::simple(r.query, 5));
        if i > 0 {
            let prev = &records[i - 1];
            reqs.push(SuggestRequest::simple(r.query, 4).with_context(
                vec![prev.query],
                vec![prev.timestamp],
                r.timestamp,
            ));
        }
    }
    if let Some(last) = records.last() {
        reqs.push(SuggestRequest::simple(last.query, 5)); // tail-only query
    }
    reqs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Build from a prefix, ingest the chronological tail, apply: every
    /// touched shard must take the incremental path, and afterwards the
    /// server must be indistinguishable from a cold build over the full
    /// log — same global ids, same rankings, same scores — at shard
    /// counts {1, 2, 4} and serving thread counts {1, 2, 4}.
    #[test]
    fn incremental_apply_matches_cold_rebuild(seed in 0u64..300, eighths in 3usize..8) {
        let s = generate(&SynthConfig::tiny(seed));
        let entries = s.log.entries();
        let cut = entries.len() * eighths / 8;
        for shards in [1usize, 2, 4] {
            let config = ServeConfig {
                shards,
                key: PartitionKey::User,
                ..ServeConfig::default()
            };
            let warm = ShardedPqsDa::build(&entries[..cut], config);
            for e in &entries[cut..] {
                prop_assert!(warm.ingest(e.clone()), "queue rejected under capacity");
            }
            let report = warm.apply_deltas();
            prop_assert_eq!(report.drained, entries.len() - cut);
            // `entries()` is chronological, so no shard may fall back cold.
            prop_assert_eq!(&report.incremental, &report.rebuilt);
            prop_assert!(!report.rebuilt.is_empty());

            let cold = ShardedPqsDa::build(&entries, config);
            // The warm router appended the tail in timestamp order — the
            // same order the cold build interns — so the two servers
            // share one global id space and replies compare directly.
            prop_assert_eq!(
                warm.router_log().num_queries(),
                cold.router_log().num_queries()
            );
            let reqs = request_mix(&cold.router_log());
            for threads in [1usize, 2, 4] {
                let got = warm.suggest_many_with_threads(&reqs, threads);
                let want = cold.suggest_many_with_threads(&reqs, threads);
                prop_assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(
                        &g.suggestions,
                        &w.suggestions,
                        "shards {} threads {}",
                        shards,
                        threads
                    );
                }
            }
        }
    }
}

/// A batch older than a shard's newest record cannot apply incrementally;
/// the shard must fall back to a cold rebuild and still serve the entry.
#[test]
fn late_batch_falls_back_to_cold_rebuild() {
    let s = generate(&SynthConfig::tiny(91));
    let entries = s.log.entries();
    let server = ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: 2,
            key: PartitionKey::User,
            ..ServeConfig::default()
        },
    );
    // Timestamp 0 predates everything: chronologically invalid.
    let user = entries[0].user;
    assert!(server.ingest(LogEntry::new(user, "late straggler", Some("l.com"), 0)));
    let report = server.apply_deltas();
    assert_eq!(report.drained, 1);
    assert_eq!(report.rebuilt.len(), 1);
    assert!(
        report.incremental.is_empty(),
        "stale batch must rebuild cold"
    );
    assert!(server.find_query("late straggler").is_some());
}

/// `SwapReport::default()` stays the no-op report for an empty queue.
#[test]
fn empty_apply_is_a_noop_report() {
    let s = generate(&SynthConfig::tiny(5));
    let server = ShardedPqsDa::build(
        &s.log.entries(),
        ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        },
    );
    assert_eq!(server.apply_deltas(), SwapReport::default());
}
