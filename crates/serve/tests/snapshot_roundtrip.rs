//! Snapshot-store integration: a server saved to disk and reassembled
//! from it must be indistinguishable from the original — bit-identical
//! replies, same tags — across shard counts, with WAL replay covering
//! the post-snapshot suffix, and every corruption failing closed.

use pqsda_baselines::SuggestRequest;
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::{LogEntry, UserId};
use pqsda_serve::store::{load_server, save_server, shard_file, Snapshotter};
use pqsda_serve::{ServeConfig, ServeReply, ShardedPqsDa};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pqsda-snap-rt-{}-{name}", std::process::id()))
}

fn build_server(seed: u64, shards: usize) -> (ShardedPqsDa, Vec<SuggestRequest>) {
    let synth = generate(&SynthConfig::tiny(seed));
    let entries = synth.log.entries();
    let server = ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards,
            ..ServeConfig::default()
        },
    );
    let reqs: Vec<SuggestRequest> = synth
        .log
        .records()
        .iter()
        .step_by(9)
        .map(|r| SuggestRequest::simple(r.query, 8).for_user(r.user))
        .collect();
    (server, reqs)
}

fn assert_replies_equal(a: &ServeReply, b: &ServeReply, what: &str) {
    assert_eq!(a.tags, b.tags, "{what}: tags");
    assert_eq!(a.coverage, b.coverage, "{what}: coverage");
    assert_eq!(
        a.suggestions.len(),
        b.suggestions.len(),
        "{what}: suggestion count"
    );
    for (i, ((qa, sa), (qb, sb))) in a.suggestions.iter().zip(&b.suggestions).enumerate() {
        assert_eq!(qa, qb, "{what}: suggestion {i}");
        assert_eq!(sa.to_bits(), sb.to_bits(), "{what}: score bits at {i}");
    }
}

fn fresh_deltas(server: &ShardedPqsDa, n: usize) -> Vec<LogEntry> {
    let t0 = 1 + server
        .router_log()
        .records()
        .iter()
        .map(|r| r.timestamp)
        .max()
        .unwrap_or(0);
    (0..n)
        .map(|i| {
            LogEntry::new(
                UserId(700 + i as u32),
                format!("snapshot delta {i}"),
                Some("snap.example"),
                t0 + i as u64,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Save → load → every reply bit-identical, across shard counts and
    /// both load paths (mmap and aligned-read fallback), including after
    /// an identical post-load delta batch on both sides.
    #[test]
    fn save_load_roundtrip_is_bit_identical(
        seed in 100u64..104,
        shards_idx in 0usize..3,
    ) {
        let shards = [1usize, 2, 4][shards_idx];
        let dir = tmp_dir(&format!("prop-{seed}-{shards}"));
        let (server, reqs) = build_server(seed, shards);
        let before: Vec<ServeReply> = reqs.iter().map(|r| server.suggest(r)).collect();
        save_server(&server, &dir).expect("save");

        for use_mmap in [true, false] {
            let (loaded, report) =
                load_server(&dir, ServeConfig::default(), use_mmap).expect("load");
            prop_assert_eq!(loaded.config().shards, shards);
            prop_assert_eq!(report.shards.len(), shards);
            prop_assert_eq!(report.wal_batches_replayed, 0);
            for info in &report.shards {
                prop_assert_eq!(info.mapped, use_mmap && cfg!(unix));
                prop_assert!(info.file_len > 0);
            }
            // Tags registered in the loaded server are exactly the live ones.
            prop_assert_eq!(loaded.shard_tags(), server.shard_tags());
            for (req, want) in reqs.iter().zip(&before) {
                assert_replies_equal(&loaded.suggest(req), want, "post-load");
            }
            // The same delta applied to both sides keeps them identical.
            for e in fresh_deltas(&server, 3) {
                prop_assert!(loaded.ingest(e));
            }
            loaded.apply_deltas();
            let twin = {
                let (twin, _) = load_server(&dir, ServeConfig::default(), use_mmap).unwrap();
                for e in fresh_deltas(&server, 3) {
                    prop_assert!(twin.ingest(e));
                }
                twin.apply_deltas();
                twin
            };
            for req in &reqs {
                assert_replies_equal(
                    &loaded.suggest(req),
                    &twin.suggest(req),
                    "post-load delta determinism",
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The snapshotter WAL-logs every applied batch; a restart that loads
/// snapshot + WAL lands exactly where the live server is.
#[test]
fn wal_replay_reaches_the_live_state() {
    let dir = tmp_dir("wal-replay");
    let (server, reqs) = build_server(7, 2);
    // Threshold high enough that no intermediate full save triggers:
    // both batches live only in the WAL.
    let mut snapper = Snapshotter::create(&server, &dir, 1_000_000).expect("create");
    for (b, n) in [4usize, 2].into_iter().enumerate() {
        // fresh_deltas keys off the router's max timestamp, so batch 2
        // lands after batch 1 chronologically.
        for e in fresh_deltas(&server, n) {
            assert!(server.ingest(e));
        }
        let report = snapper.commit(&server).expect("commit");
        assert!(!report.saved_snapshot);
        assert_eq!(report.wal_batch, Some(b as u64));
    }
    assert_eq!(snapper.applied_since_save(), 6);

    let (loaded, report) = load_server(&dir, ServeConfig::default(), true).expect("load");
    assert_eq!(report.wal_batches_replayed, 2);
    assert_eq!(report.wal_entries_replayed, 6);
    assert_eq!(report.wal_dropped_bytes, 0);
    assert_eq!(loaded.shard_tags(), server.shard_tags());
    for req in &reqs {
        assert_replies_equal(&loaded.suggest(req), &server.suggest(req), "wal replay");
    }
    // The replayed deltas are queryable by text in both.
    let q = server
        .find_query("snapshot delta 0")
        .expect("delta interned");
    assert_eq!(loaded.find_query("snapshot delta 0"), Some(q));
    std::fs::remove_dir_all(&dir).ok();
}

/// Crossing the policy threshold writes a fresh snapshot and resets the
/// WAL, so the next restart replays nothing.
#[test]
fn snapshot_policy_resets_the_wal() {
    let dir = tmp_dir("policy");
    let (server, _) = build_server(8, 2);
    let mut snapper = Snapshotter::create(&server, &dir, 3).expect("create");
    for e in fresh_deltas(&server, 4) {
        assert!(server.ingest(e));
    }
    let report = snapper.commit(&server).expect("commit");
    assert!(report.saved_snapshot, "4 applied ≥ threshold 3");
    assert_eq!(snapper.applied_since_save(), 0);
    let (_, load_report) = load_server(&dir, ServeConfig::default(), true).expect("load");
    assert_eq!(load_report.wal_batches_replayed, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A flipped byte in any shard file refuses to load — the server never
/// comes up on corrupt state.
#[test]
fn corrupt_shard_file_fails_closed() {
    let dir = tmp_dir("corrupt");
    let (server, _) = build_server(9, 2);
    save_server(&server, &dir).expect("save");
    let path = dir.join(shard_file(0));
    let clean = std::fs::read(&path).unwrap();
    for frac in [3, 5, 7] {
        let at = clean.len() / frac;
        let mut corrupt = clean.clone();
        corrupt[at] ^= 0x10;
        if corrupt == clean {
            continue;
        }
        std::fs::write(&path, &corrupt).unwrap();
        assert!(
            load_server(&dir, ServeConfig::default(), true).is_err(),
            "flip at {at} loaded anyway"
        );
    }
    std::fs::remove_file(&path).unwrap();
    assert!(
        load_server(&dir, ServeConfig::default(), true).is_err(),
        "missing shard file must fail"
    );
    std::fs::remove_dir_all(&dir).ok();
}
