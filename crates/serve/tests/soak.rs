//! Concurrency soak: reader threads hammer `suggest` while the writer
//! drives ingestion and snapshot swaps underneath them. Checks the swap
//! protocol's externally visible invariants:
//!
//! - **no torn reads** — every tag a response carries was registered
//!   before its snapshot went live, and a response never mixes two
//!   generations of the same shard;
//! - **no lost requests** — every reader request gets exactly one reply;
//! - **monotone generations** — a reader never observes a shard going
//!   backwards;
//! - **consistent stats** — swap and queue counters add up afterwards.

use pqsda_baselines::SuggestRequest;
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::{LogEntry, UserId};
use pqsda_serve::{PartitionKey, ServeConfig, ShardedPqsDa};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const READERS: usize = 4;
const SWAPS: usize = 4;

#[test]
fn readers_survive_snapshot_swaps_without_torn_or_lost_reads() {
    let s = generate(&SynthConfig::tiny(23));
    let entries = s.log.entries();
    let server = Arc::new(ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: 2,
            key: PartitionKey::User,
            ..ServeConfig::default()
        },
    ));
    let queries: Vec<_> = s.log.records().iter().step_by(5).map(|r| r.query).collect();

    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let swaps_done = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..READERS)
            .map(|t| {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                let answered = Arc::clone(&answered);
                let queries = &queries;
                scope.spawn(move || {
                    let mut issued = 0u64;
                    let mut replies = 0u64;
                    // Highest generation seen per shard: must never regress.
                    let mut high_water = [0u64; 2];
                    let mut observed_tags = HashSet::new();
                    let mut i = t; // stagger readers across the query list
                    while !stop.load(Ordering::Relaxed) || issued < 50 {
                        let q = queries[i % queries.len()];
                        i += 1;
                        issued += 1;
                        let reply = server.suggest(&SuggestRequest::simple(q, 5));
                        replies += 1;
                        let mut shards_in_reply = HashSet::new();
                        for tag in &reply.tags {
                            // One generation of each shard per response.
                            assert!(
                                shards_in_reply.insert(tag.shard),
                                "response mixed two snapshots of shard {}",
                                tag.shard
                            );
                            assert!(
                                tag.generation >= high_water[tag.shard],
                                "shard {} went backwards: gen {} after {}",
                                tag.shard,
                                tag.generation,
                                high_water[tag.shard]
                            );
                            high_water[tag.shard] = high_water[tag.shard].max(tag.generation);
                            observed_tags.insert(*tag);
                        }
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                    assert_eq!(issued, replies, "a request went unanswered");
                    observed_tags
                })
            })
            .collect();

        // Writer: feed fresh entries and swap SWAPS times under the
        // readers. Half of each batch comes from users the base log
        // already knows, so the incremental path updates populated
        // engines (profiles, caches) and not just near-empty partitions.
        let known_users: Vec<UserId> = s.log.records().iter().map(|r| r.user).collect();
        // Deltas start past the base log's end so every batch is
        // chronological — the contract the incremental path needs.
        let t0 = 1 + entries.iter().map(|e| e.timestamp).max().unwrap();
        let mut swaps = 0usize;
        let mut incremental_swaps = 0usize;
        for round in 0..SWAPS {
            for j in 0..6u64 {
                let user = if j % 2 == 0 {
                    known_users[(round * 7 + j as usize) % known_users.len()]
                } else {
                    UserId(1000 + (round as u32) * 10 + j as u32)
                };
                let entry = LogEntry::new(
                    user,
                    format!("soak query {round} {j}"),
                    Some("soak.example"),
                    t0 + (round as u64) * 1000 + j,
                );
                assert!(server.ingest(entry), "queue rejected under capacity");
            }
            let report = server.apply_deltas();
            assert_eq!(report.drained, 6);
            assert!(!report.rebuilt.is_empty(), "deltas must rebuild a shard");
            for shard in &report.incremental {
                assert!(report.rebuilt.contains(shard), "incremental ⊆ rebuilt");
            }
            swaps += report.rebuilt.len();
            incremental_swaps += report.incremental.len();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        // Every batch is chronological (timestamps only grow), so every
        // swap must have taken the delta path — none fell back cold.
        assert_eq!(
            incremental_swaps, swaps,
            "chronological batches must apply incrementally"
        );

        let registered: HashSet<_> = server.registered_tags().into_iter().collect();
        for r in readers {
            let observed = r.join().expect("reader panicked");
            for tag in observed {
                assert!(
                    registered.contains(&tag),
                    "reader held unregistered tag {tag:?} — torn publication"
                );
            }
        }
        swaps
    });

    assert!(swaps_done >= SWAPS, "expected at least {SWAPS} swaps");
    let stats = server.stats();
    assert_eq!(stats.total_swaps, swaps_done as u64);
    assert_eq!(stats.ingest.accepted, (SWAPS * 6) as u64);
    assert_eq!(stats.ingest.rejected, 0);
    assert_eq!(stats.ingest.depth(), 0, "all deltas were applied");
    assert_eq!(
        stats.generations.iter().sum::<u64>(),
        swaps_done as u64,
        "per-shard generations must account for every swap"
    );
    // The memo caches served real traffic.
    assert!(stats.cache.hits + stats.cache.misses > 0);
    assert!(answered.load(Ordering::Relaxed) >= (READERS * 50) as u64);

    // Post-soak: the ingested queries are fully servable.
    let q = server.find_query("soak query 0 0").expect("ingested query");
    let reply = server.suggest(&SuggestRequest::simple(q, 3));
    assert_eq!(reply.tags.len(), 2);
}
