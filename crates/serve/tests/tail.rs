//! Tail-latency contracts (DESIGN §11): the decayed hedge histograms are
//! deterministic across thread counts, coalesced and admission-controlled
//! replies stay bit-identical to the healthy engine, and every shed
//! request is an explicit rejection with an auditable projection —
//! never a silent drop.

use pqsda_baselines::SuggestRequest;
use pqsda_parallel::Deadline;
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::{LogEntry, QueryId, UserId};
use pqsda_serve::{
    hedge_delay, ChaosProfile, DecayedHistogram, FaultConfig, FaultPlan, HistogramSnapshot,
    IngestOffer, PartitionKey, ServeConfig, ServeOutcome, ShardedPqsDa,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Records `seq` into a fresh histogram from `n` threads, a turnstile
/// preserving the global sample order, and returns everything hedge
/// sizing depends on.
fn record_with_threads(
    n: usize,
    seq: &[Duration],
) -> (HistogramSnapshot, Vec<Option<Duration>>, Duration) {
    let h = DecayedHistogram::default();
    let turn = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..n {
            let h = &h;
            let turn = &turn;
            s.spawn(move || {
                for (i, d) in seq.iter().enumerate() {
                    if i % n != t {
                        continue;
                    }
                    while turn.load(Ordering::Acquire) != i {
                        std::hint::spin_loop();
                    }
                    h.record(*d);
                    turn.store(i + 1, Ordering::Release);
                }
            });
        }
    });
    let quantiles = [0.5, 0.9, 0.99, 0.999]
        .iter()
        .map(|&p| h.quantile(p))
        .collect();
    (h.snapshot(), quantiles, hedge_delay(&h, 2, 0.9))
}

/// Satellite: same request sequence ⇒ identical buckets and hedge delays
/// no matter how many threads recorded it. The decay clock counts
/// requests, not wall time, and ×0.5 is exact in binary floating point,
/// so the histogram's state is a pure function of the sequence.
#[test]
fn histogram_and_hedge_delays_are_identical_at_1_2_4_threads() {
    // A multi-regime sequence long enough to cross several decay periods,
    // ending in a fast regime long enough (6+ periods) for decay to
    // forget the 20 ms middle epoch.
    let seq: Vec<Duration> = (0..2400u64)
        .map(|i| {
            let us = if i < 400 {
                500 + (i * 97) % 3_000
            } else if i < 800 {
                20_000 + (i * 31) % 9_000
            } else {
                1_000 + (i * 13) % 700
            };
            Duration::from_micros(us)
        })
        .collect();
    let single = record_with_threads(1, &seq);
    let double = record_with_threads(2, &seq);
    let quad = record_with_threads(4, &seq);
    assert_eq!(single.0, double.0, "1 vs 2 threads: buckets diverged");
    assert_eq!(single.0, quad.0, "1 vs 4 threads: buckets diverged");
    assert_eq!(single.1, double.1, "quantiles diverged");
    assert_eq!(single.1, quad.1, "quantiles diverged");
    assert_eq!(single.2, double.2, "hedge delay diverged");
    assert_eq!(single.2, quad.2, "hedge delay diverged");
    // The hedge delay reflects the final (fast) regime, not the stale
    // slow one: decay must have forgotten the 20 ms middle epoch.
    assert!(single.2 < Duration::from_millis(3), "delay {:?}", single.2);
}

fn test_requests(server: &ShardedPqsDa, k: usize) -> Vec<SuggestRequest> {
    let n = server.router_log().num_queries().min(12) as u32;
    (0..n)
        .map(|i| SuggestRequest::simple(QueryId(i), k))
        .collect()
}

/// Tentpole contract: with coalescing on, concurrent duplicate requests
/// produce replies bit-identical to a coalescing-free healthy server,
/// and every request is accounted as exactly one of leader / coalesced /
/// fallback.
#[test]
fn coalesced_replies_are_bit_identical_to_the_healthy_engine() {
    let s = generate(&SynthConfig::tiny(47));
    let entries = s.log.entries();
    let coalescing = Arc::new(ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: 2,
            key: PartitionKey::User,
            coalesce: true,
            ..ServeConfig::default()
        },
    ));
    let healthy = ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: 2,
            key: PartitionKey::User,
            ..ServeConfig::default()
        },
    );
    let reqs = test_requests(&coalescing, 5);
    let expected: Vec<_> = reqs.iter().map(|r| healthy.suggest(r)).collect();

    const THREADS: usize = 4;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let coalescing = Arc::clone(&coalescing);
            let reqs = &reqs;
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    for (req, want) in reqs.iter().zip(expected) {
                        let got = coalescing.suggest(req);
                        // Bit-identical: ids AND scores.
                        assert_eq!(got.suggestions, want.suggestions);
                        assert!(!got.coverage.is_degraded());
                    }
                }
            });
        }
    });
    let stats = coalescing.stats();
    let total = (THREADS * ROUNDS * reqs.len()) as u64;
    let c = stats.coalesce;
    assert_eq!(
        c.leaders + c.coalesced + c.fallbacks,
        total,
        "every request is exactly one of leader/coalesced/fallback: {c:?}"
    );
    assert!(c.leaders >= reqs.len() as u64, "each key led at least once");
    assert_eq!(stats.admission.admitted, total);
    assert_eq!(stats.admission.shed, 0, "no deadlines → no shedding");
}

/// Coalescing under injected probe faults: whenever a reply has full
/// coverage it is still bit-identical to the healthy engine; faults only
/// ever surface as honestly-reported degraded coverage.
#[test]
fn coalescing_under_chaos_keeps_full_coverage_replies_exact() {
    let s = generate(&SynthConfig::tiny(53));
    let entries = s.log.entries();
    let chaotic = Arc::new(ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: 2,
            key: PartitionKey::User,
            coalesce: true,
            fault: FaultConfig {
                budget_ms: 400,
                ..FaultConfig::default()
            },
            ..ServeConfig::default()
        },
    ));
    chaotic.set_fault_plan(Some(FaultPlan::seeded(
        0x7A11_5EED,
        ChaosProfile {
            panic_permille: 80,
            error_permille: 60,
            latency_permille: 0,
            latency_ms: 0,
        },
    )));
    let healthy = ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: 2,
            key: PartitionKey::User,
            ..ServeConfig::default()
        },
    );
    let reqs = test_requests(&chaotic, 5);
    let expected: Vec<_> = reqs.iter().map(|r| healthy.suggest(r)).collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let chaotic = Arc::clone(&chaotic);
            let reqs = &reqs;
            let expected = &expected;
            scope.spawn(move || {
                for (req, want) in reqs.iter().zip(expected) {
                    let got = chaotic.suggest(req);
                    if !got.coverage.is_degraded() {
                        assert_eq!(got.suggestions, want.suggestions);
                    }
                }
            });
        }
    });
}

/// Tentpole contract: a request whose projected wait exceeds its deadline
/// is shed with an explicit `Rejected` carrying the projection; admitted
/// requests serve bit-identically to the healthy path.
#[test]
fn admission_sheds_explicitly_and_serves_admitted_requests_exactly() {
    let s = generate(&SynthConfig::tiny(61));
    let entries = s.log.entries();
    let server = Arc::new(ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: 1,
            key: PartitionKey::Query,
            ..ServeConfig::default()
        },
    ));
    // Every probe of the only replica stalls 30 ms: a known service time.
    server.set_fault_plan(Some(FaultPlan::new().with_slow_replica(0, 0, 30)));
    let req = SuggestRequest::simple(QueryId(0), 5);
    // Warm the gate's service estimate past MIN_SAMPLES.
    let warm = server.suggest(&req);
    for _ in 0..7 {
        assert_eq!(server.suggest(&req).suggestions, warm.suggestions);
    }
    let stats = server.stats();
    assert!(
        stats.admission.admitted >= 8 && stats.admission.shed == 0,
        "warmup: {:?}",
        stats.admission
    );

    // One slow request in flight + a 30 ms p50 estimate: a 2 ms deadline
    // projects far past its budget and must shed.
    let background = {
        let server = Arc::clone(&server);
        let req = req.clone();
        std::thread::spawn(move || server.suggest(&req))
    };
    std::thread::sleep(Duration::from_millis(10)); // let it enter the gate
    let outcome = server.suggest_with_deadline(&req, Some(Deadline::in_ms(2)));
    let rejection = match outcome {
        ServeOutcome::Rejected(r) => r,
        ServeOutcome::Served(_) => panic!("2 ms budget against a 30 ms p50 must shed"),
    };
    assert!(rejection.projected_wait_us >= 30_000, "{rejection:?}");
    assert!(rejection.inflight >= 1, "{rejection:?}");
    let stats = server.stats();
    assert_eq!(stats.admission.shed, 1);
    assert_eq!(
        stats.admission.last_projected_wait_us, rejection.projected_wait_us,
        "shed decisions are auditable in stats"
    );

    // A generous deadline is admitted and serves the exact same reply.
    match server.suggest_with_deadline(&req, Some(Deadline::in_ms(10_000))) {
        ServeOutcome::Served(reply) => {
            assert_eq!(reply.suggestions, warm.suggestions);
            assert!(!reply.coverage.is_degraded());
        }
        ServeOutcome::Rejected(r) => panic!("10 s budget shed: {r:?}"),
    }
    assert_eq!(background.join().unwrap().suggestions, warm.suggestions);
    assert_eq!(outcome.reply().map(|_| ()), None);
    assert!(outcome.is_rejected());
}

/// Satellite: the ingest queue's rejection paths record the projection
/// they were based on, and deadline sheds are explicit — never silent.
#[test]
fn ingest_rejections_are_explicit_and_auditable() {
    let s = generate(&SynthConfig::tiny(71));
    let entries = s.log.entries();
    let server = ShardedPqsDa::build(
        &entries,
        ServeConfig {
            shards: 2,
            key: PartitionKey::User,
            ..ServeConfig::default()
        },
    );
    let entry = |i: u64| LogEntry::new(UserId(200), format!("tail query {i}"), None, 5_000_000 + i);
    // One drain cycle measures the real per-entry cost.
    assert!(server.ingest(entry(0)));
    server.apply_deltas();
    let measured = server.stats().ingest.service_estimate_us;
    assert!(
        measured > 0,
        "a rebuild cycle cannot cost zero microseconds"
    );

    // Queue up work, then offer against an already-exhausted deadline:
    // the projection (depth × measured cost) exceeds 0 remaining budget.
    for i in 1..=6 {
        assert!(server.ingest(entry(i)));
    }
    let shed = server.ingest_with_deadline(entry(99), Some(&Deadline::in_ms(0)));
    assert_eq!(shed, IngestOffer::RejectedDeadline);
    let ingest = server.stats().ingest;
    assert_eq!(ingest.rejected_deadline, 1);
    assert_eq!(ingest.rejected, 0, "not a capacity rejection");
    assert_eq!(
        ingest.last_projected_wait_us,
        6 * measured,
        "the audited projection is exactly depth × estimate"
    );
    // A generous deadline and a deadline-less offer still land.
    assert!(server
        .ingest_with_deadline(entry(7), Some(&Deadline::in_ms(60_000)))
        .is_accepted());
    assert_eq!(
        server.ingest_with_deadline(entry(8), None),
        IngestOffer::Accepted
    );
    let report = server.apply_deltas();
    assert_eq!(report.drained, 8, "the shed entry never entered the queue");
    assert!(server.find_query("tail query 8").is_some());
    assert!(
        server.find_query("tail query 99").is_none(),
        "a shed entry must not be silently applied"
    );
}
