//! The `PQSS` container: a versioned, little-endian, 8-byte-aligned
//! binary layout for shard snapshots (DESIGN.md §12).
//!
//! ```text
//! offset 0    header          64 bytes, checksummed (word-wise FNV-1a)
//! offset 64   section table   32 bytes per section, checksummed
//! aligned     payloads        each 8-aligned, each checksummed
//! ```
//!
//! Everything is little-endian. Payload offsets are 8-byte aligned so a
//! mapping of the file (whose base is page-aligned, hence 8-aligned) can
//! hand out `&[u64]`/`&[f64]` views without copying. All content is
//! treated as untrusted: magic, version, lengths, alignment, checksums
//! and cross-references are validated before a single array view is
//! produced, and every failure is a typed [`SnapError`] — a corrupt file
//! fails closed, it never loads approximately.

use pqsda_querylog::hash::{FNV_OFFSET, FNV_PRIME};
use std::fmt;

/// File magic: the first four bytes of every snapshot file.
pub const MAGIC: [u8; 4] = *b"PQSS";
/// Current container version.
pub const FORMAT_VERSION: u32 = 1;
/// Header size in bytes. The trailing u64 is a word-wise FNV-style
/// checksum over the first `HEADER_LEN - 8` bytes *and* the whole
/// section table.
pub const HEADER_LEN: usize = 64;
/// Section-table entry size in bytes.
pub const SECTION_ENTRY_LEN: usize = 32;

/// Header flag: the file carries a `Profile` section.
pub const FLAG_PROFILE: u32 = 1 << 0;
/// Header flag: the file carries raw count matrices (indices 3–5).
pub const FLAG_RAW_COUNTS: u32 = 1 << 1;

/// What a section holds. The `(kind, index)` pair is unique per file;
/// `index` distinguishes repeated kinds (the three interners, the six
/// CSR matrices).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionKind {
    /// Fixed 24-byte interned log records.
    Records = 1,
    /// `u64 × (n + 1)` offsets into a string arena (0 = queries,
    /// 1 = urls, 2 = terms).
    StrOffsets = 2,
    /// Concatenated UTF-8 string arena (same indices).
    StrArena = 3,
    /// `u64 × (num_queries + 1)` indptr into the flat query-term list.
    QueryTermIndptr = 4,
    /// Flat `u32` term ids.
    QueryTermIds = 5,
    /// Counts + weighting scheme (see `snapshot`).
    Meta = 6,
    /// `rows/cols/nnz` as 3 × u64 (0–2 weighted U/S/T, 3–5 raw U/S/T).
    CsrHeader = 7,
    /// CSR `indptr` as u64 (same indices).
    CsrIndptr = 8,
    /// CSR column indices as u32 (same indices).
    CsrIndices = 9,
    /// CSR values as f64 bits (same indices).
    CsrValues = 10,
    /// The personalizer's own `PQSP` image.
    Profile = 11,
    /// Serving-layer topology (shard count, partition key) — present in
    /// router files only.
    ServeMeta = 12,
}

impl SectionKind {
    fn from_u32(v: u32) -> Option<SectionKind> {
        Some(match v {
            1 => SectionKind::Records,
            2 => SectionKind::StrOffsets,
            3 => SectionKind::StrArena,
            4 => SectionKind::QueryTermIndptr,
            5 => SectionKind::QueryTermIds,
            6 => SectionKind::Meta,
            7 => SectionKind::CsrHeader,
            8 => SectionKind::CsrIndptr,
            9 => SectionKind::CsrIndices,
            10 => SectionKind::CsrValues,
            11 => SectionKind::Profile,
            12 => SectionKind::ServeMeta,
            _ => return None,
        })
    }
}

/// Why a snapshot or WAL failed to load. Every variant is fail-closed:
/// the caller gets no partially-parsed state.
#[derive(Debug)]
pub enum SnapError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// A container version this build does not read.
    BadVersion(u32),
    /// The file ends before a declared structure does.
    Truncated(&'static str),
    /// A structural rule is violated (alignment, bounds, ordering).
    BadLayout(&'static str),
    /// A stored checksum disagrees with the bytes.
    BadChecksum(&'static str),
    /// The reconstructed state's digest disagrees with the header stamp.
    DigestMismatch(&'static str),
    /// The embedded profile image failed to parse.
    Profile(pqsda_topics::StoreError),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapError::BadMagic => write!(f, "snapshot: bad magic (not a PQSS file)"),
            SnapError::BadVersion(v) => write!(f, "snapshot: unsupported version {v}"),
            SnapError::Truncated(what) => write!(f, "snapshot truncated: {what}"),
            SnapError::BadLayout(what) => write!(f, "snapshot layout: {what}"),
            SnapError::BadChecksum(what) => write!(f, "snapshot checksum mismatch: {what}"),
            SnapError::DigestMismatch(what) => write!(f, "snapshot digest mismatch: {what}"),
            SnapError::Profile(e) => write!(f, "snapshot profile: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

/// The parsed header fields (everything but the checksum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Shard number (`u64::MAX` for router files).
    pub shard: u64,
    /// Snapshot generation.
    pub generation: u64,
    /// The graph digest the loaded state must reproduce.
    pub graph_digest: u64,
    /// The profile digest (0 = no personalizer).
    pub profile_digest: u64,
    /// Flag bits ([`FLAG_PROFILE`], [`FLAG_RAW_COUNTS`]).
    pub flags: u32,
}

/// One section-table row.
#[derive(Clone, Copy, Debug)]
pub struct Section {
    /// What the payload holds.
    pub kind: SectionKind,
    /// Disambiguates repeated kinds.
    pub index: u32,
    /// Absolute payload offset (8-aligned).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// A validated view over one snapshot file's bytes. Construction checks
/// the header, the section table and **every** section checksum — by the
/// time you hold a `SnapFile`, each byte the table points at has been
/// read once and verified.
pub struct SnapFile<'a> {
    bytes: &'a [u8],
    header: Header,
    sections: Vec<Section>,
}

impl<'a> SnapFile<'a> {
    /// Parses and fully verifies `bytes`.
    pub fn parse(bytes: &'a [u8]) -> Result<SnapFile<'a>, SnapError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapError::Truncated("header"));
        }
        if bytes[0..4] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = read_u32(bytes, 4);
        if version != FORMAT_VERSION {
            return Err(SnapError::BadVersion(version));
        }
        let header = Header {
            shard: read_u64(bytes, 8),
            generation: read_u64(bytes, 16),
            graph_digest: read_u64(bytes, 24),
            profile_digest: read_u64(bytes, 32),
            flags: read_u32(bytes, 44),
        };
        let section_count = read_u32(bytes, 40) as usize;
        let file_len = read_u64(bytes, 48);
        if file_len != bytes.len() as u64 {
            return Err(SnapError::Truncated("file length disagrees with header"));
        }
        let table_end = HEADER_LEN + section_count * SECTION_ENTRY_LEN;
        if bytes.len() < table_end {
            return Err(SnapError::Truncated("section table"));
        }
        // The header checksum covers the header fields AND the whole
        // section table — per-section checksums protect payloads, this
        // one protects the metadata that locates them.
        let stored_header_sum = read_u64(bytes, HEADER_LEN - 8);
        let computed = header_checksum(bytes, table_end);
        if computed != stored_header_sum {
            return Err(SnapError::BadChecksum("header/section table"));
        }
        let mut sections = Vec::with_capacity(section_count);
        for s in 0..section_count {
            let at = HEADER_LEN + s * SECTION_ENTRY_LEN;
            let kind = SectionKind::from_u32(read_u32(bytes, at))
                .ok_or(SnapError::BadLayout("unknown section kind"))?;
            let index = read_u32(bytes, at + 4);
            let offset = read_u64(bytes, at + 8);
            let len = read_u64(bytes, at + 16);
            let checksum = read_u64(bytes, at + 24);
            if !offset.is_multiple_of(8) {
                return Err(SnapError::BadLayout("section offset not 8-aligned"));
            }
            let end = offset
                .checked_add(len)
                .ok_or(SnapError::BadLayout("section range overflows"))?;
            if end > bytes.len() as u64 {
                return Err(SnapError::Truncated("section payload"));
            }
            let payload = &bytes[offset as usize..end as usize];
            if checksum_bytes(payload) != checksum {
                return Err(SnapError::BadChecksum("section payload"));
            }
            sections.push(Section {
                kind,
                index,
                offset,
                len,
            });
        }
        Ok(SnapFile {
            bytes,
            header,
            sections,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> Header {
        self.header
    }

    /// The payload of `(kind, index)`, or `None` when absent.
    pub fn section_opt(&self, kind: SectionKind, index: u32) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|s| s.kind == kind && s.index == index)
            .map(|s| &self.bytes[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// The payload of `(kind, index)`; a typed error when absent.
    pub fn section(&self, kind: SectionKind, index: u32) -> Result<&'a [u8], SnapError> {
        self.section_opt(kind, index)
            .ok_or(SnapError::Truncated("missing required section"))
    }

    /// A section payload's absolute offset within the file (for building
    /// zero-copy views relative to the mapping base).
    pub fn section_offset(&self, kind: SectionKind, index: u32) -> Option<usize> {
        self.sections
            .iter()
            .find(|s| s.kind == kind && s.index == index)
            .map(|s| s.offset as usize)
    }
}

/// Assembles one snapshot file in memory: sections are collected, then
/// `finish` lays out header + table + 8-aligned payloads and stamps
/// every checksum.
pub struct FileBuilder {
    sections: Vec<(SectionKind, u32, Vec<u8>)>,
}

impl Default for FileBuilder {
    fn default() -> Self {
        FileBuilder::new()
    }
}

impl FileBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        FileBuilder {
            sections: Vec::new(),
        }
    }

    /// Adds one section payload. `(kind, index)` must be unique.
    pub fn push(&mut self, kind: SectionKind, index: u32, payload: Vec<u8>) {
        debug_assert!(
            !self
                .sections
                .iter()
                .any(|(k, i, _)| *k == kind && *i == index),
            "duplicate section ({kind:?}, {index})"
        );
        self.sections.push((kind, index, payload));
    }

    /// Lays the file out and returns its bytes.
    pub fn finish(self, header: Header) -> Vec<u8> {
        let table_end = HEADER_LEN + self.sections.len() * SECTION_ENTRY_LEN;
        let mut size = table_end;
        let mut offsets = Vec::with_capacity(self.sections.len());
        for (_, _, payload) in &self.sections {
            size = size.next_multiple_of(8);
            offsets.push(size);
            size += payload.len();
        }
        let mut out = vec![0u8; size];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        out[8..16].copy_from_slice(&header.shard.to_le_bytes());
        out[16..24].copy_from_slice(&header.generation.to_le_bytes());
        out[24..32].copy_from_slice(&header.graph_digest.to_le_bytes());
        out[32..40].copy_from_slice(&header.profile_digest.to_le_bytes());
        out[40..44].copy_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out[44..48].copy_from_slice(&header.flags.to_le_bytes());
        out[48..56].copy_from_slice(&(size as u64).to_le_bytes());
        for (s, ((kind, index, payload), &offset)) in self.sections.iter().zip(&offsets).enumerate()
        {
            let at = HEADER_LEN + s * SECTION_ENTRY_LEN;
            out[at..at + 4].copy_from_slice(&(*kind as u32).to_le_bytes());
            out[at + 4..at + 8].copy_from_slice(&index.to_le_bytes());
            out[at + 8..at + 16].copy_from_slice(&(offset as u64).to_le_bytes());
            out[at + 16..at + 24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
            let sum = checksum_bytes(payload);
            out[at + 24..at + 32].copy_from_slice(&sum.to_le_bytes());
            out[offset..offset + payload.len()].copy_from_slice(payload);
        }
        let header_sum = header_checksum(&out, table_end);
        out[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&header_sum.to_le_bytes());
        out
    }
}

/// Folds `bytes` into a running checksum state, one 8-byte little-endian
/// word per FNV-style xor-multiply (a short tail is zero-padded into a
/// final word). Eight bytes per multiply instead of one makes verifying
/// a whole snapshot ~8× cheaper than byte-wise FNV-1a — checksums are on
/// the cold-start critical path, where every section of every shard file
/// is verified before a single view is produced.
///
/// Per-word, xor + multiply-by-odd-prime is injective, so any single-bit
/// corruption still changes the sum. Chaining two calls only matches a
/// single concatenated call when the first slice's length is a multiple
/// of 8 (true for the header/table split: 56-byte prefix, 32-byte
/// entries).
fn checksum_extend(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().expect("chunks_exact yields 8 bytes"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        h ^= u64::from_le_bytes(last);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Word-wise checksum of a byte string. The length is folded into the
/// seed so a zero-padded tail cannot collide with explicit trailing
/// zeros.
fn checksum_bytes(bytes: &[u8]) -> u64 {
    checksum_extend(FNV_OFFSET ^ bytes.len() as u64, bytes)
}

/// Checksum over a whole frame, used by the WAL (exported here so the
/// frame format and the container share one hash).
pub fn frame_checksum(bytes: &[u8]) -> u64 {
    checksum_bytes(bytes)
}

/// The header checksum: covers the header fields (minus the checksum
/// slot itself) and the whole section table ending at `table_end`.
pub(crate) fn header_checksum(file_bytes: &[u8], table_end: usize) -> u64 {
    checksum_extend(
        checksum_bytes(&file_bytes[..HEADER_LEN - 8]),
        &file_bytes[HEADER_LEN..table_end],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            shard: 3,
            generation: 7,
            graph_digest: 0xAAAA,
            profile_digest: 0,
            flags: FLAG_RAW_COUNTS,
        }
    }

    fn sample_file() -> Vec<u8> {
        let mut b = FileBuilder::new();
        b.push(SectionKind::Records, 0, vec![1, 2, 3]);
        b.push(SectionKind::Meta, 0, vec![9; 48]);
        b.push(SectionKind::StrArena, 2, b"sunjava".to_vec());
        b.finish(sample_header())
    }

    #[test]
    fn roundtrips_header_and_sections() {
        let bytes = sample_file();
        let f = SnapFile::parse(&bytes).unwrap();
        assert_eq!(f.header(), sample_header());
        assert_eq!(f.section(SectionKind::Records, 0).unwrap(), &[1, 2, 3]);
        assert_eq!(f.section(SectionKind::StrArena, 2).unwrap(), b"sunjava");
        assert!(f.section_opt(SectionKind::Profile, 0).is_none());
        assert!(f.section(SectionKind::Profile, 0).is_err());
        for kind in [
            SectionKind::Records,
            SectionKind::Meta,
            SectionKind::StrArena,
        ] {
            let off = f.section_offset(kind, if kind == SectionKind::StrArena { 2 } else { 0 });
            assert_eq!(off.unwrap() % 8, 0, "{kind:?} payload 8-aligned");
        }
    }

    #[test]
    fn wrong_magic_fails_closed() {
        let mut bytes = sample_file();
        bytes[0] = b'X';
        assert!(matches!(SnapFile::parse(&bytes), Err(SnapError::BadMagic)));
    }

    #[test]
    fn wrong_version_fails_closed() {
        let mut bytes = sample_file();
        bytes[4] = 99;
        assert!(matches!(
            SnapFile::parse(&bytes),
            Err(SnapError::BadVersion(99))
        ));
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        // Exhaustive over the small sample: flipping any single byte
        // must surface as *some* typed error (checksums cover header,
        // table and payloads; padding bytes are the only don't-cares).
        let clean = sample_file();
        let f = SnapFile::parse(&clean).unwrap();
        let padding: Vec<usize> = {
            let mut covered = vec![false; clean.len()];
            covered[..HEADER_LEN + 3 * SECTION_ENTRY_LEN].fill(true);
            for kind in [
                SectionKind::Records,
                SectionKind::Meta,
                SectionKind::StrArena,
            ] {
                let idx = if kind == SectionKind::StrArena { 2 } else { 0 };
                let off = f.section_offset(kind, idx).unwrap();
                let len = f.section(kind, idx).unwrap().len();
                covered[off..off + len].fill(true);
            }
            covered
                .iter()
                .enumerate()
                .filter(|(_, &c)| !c)
                .map(|(i, _)| i)
                .collect()
        };
        for at in 0..clean.len() {
            if padding.contains(&at) {
                continue;
            }
            let mut corrupt = clean.clone();
            corrupt[at] ^= 0x40;
            assert!(
                SnapFile::parse(&corrupt).is_err(),
                "flipped byte {at} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_fails_closed() {
        let bytes = sample_file();
        for keep in [0, 10, HEADER_LEN - 1, HEADER_LEN + 5, bytes.len() - 1] {
            assert!(
                SnapFile::parse(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes went unnoticed"
            );
        }
    }

    #[test]
    fn misaligned_section_offset_fails() {
        let mut bytes = sample_file();
        // Nudge the first section's stored offset off alignment; the
        // layout check fires before any checksum comparison.
        let at = HEADER_LEN + 8;
        let off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        bytes[at..at + 8].copy_from_slice(&(off + 1).to_le_bytes());
        // Re-stamp the header checksum so only the table is corrupt.
        assert!(SnapFile::parse(&bytes).is_err());
    }
}
