//! Persistent snapshot store for PQS-DA shard state (DESIGN.md §12).
//!
//! A shard's `ShardSnapshot` is today rebuilt from the raw query log on
//! every process start — session segmentation, CSR builds, CF-IQF
//! weighting, a Gibbs train. This crate makes that state *persistent*:
//!
//! * [`format`] — the versioned, little-endian, 8-byte-aligned `PQSS`
//!   container: header (magic/version/generation/digests), checksummed
//!   section table, aligned payloads;
//! * [`snapshot`] — saving a [`pqsda::PqsDa`] engine into one `PQSS`
//!   file and loading it back with **zero-copy** CSR views borrowed out
//!   of a memory mapping ([`mmap::Mapping`], with an aligned read
//!   fallback), verified against the same graph/profile digests the
//!   serving layer's swap protocol uses;
//! * [`wal`] — the sidecar delta write-ahead log: append-only fsync'd
//!   frames of post-snapshot `LogEntry` batches, tolerant of a torn
//!   tail, replayed through the existing incremental `apply_deltas`
//!   pipeline on restart.

pub mod format;
pub mod snapshot;
pub mod wal;

pub use format::{SectionKind, SnapError, FORMAT_VERSION, MAGIC};
pub use snapshot::{
    engine_image, load_engine, load_router, save_engine, save_router, LoadInfo, SnapshotMeta,
    ROUTER_SHARD,
};
pub use wal::{decode_entry, encode_entry, WalReader, WalReplay, WalWriter};
