//! Saving and loading whole engines through the `PQSS` container.
//!
//! **Save** walks the engine's constituent state — interned records
//! (session stamps included, so post-load deltas keep their session
//! numbering), the three vocabularies, per-query terms, the weighted
//! *and raw* CSR matrices (raw counts are not recoverable from CF-IQF
//! weights, and without them every post-snapshot delta would cold-
//! rebuild), and the personalizer's own `PQSP` image — and lays it out
//! as checksummed sections, then publishes by atomic rename.
//!
//! **Load** memory-maps the file ([`mmap::Mapping`], aligned-read
//! fallback available) and rebuilds the engine with the CSR arrays
//! *borrowed zero-copy out of the mapping* via
//! [`pqsda_linalg::SharedSlice`]; only the comparatively small record /
//! vocabulary tables are parsed into owned memory. The reconstructed
//! state is verified against the graph/profile digests stamped in the
//! header — exactly the integrity machinery the serving layer's swap
//! protocol uses — so a loaded shard is provably the shard that was
//! saved, bit for bit.

use crate::format::{
    FileBuilder, Header, SectionKind, SnapError, SnapFile, FLAG_PROFILE, FLAG_RAW_COUNTS,
};
use mmap::Mapping;
use pqsda::{Personalizer, PqsDa, PqsDaConfig};
use pqsda_graph::bipartite::{Bipartite, EntityKind};
use pqsda_graph::multi::MultiBipartite;
use pqsda_graph::weighting::WeightingScheme;
use pqsda_linalg::{CsrMatrix, SharedSlice};
use pqsda_querylog::ids::Interner;
use pqsda_querylog::{LogRecord, QueryId, QueryLog, SessionId, TermId, UrlId, UserId};
use std::any::Any;
use std::path::Path;
use std::sync::Arc;

/// Bytes per serialized [`LogRecord`].
const RECORD_LEN: usize = 24;
/// Bytes of the `Meta` section.
const META_LEN: usize = 48;
/// `u32::MAX` marks an absent optional id in serialized records.
const NONE_U32: u32 = u32::MAX;
/// Shard number stamped on router files.
pub const ROUTER_SHARD: u64 = u64::MAX;

/// The identity a snapshot file claims (and must prove on load).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Shard number.
    pub shard: u64,
    /// Snapshot generation.
    pub generation: u64,
    /// Graph digest ([`MultiBipartite::digest`]).
    pub graph_digest: u64,
    /// Profile digest (0 = no personalizer).
    pub profile_digest: u64,
}

/// How a load was served — the provenance benches stamp into their rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadInfo {
    /// True when the file is served by a real memory mapping (false =
    /// the aligned read fallback).
    pub mapped: bool,
    /// True when the CSR arrays borrow from the mapping without copying
    /// (little-endian 64-bit targets; others parse-copy).
    pub zero_copy: bool,
    /// Snapshot file size in bytes.
    pub file_len: u64,
}

fn scheme_code(scheme: WeightingScheme) -> u32 {
    match scheme {
        WeightingScheme::Raw => 0,
        WeightingScheme::CfIqf => 1,
        WeightingScheme::EntropyBiased => 2,
    }
}

fn scheme_from_code(code: u32) -> Result<WeightingScheme, SnapError> {
    Ok(match code {
        0 => WeightingScheme::Raw,
        1 => WeightingScheme::CfIqf,
        2 => WeightingScheme::EntropyBiased,
        _ => return Err(SnapError::BadLayout("unknown weighting scheme")),
    })
}

fn opt_u32(v: Option<u32>) -> u32 {
    v.unwrap_or(NONE_U32)
}

fn push_records(builder: &mut FileBuilder, log: &QueryLog) {
    let mut buf = Vec::with_capacity(log.records().len() * RECORD_LEN);
    for r in log.records() {
        buf.extend_from_slice(&r.user.0.to_le_bytes());
        buf.extend_from_slice(&r.query.0.to_le_bytes());
        buf.extend_from_slice(&opt_u32(r.click.map(|u| u.0)).to_le_bytes());
        buf.extend_from_slice(&opt_u32(r.session.map(|s| s.0)).to_le_bytes());
        buf.extend_from_slice(&r.timestamp.to_le_bytes());
    }
    builder.push(SectionKind::Records, 0, buf);
}

fn push_interner(builder: &mut FileBuilder, index: u32, interner: &Interner) {
    let mut offsets = Vec::with_capacity((interner.len() + 1) * 8);
    let mut arena = Vec::new();
    offsets.extend_from_slice(&0u64.to_le_bytes());
    for (_, s) in interner.iter() {
        arena.extend_from_slice(s.as_bytes());
        offsets.extend_from_slice(&(arena.len() as u64).to_le_bytes());
    }
    builder.push(SectionKind::StrOffsets, index, offsets);
    builder.push(SectionKind::StrArena, index, arena);
}

fn push_query_terms(builder: &mut FileBuilder, log: &QueryLog) {
    let mut indptr = Vec::with_capacity((log.num_queries() + 1) * 8);
    let mut flat = Vec::new();
    indptr.extend_from_slice(&0u64.to_le_bytes());
    for terms in log.all_query_terms() {
        for t in terms {
            flat.extend_from_slice(&t.0.to_le_bytes());
        }
        indptr.extend_from_slice(&((flat.len() / 4) as u64).to_le_bytes());
    }
    builder.push(SectionKind::QueryTermIndptr, 0, indptr);
    builder.push(SectionKind::QueryTermIds, 0, flat);
}

fn push_meta(builder: &mut FileBuilder, log: &QueryLog, scheme: WeightingScheme) {
    let mut buf = Vec::with_capacity(META_LEN);
    for v in [
        log.num_queries() as u64,
        log.num_urls() as u64,
        log.num_terms() as u64,
        log.num_users() as u64,
        log.records().len() as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&scheme_code(scheme).to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    builder.push(SectionKind::Meta, 0, buf);
}

fn push_csr(builder: &mut FileBuilder, index: u32, m: &CsrMatrix) {
    let (indptr, indices, values) = m.parts();
    let mut hdr = Vec::with_capacity(24);
    hdr.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    hdr.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    hdr.extend_from_slice(&(m.nnz() as u64).to_le_bytes());
    builder.push(SectionKind::CsrHeader, index, hdr);
    let mut p = Vec::with_capacity(indptr.len() * 8);
    for &v in indptr {
        p.extend_from_slice(&(v as u64).to_le_bytes());
    }
    builder.push(SectionKind::CsrIndptr, index, p);
    let mut c = Vec::with_capacity(indices.len() * 4);
    for &v in indices {
        c.extend_from_slice(&v.to_le_bytes());
    }
    builder.push(SectionKind::CsrIndices, index, c);
    let mut d = Vec::with_capacity(values.len() * 8);
    for &v in values {
        d.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    builder.push(SectionKind::CsrValues, index, d);
}

/// Writes `bytes` to `path` atomically: a sibling temp file, fsync, then
/// rename — a crash never leaves a half-written snapshot under the real
/// name, and readers of the old file keep their mapping.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapError> {
    use std::io::Write;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Builds the complete `PQSS` image of an engine **in memory**: exactly
/// the bytes [`save_engine`] would write, plus the stamped identity.
/// This is the snapshot-streaming primitive — the wire layer ships these
/// bytes chunk by chunk for live shard handoff, and `save_engine` is now
/// a thin "image + atomic write" composition, so file and wire snapshots
/// are one format by construction.
pub fn engine_image(engine: &PqsDa, shard: u64, generation: u64) -> (SnapshotMeta, Vec<u8>) {
    let log = engine.log();
    let multi = engine.multi();
    let mut builder = FileBuilder::new();
    push_records(&mut builder, log);
    push_interner(&mut builder, 0, log.queries_interner());
    push_interner(&mut builder, 1, log.urls_interner());
    push_interner(&mut builder, 2, log.terms_interner());
    push_query_terms(&mut builder, log);
    push_meta(&mut builder, log, multi.scheme());

    let mut flags = 0u32;
    for (i, kind) in EntityKind::ALL.iter().enumerate() {
        push_csr(&mut builder, i as u32, multi.get(*kind).matrix());
    }
    if multi.raw_counts(EntityKind::Url).is_some() {
        flags |= FLAG_RAW_COUNTS;
        for (i, kind) in EntityKind::ALL.iter().enumerate() {
            push_csr(&mut builder, 3 + i as u32, multi.raw_counts(*kind).unwrap());
        }
    }
    if let Some(p) = engine.personalizer() {
        flags |= FLAG_PROFILE;
        let mut image = Vec::new();
        p.write_to(&mut image);
        builder.push(SectionKind::Profile, 0, image);
    }

    let meta = SnapshotMeta {
        shard,
        generation,
        graph_digest: multi.digest(),
        profile_digest: engine.personalizer().map_or(0, |p| p.digest()),
    };
    let bytes = builder.finish(Header {
        shard: meta.shard,
        generation: meta.generation,
        graph_digest: meta.graph_digest,
        profile_digest: meta.profile_digest,
        flags,
    });
    (meta, bytes)
}

/// Saves a whole engine as one `PQSS` file at `path` (atomic rename).
/// Returns the stamped identity (digests computed from the engine, the
/// same way the serving layer's `ShardTag` computes them).
pub fn save_engine(
    engine: &PqsDa,
    shard: u64,
    generation: u64,
    path: &Path,
) -> Result<SnapshotMeta, SnapError> {
    let (meta, bytes) = engine_image(engine, shard, generation);
    write_atomic(path, &bytes)?;
    Ok(meta)
}

fn read_u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn read_u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

/// Whether this target can reinterpret the file's little-endian arrays
/// in place (the zero-copy fast path).
const ZERO_COPY: bool = cfg!(all(target_endian = "little", target_pointer_width = "64"));

fn view_usize(owner: &Arc<Mapping>, bytes: &[u8]) -> Result<SharedSlice<usize>, SnapError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(SnapError::BadLayout("u64 array length not a multiple of 8"));
    }
    if ZERO_COPY && bytes.as_ptr().align_offset(8) == 0 {
        let owner: Arc<dyn Any + Send + Sync> = Arc::clone(owner) as _;
        // Safety: 8-aligned, length-checked, immutable for the mapping's
        // lifetime; usize == u64 on this target (ZERO_COPY).
        return Ok(unsafe {
            SharedSlice::from_owner(owner, bytes.as_ptr().cast::<usize>(), bytes.len() / 8)
        });
    }
    let mut v = Vec::with_capacity(bytes.len() / 8);
    for chunk in bytes.chunks_exact(8) {
        let x = u64::from_le_bytes(chunk.try_into().unwrap());
        v.push(usize::try_from(x).map_err(|_| SnapError::BadLayout("indptr exceeds usize"))?);
    }
    Ok(v.into())
}

fn view_u32(owner: &Arc<Mapping>, bytes: &[u8]) -> Result<SharedSlice<u32>, SnapError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(SnapError::BadLayout("u32 array length not a multiple of 4"));
    }
    if ZERO_COPY && bytes.as_ptr().align_offset(4) == 0 {
        let owner: Arc<dyn Any + Send + Sync> = Arc::clone(owner) as _;
        // Safety: aligned, length-checked, immutable for the mapping's
        // lifetime.
        return Ok(unsafe {
            SharedSlice::from_owner(owner, bytes.as_ptr().cast::<u32>(), bytes.len() / 4)
        });
    }
    let v: Vec<u32> = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok(v.into())
}

fn view_f64(owner: &Arc<Mapping>, bytes: &[u8]) -> Result<SharedSlice<f64>, SnapError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(SnapError::BadLayout("f64 array length not a multiple of 8"));
    }
    if ZERO_COPY && bytes.as_ptr().align_offset(8) == 0 {
        let owner: Arc<dyn Any + Send + Sync> = Arc::clone(owner) as _;
        // Safety: aligned, length-checked, immutable for the mapping's
        // lifetime; f64 bits were stored verbatim.
        return Ok(unsafe {
            SharedSlice::from_owner(owner, bytes.as_ptr().cast::<f64>(), bytes.len() / 8)
        });
    }
    let v: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect();
    Ok(v.into())
}

fn view_u8(owner: &Arc<Mapping>, bytes: &[u8]) -> SharedSlice<u8> {
    if ZERO_COPY {
        let owner: Arc<dyn Any + Send + Sync> = Arc::clone(owner) as _;
        // Safety: byte views need no alignment; length is exact and the
        // bytes are immutable for the mapping's lifetime.
        return unsafe { SharedSlice::from_owner(owner, bytes.as_ptr(), bytes.len()) };
    }
    bytes.to_vec().into()
}

/// Reassembles an interner zero-copy over its two sections: the offset
/// table becomes a `usize` view and the arena a byte view, both borrowed
/// straight from the mapping. `Interner::from_mapped` validates shape
/// and UTF-8; no per-string allocation happens on this path.
fn read_interner(
    file: &SnapFile<'_>,
    owner: &Arc<Mapping>,
    index: u32,
) -> Result<Interner, SnapError> {
    let offsets = file.section(SectionKind::StrOffsets, index)?;
    let arena = file.section(SectionKind::StrArena, index)?;
    if offsets.len() % 8 != 0 || offsets.is_empty() {
        return Err(SnapError::BadLayout("interner offset table shape"));
    }
    Interner::from_mapped(view_u8(owner, arena), view_usize(owner, offsets)?)
        .map_err(SnapError::BadLayout)
}

fn read_records(file: &SnapFile<'_>) -> Result<Vec<LogRecord>, SnapError> {
    let bytes = file.section(SectionKind::Records, 0)?;
    if bytes.len() % RECORD_LEN != 0 {
        return Err(SnapError::BadLayout("record section length"));
    }
    let mut records = Vec::with_capacity(bytes.len() / RECORD_LEN);
    for r in bytes.chunks_exact(RECORD_LEN) {
        let click = read_u32_at(r, 8);
        let session = read_u32_at(r, 12);
        records.push(LogRecord {
            user: UserId(read_u32_at(r, 0)),
            query: QueryId(read_u32_at(r, 4)),
            click: (click != NONE_U32).then_some(UrlId(click)),
            session: (session != NONE_U32).then_some(SessionId(session)),
            timestamp: read_u64_at(r, 16),
        });
    }
    Ok(records)
}

/// Reads the flat query-term table: ids plus a `u32` indptr, exactly the
/// shape [`QueryLog::from_flat_parts`] wants — two allocations total, no
/// per-query `Vec`. Offset validation (monotonic, bounded, sentinel) is
/// left to `from_flat_parts`, which re-checks everything anyway.
fn read_query_terms(
    file: &SnapFile<'_>,
    num_queries: usize,
) -> Result<(Vec<TermId>, Vec<u32>), SnapError> {
    let indptr = file.section(SectionKind::QueryTermIndptr, 0)?;
    let flat = file.section(SectionKind::QueryTermIds, 0)?;
    if indptr.len() != (num_queries + 1) * 8 || flat.len() % 4 != 0 {
        return Err(SnapError::BadLayout("query-term table shape"));
    }
    let mut offsets = Vec::with_capacity(num_queries + 1);
    for o in indptr.chunks_exact(8) {
        let o = u64::from_le_bytes(o.try_into().expect("chunks_exact yields 8 bytes"));
        let o = u32::try_from(o)
            .map_err(|_| SnapError::BadLayout("query-term indptr out of bounds"))?;
        offsets.push(o);
    }
    let ids = flat
        .chunks_exact(4)
        .map(|b| {
            TermId(u32::from_le_bytes(
                b.try_into().expect("chunks_exact yields 4 bytes"),
            ))
        })
        .collect();
    Ok((ids, offsets))
}

fn read_csr(file: &SnapFile<'_>, owner: &Arc<Mapping>, index: u32) -> Result<CsrMatrix, SnapError> {
    let hdr = file.section(SectionKind::CsrHeader, index)?;
    if hdr.len() != 24 {
        return Err(SnapError::BadLayout("csr header shape"));
    }
    let rows = usize::try_from(read_u64_at(hdr, 0))
        .map_err(|_| SnapError::BadLayout("csr rows exceed usize"))?;
    let cols = usize::try_from(read_u64_at(hdr, 8))
        .map_err(|_| SnapError::BadLayout("csr cols exceed usize"))?;
    let nnz = usize::try_from(read_u64_at(hdr, 16))
        .map_err(|_| SnapError::BadLayout("csr nnz exceeds usize"))?;
    let indptr = file.section(SectionKind::CsrIndptr, index)?;
    let indices = file.section(SectionKind::CsrIndices, index)?;
    let values = file.section(SectionKind::CsrValues, index)?;
    if indptr.len() != (rows + 1) * 8 || indices.len() != nnz * 4 || values.len() != nnz * 8 {
        return Err(SnapError::BadLayout(
            "csr array lengths disagree with header",
        ));
    }
    CsrMatrix::from_shared_parts(
        rows,
        cols,
        view_usize(owner, indptr)?,
        view_u32(owner, indices)?,
        view_f64(owner, values)?,
    )
    .map_err(SnapError::BadLayout)
}

fn read_log(
    file: &SnapFile<'_>,
    owner: &Arc<Mapping>,
) -> Result<(QueryLog, WeightingScheme), SnapError> {
    let meta = file.section(SectionKind::Meta, 0)?;
    if meta.len() != META_LEN {
        return Err(SnapError::BadLayout("meta section shape"));
    }
    let num_queries = read_u64_at(meta, 0) as usize;
    let num_urls = read_u64_at(meta, 8) as usize;
    let num_terms = read_u64_at(meta, 16) as usize;
    let num_users = read_u64_at(meta, 24) as usize;
    let num_records = read_u64_at(meta, 32) as usize;
    let scheme = scheme_from_code(read_u32_at(meta, 40))?;

    let queries = read_interner(file, owner, 0)?;
    let urls = read_interner(file, owner, 1)?;
    let terms = read_interner(file, owner, 2)?;
    if queries.len() != num_queries || urls.len() != num_urls || terms.len() != num_terms {
        return Err(SnapError::BadLayout("vocabulary sizes disagree with meta"));
    }
    let records = read_records(file)?;
    if records.len() != num_records {
        return Err(SnapError::BadLayout("record count disagrees with meta"));
    }
    let (term_ids, term_indptr) = read_query_terms(file, num_queries)?;
    let log = QueryLog::from_flat_parts(
        records,
        queries,
        urls,
        terms,
        term_ids,
        term_indptr,
        num_users,
    )
    .map_err(SnapError::BadLayout)?;
    Ok((log, scheme))
}

fn open(path: &Path, use_mmap: bool) -> Result<Arc<Mapping>, SnapError> {
    let mapping = if use_mmap {
        Mapping::open(path)?
    } else {
        Mapping::open_fallback(path)?
    };
    Ok(Arc::new(mapping))
}

/// Loads an engine saved by [`save_engine`]. `config` supplies the
/// runtime (expansion/diversification/cache) settings, which are not
/// part of the persisted state — the same contract `apply_deltas`
/// already has for its build options. Set `use_mmap` false to force the
/// aligned read fallback (benchmark provenance / tests).
///
/// The reconstructed graph and profile digests are recomputed and
/// checked against the header stamp; any disagreement is a
/// [`SnapError::DigestMismatch`], never a silently different engine.
pub fn load_engine(
    path: &Path,
    config: PqsDaConfig,
    use_mmap: bool,
) -> Result<(PqsDa, SnapshotMeta, LoadInfo), SnapError> {
    let mapping = open(path, use_mmap)?;
    let file = SnapFile::parse(mapping.bytes())?;
    let header = file.header();
    let (log, scheme) = read_log(&file, &mapping)?;

    let num_queries = log.num_queries();
    let mut weighted = Vec::with_capacity(3);
    for i in 0..3u32 {
        let m = read_csr(&file, &mapping, i)?;
        if m.rows() != num_queries {
            return Err(SnapError::BadLayout("weighted matrix row count"));
        }
        weighted.push(m);
    }
    let raw = if header.flags & FLAG_RAW_COUNTS != 0 {
        let mut raw = Vec::with_capacity(3);
        for i in 0..3u32 {
            let m = read_csr(&file, &mapping, 3 + i)?;
            if m.rows() != weighted[i as usize].rows() || m.cols() != weighted[i as usize].cols() {
                return Err(SnapError::BadLayout(
                    "raw count shape disagrees with weighted",
                ));
            }
            raw.push(m);
        }
        Some(raw)
    } else {
        None
    };

    let personalizer = if header.flags & FLAG_PROFILE != 0 {
        let image = file.section(SectionKind::Profile, 0)?;
        Some(Personalizer::read_from(image).map_err(SnapError::Profile)?)
    } else {
        None
    };

    // Transposes are recomputed (deterministically) rather than stored:
    // they double the file for no read-path gain.
    let mut it = weighted.into_iter();
    let url = Bipartite::from_matrix(EntityKind::Url, it.next().unwrap());
    let session = Bipartite::from_matrix(EntityKind::Session, it.next().unwrap());
    let term = Bipartite::from_matrix(EntityKind::Term, it.next().unwrap());
    let multi = match raw {
        Some(raw) => {
            let mut it = raw.into_iter();
            let boxed = Box::new([it.next().unwrap(), it.next().unwrap(), it.next().unwrap()]);
            MultiBipartite::from_weighted_and_raw(url, session, term, scheme, boxed)
        }
        None => MultiBipartite::from_parts(url, session, term, scheme),
    };

    // The same verification gate swaps run before publishing: recompute
    // the content digests and refuse anything that differs from the
    // header stamp.
    if multi.digest() != header.graph_digest {
        return Err(SnapError::DigestMismatch("graph"));
    }
    if personalizer.as_ref().map_or(0, |p| p.digest()) != header.profile_digest {
        return Err(SnapError::DigestMismatch("profile"));
    }

    let info = LoadInfo {
        mapped: mapping.is_mmap(),
        zero_copy: ZERO_COPY && mapping.bytes().as_ptr().align_offset(8) == 0,
        file_len: mapping.len() as u64,
    };
    let engine = PqsDa::new(log, multi, personalizer, config);
    Ok((
        engine,
        SnapshotMeta {
            shard: header.shard,
            generation: header.generation,
            graph_digest: header.graph_digest,
            profile_digest: header.profile_digest,
        },
        info,
    ))
}

/// Saves a router file: the full (unsharded) interned log plus serving
/// topology, with no matrices. The router log must persist — rebuilding
/// it from concatenated shard partitions would renumber queries whose
/// first occurrences tie on timestamp, breaking id stability across a
/// restart.
pub fn save_router(
    log: &QueryLog,
    shards: u64,
    partition_key: u32,
    path: &Path,
) -> Result<(), SnapError> {
    let mut builder = FileBuilder::new();
    push_records(&mut builder, log);
    push_interner(&mut builder, 0, log.queries_interner());
    push_interner(&mut builder, 1, log.urls_interner());
    push_interner(&mut builder, 2, log.terms_interner());
    push_query_terms(&mut builder, log);
    push_meta(&mut builder, log, WeightingScheme::Raw);
    let mut serve = Vec::with_capacity(16);
    serve.extend_from_slice(&shards.to_le_bytes());
    serve.extend_from_slice(&partition_key.to_le_bytes());
    serve.extend_from_slice(&0u32.to_le_bytes());
    builder.push(SectionKind::ServeMeta, 0, serve);
    let bytes = builder.finish(Header {
        shard: ROUTER_SHARD,
        generation: 0,
        graph_digest: 0,
        profile_digest: 0,
        flags: 0,
    });
    write_atomic(path, &bytes)
}

/// Loads a router file saved by [`save_router`]: the log, the shard
/// count and the partition-key code.
pub fn load_router(path: &Path) -> Result<(QueryLog, u64, u32, LoadInfo), SnapError> {
    let mapping = open(path, true)?;
    let file = SnapFile::parse(mapping.bytes())?;
    if file.header().shard != ROUTER_SHARD {
        return Err(SnapError::BadLayout("not a router file"));
    }
    let (log, _) = read_log(&file, &mapping)?;
    let serve = file.section(SectionKind::ServeMeta, 0)?;
    if serve.len() != 16 {
        return Err(SnapError::BadLayout("serve meta shape"));
    }
    let shards = read_u64_at(serve, 0);
    let key = read_u32_at(serve, 8);
    let info = LoadInfo {
        mapped: mapping.is_mmap(),
        zero_copy: false,
        file_len: mapping.len() as u64,
    };
    Ok((log, shards, key, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqsda::EngineBuildOptions;
    use pqsda_querylog::synth::{generate, SynthConfig};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pqsda-store-{}-{name}.pqss", std::process::id()))
    }

    fn synth_engine() -> PqsDa {
        let synth = generate(&SynthConfig::tiny(42));
        PqsDa::build_from_entries(&synth.log.entries(), &EngineBuildOptions::default())
    }

    #[test]
    fn engine_roundtrip_is_bit_identical() {
        let engine = synth_engine();
        let path = tmp("roundtrip");
        let meta = save_engine(&engine, 0, 5, &path).unwrap();
        assert_eq!(meta.graph_digest, engine.multi().digest());

        for use_mmap in [true, false] {
            let (loaded, got_meta, info) =
                load_engine(&path, PqsDaConfig::default(), use_mmap).unwrap();
            assert_eq!(got_meta, meta);
            assert_eq!(info.mapped, use_mmap && cfg!(unix));
            assert!(info.file_len > 0);
            // The log is reproduced exactly: ids, order, session stamps.
            assert_eq!(loaded.log().records(), engine.log().records());
            assert_eq!(loaded.log().num_users(), engine.log().num_users());
            // The graph digests equal by the load gate; spot-check the
            // raw counts survived too.
            for kind in EntityKind::ALL {
                let (a, b) = (
                    loaded.multi().raw_counts(kind).unwrap(),
                    engine.multi().raw_counts(kind).unwrap(),
                );
                assert_eq!(a, b, "{kind:?} raw counts");
            }
            // Replies are bit-identical.
            use pqsda_baselines::SuggestRequest;
            let reqs: Vec<SuggestRequest> = engine
                .log()
                .records()
                .iter()
                .step_by(11)
                .map(|r| SuggestRequest::simple(r.query, 8).for_user(r.user))
                .collect();
            assert_eq!(loaded.suggest_many(&reqs), engine.suggest_many(&reqs));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_csr_views_are_zero_copy_under_mmap() {
        let engine = synth_engine();
        let path = tmp("zerocopy");
        save_engine(&engine, 0, 0, &path).unwrap();
        let (loaded, _, info) = load_engine(&path, PqsDaConfig::default(), true).unwrap();
        if info.mapped && info.zero_copy {
            for kind in EntityKind::ALL {
                assert!(
                    loaded.multi().get(kind).matrix().is_mapped(),
                    "{kind:?} weighted matrix should borrow from the mapping"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_anywhere_fails_closed() {
        let engine = synth_engine();
        let path = tmp("corrupt");
        save_engine(&engine, 0, 0, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // A deterministic spread of positions across the whole file.
        for k in 0..64 {
            let at = (clean.len() / 64) * k + 7 % clean.len().max(1);
            let at = at.min(clean.len() - 1);
            let mut corrupt = clean.clone();
            corrupt[at] ^= 0x20;
            if corrupt[at] == clean[at] {
                continue;
            }
            std::fs::write(&path, &corrupt).unwrap();
            match load_engine(&path, PqsDaConfig::default(), true) {
                Err(_) => {}
                Ok(_) => {
                    // The flip may have landed in alignment padding
                    // between sections — the only bytes no checksum
                    // covers and no parse reads.
                    let f = SnapFile::parse(&clean).unwrap();
                    let _ = f;
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_section_fails_closed() {
        let engine = synth_engine();
        let path = tmp("truncate");
        save_engine(&engine, 0, 0, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for keep in [clean.len() - 1, clean.len() / 2, 100, 63] {
            std::fs::write(&path, &clean[..keep]).unwrap();
            assert!(
                load_engine(&path, PqsDaConfig::default(), true).is_err(),
                "truncation to {keep} loaded anyway"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_digest_is_a_typed_mismatch() {
        let engine = synth_engine();
        let path = tmp("digest");
        save_engine(&engine, 0, 0, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Rewrite the stored graph digest and re-stamp the header
        // checksum, so the only inconsistency is content vs stamp.
        let forged = read_u64_at(&bytes, 24) ^ 1;
        bytes[24..32].copy_from_slice(&forged.to_le_bytes());
        use crate::format::{header_checksum, HEADER_LEN, SECTION_ENTRY_LEN};
        let table_end = HEADER_LEN + read_u32_at(&bytes, 40) as usize * SECTION_ENTRY_LEN;
        let sum = header_checksum(&bytes, table_end);
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_engine(&path, PqsDaConfig::default(), true),
            Err(SnapError::DigestMismatch("graph"))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn router_roundtrip_preserves_ids() {
        let synth = generate(&SynthConfig::tiny(43));
        let log = synth.log;
        let path = tmp("router");
        save_router(&log, 4, 1, &path).unwrap();
        let (loaded, shards, key, _) = load_router(&path).unwrap();
        assert_eq!((shards, key), (4, 1));
        assert_eq!(loaded.records(), log.records());
        assert_eq!(loaded.num_queries(), log.num_queries());
        for q in 0..log.num_queries() {
            let q = QueryId::from_index(q);
            assert_eq!(loaded.query_text(q), log.query_text(q));
        }
        std::fs::remove_file(&path).ok();
    }
}
