//! The sidecar delta WAL: durable [`LogEntry`] batches appended *after*
//! the last snapshot.
//!
//! A snapshot captures shard state at one generation; everything applied
//! since lives only in memory. The WAL closes that window: every drained
//! delta batch is appended as one checksummed, fsync'd frame **before**
//! the swap publishes it, and a restart replays `snapshot + WAL` through
//! the ordinary `apply_deltas` pipeline to land exactly where the crashed
//! process was. Saving a fresh snapshot resets (truncates) the WAL, so
//! the file only ever holds the post-snapshot suffix.
//!
//! Frame format (all little-endian):
//!
//! ```text
//! file:  magic u32 | version u32 | frame*
//! frame: magic u32 | batch_id u64 | entry_count u32 | payload_len u64
//!        | payload | checksum u64    (frame_checksum of all prior frame bytes)
//! entry: user u32 | timestamp u64 | query_len u32 | query bytes
//!        | url_len u32 (u32::MAX = no click) | url bytes
//! ```
//!
//! Batch ids are consecutive from 0 within one WAL lifetime; a reader
//! stops at the first frame that is short, checksum-broken or
//! out-of-sequence and reports the valid prefix — a torn tail from a
//! mid-append crash is dropped cleanly, never half-applied.

use crate::format::{frame_checksum, SnapError};
use pqsda_querylog::{LogEntry, UserId};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// WAL file magic (`PQSW` little-endian).
pub const WAL_MAGIC: u32 = u32::from_le_bytes(*b"PQSW");
/// WAL frame magic (`FRAM` little-endian).
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"FRAM");
/// WAL format version.
pub const WAL_VERSION: u32 = 1;
/// File header length (magic + version).
const WAL_HEADER_LEN: u64 = 8;
/// Fixed frame prefix: magic + batch_id + entry_count + payload_len.
const FRAME_PREFIX_LEN: usize = 24;

/// One decoded WAL: the replayable batches plus recovery bookkeeping.
#[derive(Debug)]
pub struct WalReplay {
    /// Post-snapshot delta batches, in append order.
    pub batches: Vec<Vec<LogEntry>>,
    /// The id the next appended batch must carry.
    pub next_batch_id: u64,
    /// Byte length of the valid prefix (where appends may resume).
    pub valid_len: u64,
    /// Bytes of torn/corrupt tail discarded beyond `valid_len`.
    pub dropped_bytes: u64,
}

/// Serializes one [`LogEntry`] in the WAL's entry layout (`user u32 |
/// timestamp u64 | query_len u32 | query | url_len u32 (u32::MAX = no
/// click) | url`). Public because the wire protocol's delta frames carry
/// entries in this exact encoding — one codec, no drift.
pub fn encode_entry(buf: &mut Vec<u8>, e: &LogEntry) {
    buf.extend_from_slice(&e.user.0.to_le_bytes());
    buf.extend_from_slice(&e.timestamp.to_le_bytes());
    let q = e.query.as_bytes();
    buf.extend_from_slice(&(q.len() as u32).to_le_bytes());
    buf.extend_from_slice(q);
    match &e.clicked_url {
        Some(u) => {
            let u = u.as_bytes();
            buf.extend_from_slice(&(u.len() as u32).to_le_bytes());
            buf.extend_from_slice(u);
        }
        None => buf.extend_from_slice(&u32::MAX.to_le_bytes()),
    }
}

fn encode_frame(batch_id: u64, entries: &[LogEntry]) -> Vec<u8> {
    let mut payload = Vec::new();
    for e in entries {
        encode_entry(&mut payload, e);
    }
    let mut frame = Vec::with_capacity(FRAME_PREFIX_LEN + payload.len() + 8);
    frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    frame.extend_from_slice(&batch_id.to_le_bytes());
    frame.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&payload);
    let sum = frame_checksum(&frame);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame
}

/// Appender half. Each [`WalWriter::append`] is one fsync'd frame; the
/// durability contract is that a batch is on disk before the in-memory
/// swap that makes it visible.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_batch_id: u64,
}

impl WalWriter {
    /// Creates (or truncates) the WAL at `path` — the post-snapshot
    /// reset: a fresh snapshot owns everything, so the WAL restarts
    /// empty at batch 0.
    pub fn create(path: &Path) -> Result<Self, SnapError> {
        let mut file = File::create(path)?;
        file.write_all(&WAL_MAGIC.to_le_bytes())?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_batch_id: 0,
        })
    }

    /// Reopens an existing WAL for appending after replay, truncating
    /// any torn tail past `replay.valid_len` first.
    pub fn resume(path: &Path, replay: &WalReplay) -> Result<Self, SnapError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(replay.valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_batch_id: replay.next_batch_id,
        })
    }

    /// Appends one delta batch as a single frame and fsyncs it. Returns
    /// the batch id it was stamped with.
    pub fn append(&mut self, entries: &[LogEntry]) -> Result<u64, SnapError> {
        let id = self.next_batch_id;
        let frame = encode_frame(id, entries);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.next_batch_id += 1;
        Ok(id)
    }

    /// The id the next appended batch will carry.
    pub fn next_batch_id(&self) -> u64 {
        self.next_batch_id
    }

    /// The WAL's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reader half: decodes the valid prefix of a WAL.
pub struct WalReader;

impl WalReader {
    /// Replays `path`. A missing file is an empty WAL (fresh install); a
    /// present file must carry the right magic/version. Any torn or
    /// corrupt tail is measured and dropped, never partially decoded.
    pub fn replay(path: &Path) -> Result<WalReplay, SnapError> {
        let bytes = match File::open(path) {
            Ok(mut f) => {
                let mut v = Vec::new();
                f.read_to_end(&mut v)?;
                v
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(WalReplay {
                    batches: Vec::new(),
                    next_batch_id: 0,
                    valid_len: WAL_HEADER_LEN,
                    dropped_bytes: 0,
                })
            }
            Err(e) => return Err(e.into()),
        };
        if bytes.len() < WAL_HEADER_LEN as usize {
            return Err(SnapError::Truncated("wal header"));
        }
        if bytes[0..4] != WAL_MAGIC.to_le_bytes() {
            return Err(SnapError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(SnapError::BadVersion(version));
        }

        let mut batches = Vec::new();
        let mut at = WAL_HEADER_LEN as usize;
        let mut next_batch_id = 0u64;
        while let Some((entries, consumed)) = decode_frame(&bytes[at..], next_batch_id) {
            batches.push(entries);
            at += consumed;
            next_batch_id += 1;
        }
        Ok(WalReplay {
            batches,
            next_batch_id,
            valid_len: at as u64,
            dropped_bytes: (bytes.len() - at) as u64,
        })
    }
}

/// Decodes one frame from `bytes`, requiring `expect_id`. Returns the
/// entries and the frame's byte length, or `None` for anything short,
/// checksum-broken or out of sequence (= the torn tail starts here).
fn decode_frame(bytes: &[u8], expect_id: u64) -> Option<(Vec<LogEntry>, usize)> {
    if bytes.len() < FRAME_PREFIX_LEN + 8 {
        return None;
    }
    if bytes[0..4] != FRAME_MAGIC.to_le_bytes() {
        return None;
    }
    let batch_id = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    if batch_id != expect_id {
        return None;
    }
    let entry_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload_len = usize::try_from(payload_len).ok()?;
    let total = FRAME_PREFIX_LEN.checked_add(payload_len)?.checked_add(8)?;
    if bytes.len() < total {
        return None;
    }
    let stored = u64::from_le_bytes(bytes[total - 8..total].try_into().unwrap());
    if frame_checksum(&bytes[..total - 8]) != stored {
        return None;
    }
    let payload = &bytes[FRAME_PREFIX_LEN..total - 8];
    let mut entries = Vec::with_capacity(entry_count);
    let mut at = 0usize;
    for _ in 0..entry_count {
        let (entry, used) = decode_entry(&payload[at..])?;
        entries.push(entry);
        at += used;
    }
    // Checksummed payload must contain exactly the declared entries.
    if at != payload.len() {
        return None;
    }
    Some((entries, total))
}

/// Decodes one entry written by [`encode_entry`]: the entry plus the
/// bytes consumed, or `None` for anything short or non-UTF-8 (the caller
/// treats that as a torn/corrupt frame and fails closed).
pub fn decode_entry(bytes: &[u8]) -> Option<(LogEntry, usize)> {
    if bytes.len() < 16 {
        return None;
    }
    let user = UserId(u32::from_le_bytes(bytes[0..4].try_into().unwrap()));
    let timestamp = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let qlen = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut at = 16usize;
    let query = std::str::from_utf8(bytes.get(at..at + qlen)?).ok()?;
    at += qlen;
    let marker = u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().unwrap());
    at += 4;
    let url = if marker == u32::MAX {
        None
    } else {
        let ulen = marker as usize;
        let u = std::str::from_utf8(bytes.get(at..at + ulen)?).ok()?;
        at += ulen;
        Some(u)
    };
    Some((LogEntry::new(user, query, url, timestamp), at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pqsda-wal-{}-{name}.wal", std::process::id()))
    }

    fn sample_batches() -> Vec<Vec<LogEntry>> {
        vec![
            vec![
                LogEntry::new(UserId(1), "sun java", Some("java.sun.com"), 100),
                LogEntry::new(UserId(2), "solar cell", None, 101),
            ],
            vec![LogEntry::new(
                UserId(3),
                "jvm download",
                Some("java.com"),
                150,
            )],
            vec![],
        ]
    }

    #[test]
    fn roundtrips_batches_in_order() {
        let path = tmp("roundtrip");
        let mut w = WalWriter::create(&path).unwrap();
        for (i, b) in sample_batches().iter().enumerate() {
            assert_eq!(w.append(b).unwrap(), i as u64);
        }
        let replay = WalReader::replay(&path).unwrap();
        assert_eq!(replay.batches, sample_batches());
        assert_eq!(replay.next_batch_id, 3);
        assert_eq!(replay.dropped_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_wal_is_empty() {
        let replay = WalReader::replay(&tmp("does-not-exist")).unwrap();
        assert!(replay.batches.is_empty());
        assert_eq!(replay.next_batch_id, 0);
    }

    #[test]
    fn torn_tail_is_dropped_cleanly() {
        let path = tmp("torn");
        let mut w = WalWriter::create(&path).unwrap();
        for b in &sample_batches() {
            w.append(b).unwrap();
        }
        let clean = std::fs::read(&path).unwrap();
        let full = WalReader::replay(&path).unwrap();
        assert_eq!(full.valid_len, clean.len() as u64);

        // Truncate into the last frame at every possible position: the
        // first two batches must survive, the torn third be dropped.
        let second_end = {
            let two = {
                let mut w2 = WalWriter::create(&tmp("torn-two")).unwrap();
                w2.append(&sample_batches()[0]).unwrap();
                w2.append(&sample_batches()[1]).unwrap();
                std::fs::read(w2.path()).unwrap()
            };
            std::fs::remove_file(tmp("torn-two")).ok();
            two.len()
        };
        for keep in second_end..clean.len() {
            std::fs::write(&path, &clean[..keep]).unwrap();
            let replay = WalReader::replay(&path).unwrap();
            assert_eq!(replay.batches.len(), 2, "keep={keep}");
            assert_eq!(replay.valid_len, second_end as u64);
            assert_eq!(replay.dropped_bytes, (keep - second_end) as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitflipped_frame_stops_replay_at_the_previous_batch() {
        let path = tmp("flip");
        let mut w = WalWriter::create(&path).unwrap();
        for b in &sample_batches() {
            w.append(b).unwrap();
        }
        let clean = std::fs::read(&path).unwrap();
        // Flip one payload byte in the middle of the file.
        let mut corrupt = clean.clone();
        let at = clean.len() / 2;
        corrupt[at] ^= 0x01;
        std::fs::write(&path, &corrupt).unwrap();
        let replay = WalReader::replay(&path).unwrap();
        assert!(replay.batches.len() < 3);
        assert!(replay.dropped_bytes > 0);
        // And every surviving batch is bit-exact.
        for (got, want) in replay.batches.iter().zip(sample_batches()) {
            assert_eq!(*got, want);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_truncates_the_torn_tail_and_continues_ids() {
        let path = tmp("resume");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(&sample_batches()[0]).unwrap();
        w.append(&sample_batches()[1]).unwrap();
        // Simulate a torn append.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let replay = WalReader::replay(&path).unwrap();
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.dropped_bytes, 12);
        let mut w = WalWriter::resume(&path, &replay).unwrap();
        assert_eq!(w.next_batch_id(), 2);
        w.append(&sample_batches()[0]).unwrap();
        let again = WalReader::replay(&path).unwrap();
        assert_eq!(again.batches.len(), 3);
        assert_eq!(again.dropped_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_version_fail_closed() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00").unwrap();
        assert!(matches!(WalReader::replay(&path), Err(SnapError::BadMagic)));
        let mut good = WAL_MAGIC.to_le_bytes().to_vec();
        good.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &good).unwrap();
        assert!(matches!(
            WalReader::replay(&path),
            Err(SnapError::BadVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }
}
