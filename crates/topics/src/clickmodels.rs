//! The query-log topic models of Jiang et al. \[34\] ("Beyond click graph"):
//! the Meta-word Model (MWM), the Term–URL Model (TUM) and the
//! Clickthrough Model (CTM) — three baselines of the paper's Fig. 4.
//!
//! * **MWM** folds URLs into the word vocabulary as *meta-words* and runs
//!   token-level topics over the joint stream;
//! * **TUM** keeps separate topic–word and topic–URL distributions, with an
//!   independent token-level topic for every word and URL occurrence;
//! * **CTM** assigns one topic per query record, generating words, the
//!   clicked URL, and a per-topic Bernoulli *click propensity* (whether the
//!   record has a click at all).

use crate::corpus::Corpus;
use crate::counts::{smoothed, Counts2D};
use crate::model::{TopicModel, TrainConfig};
use crate::record_gibbs::{RecordFactors, RecordGibbs};
use pqsda_linalg::stats::sample_discrete;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// --------------------------------------------------------------------- MWM

/// The Meta-word Model: URLs are words. Joint vocabulary
/// `0..num_words` = words, `num_words..num_words+num_urls` = URL meta-words.
#[derive(Clone, Debug)]
pub struct Mwm {
    cfg: TrainConfig,
    num_words: usize,
    doc_topic: Counts2D,
    topic_meta: Counts2D,
}

impl Mwm {
    /// Trains token-level LDA over the joint word ∪ URL stream.
    pub fn train(corpus: &Corpus, cfg: &TrainConfig) -> Self {
        assert!(cfg.num_topics > 0, "mwm: need at least one topic");
        let k = cfg.num_topics;
        let joint = corpus.num_words + corpus.num_urls;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut doc_topic = Counts2D::new(corpus.num_docs(), k);
        let mut topic_meta = Counts2D::new(k, joint.max(1));

        let mut tokens: Vec<(usize, u32, u32)> = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            for s in &doc.sessions {
                for &w in &s.words {
                    tokens.push((d, w, 0));
                }
                for &u in &s.urls {
                    tokens.push((d, corpus.num_words as u32 + u, 0));
                }
            }
        }
        for t in tokens.iter_mut() {
            let z = rng.gen_range(0..k) as u32;
            t.2 = z;
            doc_topic.inc(t.0, z as usize, 1);
            topic_meta.inc(z as usize, t.1 as usize, 1);
        }

        let vocab = joint as f64;
        let mut weights = vec![0.0; k];
        for _ in 0..cfg.iterations {
            for i in 0..tokens.len() {
                let (d, m, z_old) = tokens[i];
                doc_topic.dec(d, z_old as usize, 1);
                topic_meta.dec(z_old as usize, m as usize, 1);
                for (z, wt) in weights.iter_mut().enumerate() {
                    *wt = (doc_topic.get(d, z) as f64 + cfg.alpha)
                        * (topic_meta.get(z, m as usize) as f64 + cfg.beta)
                        / (topic_meta.row_sum(z) as f64 + vocab * cfg.beta);
                }
                let z_new = sample_discrete(&weights, rng.gen::<f64>()) as u32;
                doc_topic.inc(d, z_new as usize, 1);
                topic_meta.inc(z_new as usize, m as usize, 1);
                tokens[i].2 = z_new;
            }
        }
        Mwm {
            cfg: *cfg,
            num_words: corpus.num_words,
            doc_topic,
            topic_meta,
        }
    }
}

impl TopicModel for Mwm {
    fn name(&self) -> &str {
        "MWM"
    }
    fn num_topics(&self) -> usize {
        self.cfg.num_topics
    }
    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        (0..self.cfg.num_topics)
            .map(|z| smoothed(&self.doc_topic, doc, z, self.cfg.alpha))
            .collect()
    }
    fn topic_word_prob(&self, _doc: usize, k: usize, w: u32) -> f64 {
        // Conditional on the token being a word: renormalize over the word
        // sub-vocabulary so word perplexity is comparable across models.
        let joint = smoothed(&self.topic_meta, k, w as usize, self.cfg.beta);
        let word_mass: f64 = (0..self.num_words)
            .map(|v| smoothed(&self.topic_meta, k, v, self.cfg.beta))
            .sum();
        joint / word_mass
    }
    fn topic_url_prob(&self, _doc: usize, k: usize, u: u32) -> f64 {
        smoothed(
            &self.topic_meta,
            k,
            self.num_words + u as usize,
            self.cfg.beta,
        )
    }
}

// --------------------------------------------------------------------- TUM

/// The Term–URL Model: independent token-level topics for words and URLs,
/// separate φ (topic–word) and Ω (topic–URL).
#[derive(Clone, Debug)]
pub struct Tum {
    cfg: TrainConfig,
    doc_topic: Counts2D,
    topic_word: Counts2D,
    topic_url: Counts2D,
}

impl Tum {
    /// Trains with a shared document–topic mixture across both streams.
    pub fn train(corpus: &Corpus, cfg: &TrainConfig) -> Self {
        assert!(cfg.num_topics > 0, "tum: need at least one topic");
        let k = cfg.num_topics;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut doc_topic = Counts2D::new(corpus.num_docs(), k);
        let mut topic_word = Counts2D::new(k, corpus.num_words);
        let mut topic_url = Counts2D::new(k, corpus.num_urls.max(1));

        // (doc, id, is_url, z)
        let mut tokens: Vec<(usize, u32, bool, u32)> = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            for s in &doc.sessions {
                for &w in &s.words {
                    let z = rng.gen_range(0..k) as u32;
                    doc_topic.inc(d, z as usize, 1);
                    topic_word.inc(z as usize, w as usize, 1);
                    tokens.push((d, w, false, z));
                }
                for &u in &s.urls {
                    let z = rng.gen_range(0..k) as u32;
                    doc_topic.inc(d, z as usize, 1);
                    topic_url.inc(z as usize, u as usize, 1);
                    tokens.push((d, u, true, z));
                }
            }
        }

        let w_vocab = corpus.num_words as f64;
        let u_vocab = corpus.num_urls.max(1) as f64;
        let mut weights = vec![0.0; k];
        for _ in 0..cfg.iterations {
            for i in 0..tokens.len() {
                let (d, id, is_url, z_old) = tokens[i];
                doc_topic.dec(d, z_old as usize, 1);
                if is_url {
                    topic_url.dec(z_old as usize, id as usize, 1);
                } else {
                    topic_word.dec(z_old as usize, id as usize, 1);
                }
                for (z, wt) in weights.iter_mut().enumerate() {
                    let emission = if is_url {
                        (topic_url.get(z, id as usize) as f64 + cfg.delta)
                            / (topic_url.row_sum(z) as f64 + u_vocab * cfg.delta)
                    } else {
                        (topic_word.get(z, id as usize) as f64 + cfg.beta)
                            / (topic_word.row_sum(z) as f64 + w_vocab * cfg.beta)
                    };
                    *wt = (doc_topic.get(d, z) as f64 + cfg.alpha) * emission;
                }
                let z_new = sample_discrete(&weights, rng.gen::<f64>()) as u32;
                doc_topic.inc(d, z_new as usize, 1);
                if is_url {
                    topic_url.inc(z_new as usize, id as usize, 1);
                } else {
                    topic_word.inc(z_new as usize, id as usize, 1);
                }
                tokens[i].3 = z_new;
            }
        }
        Tum {
            cfg: *cfg,
            doc_topic,
            topic_word,
            topic_url,
        }
    }
}

impl TopicModel for Tum {
    fn name(&self) -> &str {
        "TUM"
    }
    fn num_topics(&self) -> usize {
        self.cfg.num_topics
    }
    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        (0..self.cfg.num_topics)
            .map(|z| smoothed(&self.doc_topic, doc, z, self.cfg.alpha))
            .collect()
    }
    fn topic_word_prob(&self, _doc: usize, k: usize, w: u32) -> f64 {
        smoothed(&self.topic_word, k, w as usize, self.cfg.beta)
    }
    fn topic_url_prob(&self, _doc: usize, k: usize, u: u32) -> f64 {
        smoothed(&self.topic_url, k, u as usize, self.cfg.delta)
    }
}

// --------------------------------------------------------------------- CTM

/// The Clickthrough Model: record-level topics, word + URL emission, and a
/// per-topic Bernoulli click propensity.
#[derive(Clone, Debug)]
pub struct Ctm {
    inner: RecordGibbs,
}

impl Ctm {
    /// Trains CTM.
    pub fn train(corpus: &Corpus, cfg: &TrainConfig) -> Self {
        Ctm {
            inner: RecordGibbs::train(
                corpus,
                cfg,
                RecordFactors {
                    use_urls: true,
                    use_click_indicator: true,
                },
            ),
        }
    }

    /// Posterior probability that a record of topic `k` carries a click.
    pub fn click_propensity(&self, k: usize) -> f64 {
        self.inner.click_propensity(k)
    }
}

impl TopicModel for Ctm {
    fn name(&self) -> &str {
        "CTM"
    }
    fn num_topics(&self) -> usize {
        self.inner.cfg.num_topics
    }
    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        self.inner.doc_topic(doc)
    }
    fn topic_word_prob(&self, _doc: usize, k: usize, w: u32) -> f64 {
        self.inner.topic_word_prob(k, w)
    }
    fn topic_url_prob(&self, _doc: usize, k: usize, u: u32) -> f64 {
        self.inner.topic_url_prob(k, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DocSession, Document};
    use pqsda_querylog::UserId;

    fn corpus() -> Corpus {
        let doc = |u: u32, wbase: u32, ubase: u32, click: bool| Document {
            user: UserId(u),
            sessions: (0..6)
                .map(|i| {
                    DocSession::from_records(
                        vec![(
                            vec![wbase, wbase + (i % 2)],
                            if click { Some(ubase) } else { None },
                        )],
                        0.5,
                    )
                })
                .collect(),
        };
        Corpus {
            docs: vec![
                doc(0, 0, 0, true),
                doc(1, 0, 0, true),
                doc(2, 2, 1, false),
                doc(3, 2, 1, false),
            ],
            num_words: 4,
            num_urls: 2,
        }
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            num_topics: 2,
            iterations: 60,
            seed: 21,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn mwm_uses_joint_vocabulary() {
        let c = corpus();
        let m = Mwm::train(&c, &cfg());
        assert_eq!(m.name(), "MWM");
        // Word distribution renormalized over words sums to 1.
        for z in 0..2 {
            let s: f64 = (0..4).map(|w| m.topic_word_prob(0, z, w)).sum();
            assert!((s - 1.0).abs() < 1e-9, "topic {z} word mass {s}");
        }
        // URL meta-words carry probability in the cluster that clicks.
        let t0 = m.doc_topic(0);
        let d0 = if t0[0] > t0[1] { 0 } else { 1 };
        assert!(m.topic_url_prob(0, d0, 0) > m.topic_url_prob(0, d0, 1));
    }

    #[test]
    fn tum_separates_word_and_url_distributions() {
        let c = corpus();
        let m = Tum::train(&c, &cfg());
        assert_eq!(m.name(), "TUM");
        for z in 0..2 {
            let sw: f64 = (0..4).map(|w| m.topic_word_prob(0, z, w)).sum();
            let su: f64 = (0..2).map(|u| m.topic_url_prob(0, z, u)).sum();
            assert!((sw - 1.0).abs() < 1e-9);
            assert!((su - 1.0).abs() < 1e-9);
        }
        let t0 = m.doc_topic(0);
        let t2 = m.doc_topic(2);
        let d0 = if t0[0] > t0[1] { 0 } else { 1 };
        let d2 = if t2[0] > t2[1] { 0 } else { 1 };
        assert_ne!(d0, d2);
    }

    #[test]
    fn ctm_learns_click_propensity_contrast() {
        let c = corpus();
        let m = Ctm::train(&c, &cfg());
        assert_eq!(m.name(), "CTM");
        // One cluster always clicks, the other never: propensities differ.
        let t0 = m.doc_topic(0);
        let d0 = if t0[0] > t0[1] { 0 } else { 1 };
        let clicky = m.click_propensity(d0);
        let non = m.click_propensity(1 - d0);
        assert!(
            clicky > non + 0.3,
            "propensities not separated: {clicky} vs {non}"
        );
    }

    #[test]
    fn all_three_are_deterministic() {
        let c = corpus();
        assert_eq!(
            Mwm::train(&c, &cfg()).doc_topic(0),
            Mwm::train(&c, &cfg()).doc_topic(0)
        );
        assert_eq!(
            Tum::train(&c, &cfg()).doc_topic(0),
            Tum::train(&c, &cfg()).doc_topic(0)
        );
        assert_eq!(
            Ctm::train(&c, &cfg()).doc_topic(0),
            Ctm::train(&c, &cfg()).doc_topic(0)
        );
    }
}
