//! The per-user document corpus all topic models train on.
//!
//! Following the paper (§V-A): "We organize the query log entries of each
//! user as a document", with the *session* as the basic generative unit —
//! the words and URLs of one session share a topic in the UPM, and each
//! session carries a timestamp (normalized into the unit interval for the
//! Beta distributions).

use pqsda_querylog::{QueryLog, Session, UserId};

/// One session inside a document: its word tokens (with multiplicity,
/// across all queries of the session), clicked URLs and normalized time.
#[derive(Clone, Debug, PartialEq)]
pub struct DocSession {
    /// Term ids (token multiset over the session's queries).
    pub words: Vec<u32>,
    /// Clicked URL ids (multiset).
    pub urls: Vec<u32>,
    /// Per-record granularity: `(query terms, clicked URL)` for each log
    /// record of the session — the unit the record-level models (PTM, CTM)
    /// assign topics to. Concatenating the pieces reproduces
    /// `words`/`urls`.
    pub records: Vec<(Vec<u32>, Option<u32>)>,
    /// Session timestamp normalized into `(0, 1)` (midpoint of the
    /// session's time range).
    pub time: f64,
}

impl DocSession {
    /// Builds a session from record granularity, deriving the flattened
    /// word/URL multisets.
    pub fn from_records(records: Vec<(Vec<u32>, Option<u32>)>, time: f64) -> Self {
        let words = records
            .iter()
            .flat_map(|(ws, _)| ws.iter().copied())
            .collect();
        let urls = records.iter().filter_map(|(_, u)| *u).collect();
        DocSession {
            words,
            urls,
            records,
            time,
        }
    }

    /// The paper's URL-existence indicator `X_ds`.
    pub fn has_urls(&self) -> bool {
        !self.urls.is_empty()
    }
}

/// One user's search history as a document of sessions.
#[derive(Clone, Debug)]
pub struct Document {
    /// The user this document profiles.
    pub user: UserId,
    /// Chronologically ordered sessions.
    pub sessions: Vec<DocSession>,
}

impl Document {
    /// Total word tokens across sessions.
    pub fn num_words(&self) -> usize {
        self.sessions.iter().map(|s| s.words.len()).sum()
    }
}

/// The corpus: one document per user (users without usable sessions are
/// skipped), with vocabulary sizes carried along.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// Documents in user order.
    pub docs: Vec<Document>,
    /// Word vocabulary size (the log's distinct terms).
    pub num_words: usize,
    /// URL vocabulary size.
    pub num_urls: usize,
}

impl Corpus {
    /// Builds the corpus from a sessionized log.
    ///
    /// Sessions with no word tokens (queries made solely of stopwords) are
    /// dropped; users left with no sessions are skipped.
    ///
    /// # Panics
    /// Panics if records lack session assignments.
    pub fn build(log: &QueryLog, sessions: &[Session]) -> Self {
        let (t_min, t_max) = sessions.iter().fold((u64::MAX, 0u64), |(lo, hi), s| {
            (lo.min(s.start), hi.max(s.end))
        });
        let span = (t_max.saturating_sub(t_min)).max(1) as f64;

        let mut per_user: Vec<Vec<DocSession>> = vec![Vec::new(); log.num_users()];
        for s in sessions {
            let mut records = Vec::new();
            for &i in &s.record_indices {
                let r = log.records()[i];
                debug_assert_eq!(r.session, Some(s.id), "stale session stamps");
                let words: Vec<u32> = log.query_terms(r.query).iter().map(|t| t.0).collect();
                let url = r.click.map(|u| u.0);
                if words.is_empty() && url.is_none() {
                    continue;
                }
                records.push((words, url));
            }
            let mid = (s.start + s.end) / 2;
            let time = ((mid - t_min) as f64 / span).clamp(1e-4, 1.0 - 1e-4);
            let sess = DocSession::from_records(records, time);
            if sess.words.is_empty() {
                continue;
            }
            per_user[s.user.index()].push(sess);
        }

        let docs: Vec<Document> = per_user
            .into_iter()
            .enumerate()
            .filter(|(_, ss)| !ss.is_empty())
            .map(|(u, sessions)| Document {
                user: UserId::from_index(u),
                sessions,
            })
            .collect();

        Corpus {
            docs,
            num_words: log.num_terms(),
            num_urls: log.num_urls(),
        }
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// The document index of a user, if the user has one.
    pub fn doc_of_user(&self, user: UserId) -> Option<usize> {
        self.docs.iter().position(|d| d.user == user)
    }

    /// Total word tokens in the corpus.
    pub fn total_words(&self) -> usize {
        self.docs.iter().map(Document::num_words).sum()
    }
}

/// An observed/held-out split of a corpus, used both by the perplexity
/// experiment (observe a prefix of each user's history, predict the rest —
/// paper Eq. 35) and by the personalization experiment (profile on history,
/// test on the most recent sessions).
#[derive(Clone, Debug)]
pub struct SplitCorpus {
    /// The observed (training) part; same vocabularies as the source.
    pub observed: Corpus,
    /// Held-out sessions per *observed-corpus document index*.
    pub held_out: Vec<Vec<DocSession>>,
}

impl SplitCorpus {
    /// Splits each document at `observe_fraction` of its sessions
    /// (at least one observed session; documents with a single session
    /// contribute no held-out data).
    pub fn by_fraction(corpus: &Corpus, observe_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&observe_fraction),
            "observe_fraction out of range"
        );
        Self::split_with(corpus, |n| {
            ((n as f64 * observe_fraction).round() as usize).clamp(1, n)
        })
    }

    /// Holds out the last `k` sessions of each document (the paper's
    /// "ten most recent sessions as the testing sessions").
    pub fn last_k(corpus: &Corpus, k: usize) -> Self {
        Self::split_with(corpus, move |n| n.saturating_sub(k).max(1))
    }

    fn split_with(corpus: &Corpus, observed_count: impl Fn(usize) -> usize) -> Self {
        let mut observed_docs = Vec::new();
        let mut held_out = Vec::new();
        for d in &corpus.docs {
            let cut = observed_count(d.sessions.len());
            observed_docs.push(Document {
                user: d.user,
                sessions: d.sessions[..cut].to_vec(),
            });
            held_out.push(d.sessions[cut..].to_vec());
        }
        SplitCorpus {
            observed: Corpus {
                docs: observed_docs,
                num_words: corpus.num_words,
                num_urls: corpus.num_urls,
            },
            held_out,
        }
    }

    /// Total held-out word tokens.
    pub fn held_out_words(&self) -> usize {
        self.held_out
            .iter()
            .flat_map(|ss| ss.iter())
            .map(|s| s.words.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqsda_querylog::synth::{generate, SynthConfig};

    fn corpus() -> Corpus {
        let s = generate(&SynthConfig::tiny(5));
        Corpus::build(&s.log, &s.truth.sessions)
    }

    #[test]
    fn corpus_covers_active_users() {
        let s = generate(&SynthConfig::tiny(5));
        let c = Corpus::build(&s.log, &s.truth.sessions);
        assert!(c.num_docs() > 0);
        assert!(c.num_docs() <= s.log.num_users());
        assert_eq!(c.num_words, s.log.num_terms());
        assert_eq!(c.num_urls, s.log.num_urls());
    }

    #[test]
    fn sessions_carry_words_urls_time() {
        let c = corpus();
        for d in &c.docs {
            assert!(!d.sessions.is_empty());
            for s in &d.sessions {
                assert!(!s.words.is_empty());
                assert!((0.0..1.0).contains(&s.time));
                for &w in &s.words {
                    assert!((w as usize) < c.num_words);
                }
                for &u in &s.urls {
                    assert!((u as usize) < c.num_urls);
                }
            }
        }
    }

    #[test]
    fn records_flatten_to_session_multisets() {
        let c = corpus();
        for d in &c.docs {
            for s in &d.sessions {
                let flat_words: Vec<u32> = s
                    .records
                    .iter()
                    .flat_map(|(ws, _)| ws.iter().copied())
                    .collect();
                let flat_urls: Vec<u32> = s.records.iter().filter_map(|(_, u)| *u).collect();
                assert_eq!(flat_words, s.words);
                assert_eq!(flat_urls, s.urls);
            }
        }
    }

    #[test]
    fn doc_of_user_is_consistent() {
        let c = corpus();
        for (i, d) in c.docs.iter().enumerate() {
            assert_eq!(c.doc_of_user(d.user), Some(i));
        }
    }

    #[test]
    fn fraction_split_preserves_sessions() {
        let c = corpus();
        let split = SplitCorpus::by_fraction(&c, 0.6);
        assert_eq!(split.observed.num_docs(), c.num_docs());
        for (i, d) in c.docs.iter().enumerate() {
            let obs = split.observed.docs[i].sessions.len();
            let held = split.held_out[i].len();
            assert_eq!(obs + held, d.sessions.len());
            assert!(obs >= 1);
            // Observed sessions are the chronological prefix.
            assert_eq!(&d.sessions[..obs], &split.observed.docs[i].sessions[..]);
        }
    }

    #[test]
    fn last_k_split_holds_out_recent_sessions() {
        let c = corpus();
        let split = SplitCorpus::last_k(&c, 2);
        for (i, d) in c.docs.iter().enumerate() {
            let held = split.held_out[i].len();
            assert!(held <= 2);
            if d.sessions.len() > 2 {
                assert_eq!(held, 2);
            }
            assert!(!split.observed.docs[i].sessions.is_empty());
        }
    }

    #[test]
    fn extreme_fractions_are_clamped() {
        let c = corpus();
        let all = SplitCorpus::by_fraction(&c, 1.0);
        assert_eq!(all.held_out_words(), 0);
        let none = SplitCorpus::by_fraction(&c, 0.0);
        // At least one session stays observed per doc.
        for d in &none.observed.docs {
            assert_eq!(d.sessions.len(), 1);
        }
    }

    #[test]
    fn total_words_adds_up() {
        let c = corpus();
        let split = SplitCorpus::by_fraction(&c, 0.5);
        assert_eq!(
            split.observed.total_words() + split.held_out_words(),
            c.total_words()
        );
    }
}
