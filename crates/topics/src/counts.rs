//! Dense count tables shared by the collapsed Gibbs samplers.
//!
//! All models maintain `(row, col)` assignment counts with cached row sums
//! (e.g. document–topic `C^{DK}`, topic–word `C^{KW}`, per-document
//! topic–word `C^{KWD}` — the tables of the paper's Eq. 19–23).

/// A dense `rows × cols` table of non-negative counts with O(1) row sums.
#[derive(Clone, Debug)]
pub struct Counts2D {
    cols: usize,
    data: Vec<u32>,
    row_sums: Vec<u32>,
}

impl Counts2D {
    /// An all-zero table.
    pub fn new(rows: usize, cols: usize) -> Self {
        Counts2D {
            cols,
            data: vec![0; rows * cols],
            row_sums: vec![0; rows],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_sums.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The count at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u32 {
        self.data[r * self.cols + c]
    }

    /// Sum of row `r`.
    #[inline]
    pub fn row_sum(&self, r: usize) -> u32 {
        self.row_sums[r]
    }

    /// Increments `(r, c)` by `by`.
    #[inline]
    pub fn inc(&mut self, r: usize, c: usize, by: u32) {
        self.data[r * self.cols + c] += by;
        self.row_sums[r] += by;
    }

    /// Decrements `(r, c)` by `by`.
    ///
    /// # Panics
    /// Panics (in debug) on underflow — an underflow always means the
    /// sampler double-removed an assignment.
    #[inline]
    pub fn dec(&mut self, r: usize, c: usize, by: u32) {
        debug_assert!(
            self.data[r * self.cols + c] >= by,
            "count underflow at ({r},{c})"
        );
        self.data[r * self.cols + c] -= by;
        self.row_sums[r] -= by;
    }

    /// A full row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Total count over the whole table.
    pub fn total(&self) -> u64 {
        self.row_sums.iter().map(|&s| s as u64).sum()
    }
}

/// Smoothed row-distribution helper: `(count + prior) / (row_sum +
/// cols·prior)` — the collapsed posterior mean every model uses for its
/// predictive distributions.
pub fn smoothed(counts: &Counts2D, r: usize, c: usize, prior: f64) -> f64 {
    (counts.get(r, c) as f64 + prior) / (counts.row_sum(r) as f64 + counts.cols() as f64 * prior)
}

/// Log-weight of assigning a whole *block* of items (a session's words or
/// URLs) to row `r` of a count table under a symmetric Dirichlet prior —
/// the Gamma-ratio products of the paper's Eq. 23, evaluated stably as
/// rising factorials:
///
/// ```text
/// ln ∏_v Γ(C_rv + prior + n_v)/Γ(C_rv + prior)
///    − ln Γ(C_r· + V·prior + n)/Γ(C_r· + V·prior)
/// ```
///
/// `items` pairs each distinct item with its in-block multiplicity.
pub fn ln_block_weight(counts: &Counts2D, r: usize, items: &[(u32, u32)], prior: f64) -> f64 {
    use pqsda_linalg::special::ln_rising;
    let mut ln_w = 0.0;
    let mut total = 0usize;
    for &(v, n) in items {
        ln_w += ln_rising(counts.get(r, v as usize) as f64 + prior, n as usize);
        total += n as usize;
    }
    ln_w -= ln_rising(
        counts.row_sum(r) as f64 + counts.cols() as f64 * prior,
        total,
    );
    ln_w
}

/// Collapses a token multiset into `(item, multiplicity)` pairs sorted by
/// item id — the block shape [`ln_block_weight`] consumes.
pub fn to_multiset(tokens: &[u32]) -> Vec<(u32, u32)> {
    let mut sorted = tokens.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::new();
    for t in sorted {
        match out.last_mut() {
            Some((v, n)) if *v == t => *n += 1,
            _ => out.push((t, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_dec_round_trip() {
        let mut c = Counts2D::new(3, 4);
        c.inc(1, 2, 5);
        c.inc(1, 3, 1);
        assert_eq!(c.get(1, 2), 5);
        assert_eq!(c.row_sum(1), 6);
        c.dec(1, 2, 2);
        assert_eq!(c.get(1, 2), 3);
        assert_eq!(c.row_sum(1), 4);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn rows_are_independent() {
        let mut c = Counts2D::new(2, 2);
        c.inc(0, 0, 1);
        assert_eq!(c.row_sum(1), 0);
        assert_eq!(c.get(1, 0), 0);
    }

    #[test]
    fn row_slice_matches_gets() {
        let mut c = Counts2D::new(2, 3);
        c.inc(1, 0, 7);
        c.inc(1, 2, 9);
        assert_eq!(c.row(1), &[7, 0, 9]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // debug_assert! is compiled out in release
    fn debug_underflow_panics() {
        let mut c = Counts2D::new(1, 1);
        c.dec(0, 0, 1);
    }

    #[test]
    fn to_multiset_counts_and_sorts() {
        assert_eq!(to_multiset(&[3, 1, 3, 1, 1]), vec![(1, 3), (3, 2)]);
        assert_eq!(to_multiset(&[]), vec![]);
    }

    #[test]
    #[allow(clippy::explicit_counter_loop)] // the counter IS the math here
    fn ln_block_weight_matches_sequential_product() {
        // Assigning tokens one at a time and multiplying the collapsed
        // ratios must equal the block formula.
        let mut c = Counts2D::new(2, 3);
        c.inc(0, 0, 4);
        c.inc(0, 1, 2);
        let prior = 0.3;
        let block = [(0u32, 2u32), (2, 1)];
        let ln_block = ln_block_weight(&c, 0, &block, prior);
        // Sequential: token order 0, 0, 2.
        let mut seq = 0.0;
        let mut extra = std::collections::HashMap::new();
        let mut placed = 0;
        for &t in &[0u32, 0, 2] {
            let cnt = c.get(0, t as usize) as f64 + *extra.get(&t).unwrap_or(&0.0);
            let denom = c.row_sum(0) as f64 + 3.0 * prior + placed as f64;
            seq += ((cnt + prior) / denom).ln();
            *extra.entry(t).or_insert(0.0) += 1.0;
            placed += 1;
        }
        assert!((ln_block - seq).abs() < 1e-10, "{ln_block} vs {seq}");
    }

    #[test]
    fn ln_block_weight_prefers_matching_row() {
        let mut c = Counts2D::new(2, 3);
        c.inc(0, 0, 10);
        c.inc(1, 2, 10);
        let block = [(0u32, 3u32)];
        assert!(ln_block_weight(&c, 0, &block, 0.1) > ln_block_weight(&c, 1, &block, 0.1));
    }

    #[test]
    fn smoothed_is_a_distribution() {
        let mut c = Counts2D::new(1, 3);
        c.inc(0, 0, 2);
        c.inc(0, 1, 1);
        let prior = 0.5;
        let p: f64 = (0..3).map(|w| smoothed(&c, 0, w, prior)).sum();
        assert!((p - 1.0).abs() < 1e-12);
        assert!(smoothed(&c, 0, 0, prior) > smoothed(&c, 0, 2, prior));
    }
}
