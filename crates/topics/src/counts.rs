//! Dense count tables shared by the collapsed Gibbs samplers.
//!
//! All models maintain `(row, col)` assignment counts with cached row sums
//! (e.g. document–topic `C^{DK}`, topic–word `C^{KW}`, per-document
//! topic–word `C^{KWD}` — the tables of the paper's Eq. 19–23).

/// A dense `rows × cols` table of non-negative counts with O(1) row sums.
#[derive(Clone, Debug)]
pub struct Counts2D {
    cols: usize,
    data: Vec<u32>,
    row_sums: Vec<u32>,
}

impl Counts2D {
    /// An all-zero table.
    pub fn new(rows: usize, cols: usize) -> Self {
        Counts2D {
            cols,
            data: vec![0; rows * cols],
            row_sums: vec![0; rows],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_sums.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The count at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u32 {
        self.data[r * self.cols + c]
    }

    /// Sum of row `r`.
    #[inline]
    pub fn row_sum(&self, r: usize) -> u32 {
        self.row_sums[r]
    }

    /// Increments `(r, c)` by `by`.
    #[inline]
    pub fn inc(&mut self, r: usize, c: usize, by: u32) {
        self.data[r * self.cols + c] += by;
        self.row_sums[r] += by;
    }

    /// Decrements `(r, c)` by `by`.
    ///
    /// # Panics
    /// Panics (in debug) on underflow — an underflow always means the
    /// sampler double-removed an assignment.
    #[inline]
    pub fn dec(&mut self, r: usize, c: usize, by: u32) {
        debug_assert!(
            self.data[r * self.cols + c] >= by,
            "count underflow at ({r},{c})"
        );
        self.data[r * self.cols + c] -= by;
        self.row_sums[r] -= by;
    }

    /// A full row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Total count over the whole table.
    pub fn total(&self) -> u64 {
        self.row_sums.iter().map(|&s| s as u64).sum()
    }
}

/// Maximum sparse-row length before [`SparseCounts`] promotes a row to the
/// dense representation (also requires the fill fraction test below, so
/// mid-sized vocabularies never promote on length alone).
const SPARSE_PROMOTE_MIN_NNZ: usize = 64;

/// Column count at or below which [`SparseCounts`] rows are dense from the
/// start: a row this short costs at most a few KB and lives in L1/L2, and
/// the sampler's `get` on the hot path is then a single indexed load
/// instead of a binary search. The sorted-vec representation only wins
/// once the vocabulary is large enough that dense rows would blow the
/// cache (and the memory budget) while each document still touches a
/// sliver of the columns.
const DENSE_ROW_MAX_COLS: usize = 1024;

#[derive(Clone, Debug)]
enum CountRow {
    /// `(col, count)` pairs sorted by column, counts strictly positive.
    Sparse(Vec<(u32, u32)>),
    Dense(Vec<u32>),
}

/// A `rows × cols` count table whose rows store only the columns actually
/// touched — the per-document `C^{KWD}` / `C^{KUD}` tables of the UPM,
/// where each user's vocabulary is a sliver of the global one.
///
/// Rows start as sorted `(col, count)` vectors (binary-searched `get`,
/// shift-insert `inc`, entries removed when they hit zero) and promote to a
/// dense row once they are both long (≥ [`SPARSE_PROMOTE_MIN_NNZ`]) and
/// dense enough (> ¼ of the columns), so scan and memory cost track the
/// document's actual vocabulary with a dense fallback for pathological
/// fill. Counts returned are always exactly those of the equivalent
/// [`Counts2D`]; the property tests assert the mirror.
#[derive(Clone, Debug)]
pub struct SparseCounts {
    cols: usize,
    rows: Vec<CountRow>,
    row_sums: Vec<u32>,
}

impl SparseCounts {
    /// An all-zero table. Rows start dense for small column counts (see
    /// [`DENSE_ROW_MAX_COLS`]) and sparse otherwise.
    pub fn new(rows: usize, cols: usize) -> Self {
        let row = || {
            if cols <= DENSE_ROW_MAX_COLS {
                CountRow::Dense(vec![0; cols])
            } else {
                CountRow::Sparse(Vec::new())
            }
        };
        SparseCounts {
            cols,
            rows: (0..rows).map(|_| row()).collect(),
            row_sums: vec![0; rows],
        }
    }

    /// Widens the table to `new_cols` columns, all-zero in the new range —
    /// the incremental-retrain path, where a log delta grows the global
    /// vocabulary underneath an existing per-document table. No-op when
    /// `new_cols` does not exceed the current width; existing counts are
    /// untouched either way.
    pub fn grow_cols(&mut self, new_cols: usize) {
        if new_cols <= self.cols {
            return;
        }
        self.cols = new_cols;
        for row in &mut self.rows {
            if let CountRow::Dense(cells) = row {
                cells.resize(new_cols, 0);
            }
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_sums.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The count at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u32 {
        match &self.rows[r] {
            CountRow::Sparse(cells) => match cells.binary_search_by_key(&(c as u32), |&(v, _)| v) {
                Ok(i) => cells[i].1,
                Err(_) => 0,
            },
            CountRow::Dense(cells) => cells[c],
        }
    }

    /// Sum of row `r`.
    #[inline]
    pub fn row_sum(&self, r: usize) -> u32 {
        self.row_sums[r]
    }

    /// Number of non-zero cells in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        match &self.rows[r] {
            CountRow::Sparse(cells) => cells.len(),
            CountRow::Dense(cells) => cells.iter().filter(|&&v| v > 0).count(),
        }
    }

    /// Increments `(r, c)` by `by`.
    pub fn inc(&mut self, r: usize, c: usize, by: u32) {
        if by == 0 {
            return;
        }
        self.row_sums[r] += by;
        let promote = match &mut self.rows[r] {
            CountRow::Sparse(cells) => {
                match cells.binary_search_by_key(&(c as u32), |&(v, _)| v) {
                    Ok(i) => cells[i].1 += by,
                    Err(i) => cells.insert(i, (c as u32, by)),
                }
                cells.len() >= SPARSE_PROMOTE_MIN_NNZ && cells.len() * 4 > self.cols
            }
            CountRow::Dense(cells) => {
                cells[c] += by;
                false
            }
        };
        if promote {
            let mut dense = vec![0u32; self.cols];
            if let CountRow::Sparse(cells) = &self.rows[r] {
                for &(v, n) in cells {
                    dense[v as usize] = n;
                }
            }
            self.rows[r] = CountRow::Dense(dense);
        }
    }

    /// Decrements `(r, c)` by `by`, dropping sparse cells that reach zero.
    ///
    /// # Panics
    /// Panics (in debug) on underflow — an underflow always means the
    /// sampler double-removed an assignment.
    pub fn dec(&mut self, r: usize, c: usize, by: u32) {
        if by == 0 {
            return;
        }
        debug_assert!(self.row_sums[r] >= by, "row sum underflow at ({r},{c})");
        self.row_sums[r] -= by;
        match &mut self.rows[r] {
            CountRow::Sparse(cells) => {
                match cells.binary_search_by_key(&(c as u32), |&(v, _)| v) {
                    Ok(i) => {
                        debug_assert!(cells[i].1 >= by, "count underflow at ({r},{c})");
                        cells[i].1 -= by;
                        if cells[i].1 == 0 {
                            cells.remove(i);
                        }
                    }
                    Err(_) => {
                        #[cfg(debug_assertions)]
                        panic!("count underflow at ({r},{c})");
                    }
                };
            }
            CountRow::Dense(cells) => {
                debug_assert!(cells[c] >= by, "count underflow at ({r},{c})");
                cells[c] -= by;
            }
        }
    }

    /// Calls `f(col, count)` for every non-zero cell of row `r` in
    /// ascending column order — the same order a dense row scan visits
    /// them, so consumers accumulate bit-identically.
    pub fn for_each_nonzero(&self, r: usize, mut f: impl FnMut(usize, u32)) {
        match &self.rows[r] {
            CountRow::Sparse(cells) => {
                for &(v, n) in cells {
                    f(v as usize, n);
                }
            }
            CountRow::Dense(cells) => {
                for (v, &n) in cells.iter().enumerate() {
                    if n > 0 {
                        f(v, n);
                    }
                }
            }
        }
    }

    /// Total count over the whole table.
    pub fn total(&self) -> u64 {
        self.row_sums.iter().map(|&s| s as u64).sum()
    }
}

/// Smoothed row-distribution helper: `(count + prior) / (row_sum +
/// cols·prior)` — the collapsed posterior mean every model uses for its
/// predictive distributions.
pub fn smoothed(counts: &Counts2D, r: usize, c: usize, prior: f64) -> f64 {
    (counts.get(r, c) as f64 + prior) / (counts.row_sum(r) as f64 + counts.cols() as f64 * prior)
}

/// Log-weight of assigning a whole *block* of items (a session's words or
/// URLs) to row `r` of a count table under a symmetric Dirichlet prior —
/// the Gamma-ratio products of the paper's Eq. 23, evaluated stably as
/// rising factorials:
///
/// ```text
/// ln ∏_v Γ(C_rv + prior + n_v)/Γ(C_rv + prior)
///    − ln Γ(C_r· + V·prior + n)/Γ(C_r· + V·prior)
/// ```
///
/// `items` pairs each distinct item with its in-block multiplicity.
pub fn ln_block_weight(counts: &Counts2D, r: usize, items: &[(u32, u32)], prior: f64) -> f64 {
    use pqsda_linalg::special::ln_rising;
    let mut ln_w = 0.0;
    let mut total = 0usize;
    for &(v, n) in items {
        ln_w += ln_rising(counts.get(r, v as usize) as f64 + prior, n as usize);
        total += n as usize;
    }
    ln_w -= ln_rising(
        counts.row_sum(r) as f64 + counts.cols() as f64 * prior,
        total,
    );
    ln_w
}

/// [`ln_block_weight`] with the zero-count fast path cached: `ln_prior1`
/// must equal `ln_rising(prior, 1)` **to the bit** (compute it once per
/// prior change with that very expression). Most cells of a topic–item
/// table are zero, and most multiplicities are 1, so the common term
/// `ln_rising(0 + prior, 1)` collapses to the cached scalar; every other
/// case evaluates exactly as [`ln_block_weight`] does, keeping the result
/// bit-identical.
pub fn ln_block_weight_cached(
    counts: &Counts2D,
    r: usize,
    items: &[(u32, u32)],
    prior: f64,
    ln_prior1: f64,
) -> f64 {
    use pqsda_linalg::special::ln_rising;
    debug_assert_eq!(
        ln_prior1.to_bits(),
        ln_rising(prior, 1).to_bits(),
        "stale ln_prior1 cache"
    );
    let mut ln_w = 0.0;
    let mut total = 0usize;
    for &(v, n) in items {
        let c = counts.get(r, v as usize);
        ln_w += if c == 0 && n == 1 {
            ln_prior1
        } else {
            ln_rising(c as f64 + prior, n as usize)
        };
        total += n as usize;
    }
    ln_w -= ln_rising(
        counts.row_sum(r) as f64 + counts.cols() as f64 * prior,
        total,
    );
    ln_w
}

/// Collapses a token multiset into `(item, multiplicity)` pairs sorted by
/// item id — the block shape [`ln_block_weight`] consumes.
pub fn to_multiset(tokens: &[u32]) -> Vec<(u32, u32)> {
    let mut sorted = tokens.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::new();
    for t in sorted {
        match out.last_mut() {
            Some((v, n)) if *v == t => *n += 1,
            _ => out.push((t, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_dec_round_trip() {
        let mut c = Counts2D::new(3, 4);
        c.inc(1, 2, 5);
        c.inc(1, 3, 1);
        assert_eq!(c.get(1, 2), 5);
        assert_eq!(c.row_sum(1), 6);
        c.dec(1, 2, 2);
        assert_eq!(c.get(1, 2), 3);
        assert_eq!(c.row_sum(1), 4);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn rows_are_independent() {
        let mut c = Counts2D::new(2, 2);
        c.inc(0, 0, 1);
        assert_eq!(c.row_sum(1), 0);
        assert_eq!(c.get(1, 0), 0);
    }

    #[test]
    fn row_slice_matches_gets() {
        let mut c = Counts2D::new(2, 3);
        c.inc(1, 0, 7);
        c.inc(1, 2, 9);
        assert_eq!(c.row(1), &[7, 0, 9]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // debug_assert! is compiled out in release
    fn debug_underflow_panics() {
        let mut c = Counts2D::new(1, 1);
        c.dec(0, 0, 1);
    }

    #[test]
    fn to_multiset_counts_and_sorts() {
        assert_eq!(to_multiset(&[3, 1, 3, 1, 1]), vec![(1, 3), (3, 2)]);
        assert_eq!(to_multiset(&[]), vec![]);
    }

    #[test]
    #[allow(clippy::explicit_counter_loop)] // the counter IS the math here
    fn ln_block_weight_matches_sequential_product() {
        // Assigning tokens one at a time and multiplying the collapsed
        // ratios must equal the block formula.
        let mut c = Counts2D::new(2, 3);
        c.inc(0, 0, 4);
        c.inc(0, 1, 2);
        let prior = 0.3;
        let block = [(0u32, 2u32), (2, 1)];
        let ln_block = ln_block_weight(&c, 0, &block, prior);
        // Sequential: token order 0, 0, 2.
        let mut seq = 0.0;
        let mut extra = std::collections::HashMap::new();
        let mut placed = 0;
        for &t in &[0u32, 0, 2] {
            let cnt = c.get(0, t as usize) as f64 + *extra.get(&t).unwrap_or(&0.0);
            let denom = c.row_sum(0) as f64 + 3.0 * prior + placed as f64;
            seq += ((cnt + prior) / denom).ln();
            *extra.entry(t).or_insert(0.0) += 1.0;
            placed += 1;
        }
        assert!((ln_block - seq).abs() < 1e-10, "{ln_block} vs {seq}");
    }

    #[test]
    fn ln_block_weight_prefers_matching_row() {
        let mut c = Counts2D::new(2, 3);
        c.inc(0, 0, 10);
        c.inc(1, 2, 10);
        let block = [(0u32, 3u32)];
        assert!(ln_block_weight(&c, 0, &block, 0.1) > ln_block_weight(&c, 1, &block, 0.1));
    }

    #[test]
    fn ln_block_weight_cached_is_bit_identical() {
        use pqsda_linalg::special::ln_rising;
        let mut c = Counts2D::new(3, 5);
        c.inc(0, 1, 4);
        c.inc(1, 2, 7);
        c.inc(1, 4, 1);
        for prior in [0.05, 0.3, 2.0] {
            let ln_prior1 = ln_rising(prior, 1);
            for r in 0..3 {
                for block in [
                    vec![(0u32, 1u32)],
                    vec![(1, 1), (2, 1)],
                    vec![(2, 3), (3, 1), (4, 2)],
                    vec![],
                ] {
                    let plain = ln_block_weight(&c, r, &block, prior);
                    let cached = ln_block_weight_cached(&c, r, &block, prior, ln_prior1);
                    assert_eq!(cached.to_bits(), plain.to_bits(), "r={r} block={block:?}");
                }
            }
        }
    }

    /// Deterministic mirror-test: a long pseudo-random inc/dec trace must
    /// leave `SparseCounts` (including across dense promotion) exactly equal
    /// to `Counts2D`.
    #[test]
    fn sparse_counts_mirror_dense_table() {
        let rows = 3;
        let cols = 300;
        let mut sparse = SparseCounts::new(rows, cols);
        let mut dense = Counts2D::new(rows, cols);
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut live: Vec<(usize, usize, u32)> = Vec::new();
        for step in 0..4000 {
            let remove = !live.is_empty() && (step % 3 == 2);
            if remove {
                let i = next() % live.len();
                let (r, c, by) = live.swap_remove(i);
                sparse.dec(r, c, by);
                dense.dec(r, c, by);
            } else {
                let r = next() % rows;
                let c = next() % cols;
                let by = (next() % 3 + 1) as u32;
                sparse.inc(r, c, by);
                dense.inc(r, c, by);
                live.push((r, c, by));
            }
        }
        assert_eq!(sparse.total(), dense.total());
        for r in 0..rows {
            assert_eq!(sparse.row_sum(r), dense.row_sum(r), "row {r}");
            assert_eq!(
                sparse.row_nnz(r),
                dense.row(r).iter().filter(|&&v| v > 0).count()
            );
            for c in 0..cols {
                assert_eq!(sparse.get(r, c), dense.get(r, c), "({r},{c})");
            }
            let mut via_iter: Vec<(usize, u32)> = Vec::new();
            sparse.for_each_nonzero(r, |c, n| via_iter.push((c, n)));
            let expect: Vec<(usize, u32)> = dense
                .row(r)
                .iter()
                .enumerate()
                .filter(|(_, &v)| v > 0)
                .map(|(c, &v)| (c, v))
                .collect();
            assert_eq!(via_iter, expect, "row {r} iteration order/content");
        }
    }

    #[test]
    fn sparse_counts_promote_and_stay_correct() {
        // 2000 columns (> DENSE_ROW_MAX_COLS, so the row starts sparse):
        // promotion once nnz >= 64 and nnz*4 > 2000.
        let mut s = SparseCounts::new(1, 2000);
        assert!(matches!(s.rows[0], CountRow::Sparse(_)));
        for c in 0..600 {
            s.inc(0, c, (c + 1) as u32);
        }
        assert!(
            matches!(s.rows[0], CountRow::Dense(_)),
            "600/2000 nnz must have promoted"
        );
        assert_eq!(s.row_nnz(0), 600);
        for c in 0..2000 {
            let expect = if c < 600 { (c + 1) as u32 } else { 0 };
            assert_eq!(s.get(0, c), expect);
        }
        // Dec after promotion still works and keeps sums.
        s.dec(0, 10, 11);
        assert_eq!(s.get(0, 10), 0);
        assert_eq!(s.row_nnz(0), 599);
    }

    #[test]
    fn small_vocab_rows_are_dense_from_the_start() {
        // cols <= DENSE_ROW_MAX_COLS: the row is a plain array from new(),
        // so the sampler's hot-path get is an indexed load.
        let mut s = SparseCounts::new(2, 10);
        assert!(matches!(s.rows[1], CountRow::Dense(_)));
        for c in 0..10 {
            s.inc(1, c, 2);
        }
        assert_eq!(s.row_sum(1), 20);
        assert_eq!(s.row_nnz(1), 10);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn sparse_debug_underflow_panics() {
        let mut s = SparseCounts::new(1, 4);
        s.inc(0, 2, 1);
        s.dec(0, 3, 1);
    }

    #[test]
    fn smoothed_is_a_distribution() {
        let mut c = Counts2D::new(1, 3);
        c.inc(0, 0, 2);
        c.inc(0, 1, 1);
        let prior = 0.5;
        let p: f64 = (0..3).map(|w| smoothed(&c, 0, w, prior)).sum();
        assert!((p - 1.0).abs() < 1e-12);
        assert!(smoothed(&c, 0, 0, prior) > smoothed(&c, 0, 2, prior));
    }
}
