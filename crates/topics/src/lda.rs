//! Latent Dirichlet Allocation (Blei et al. \[19\]) by collapsed Gibbs
//! sampling — the first baseline of the paper's Fig. 4.
//!
//! Token-level topic assignments over user documents; words only (URLs and
//! timestamps are ignored, which is precisely the information the richer
//! models exploit).

use crate::corpus::Corpus;
use crate::counts::{smoothed, Counts2D};
use crate::model::{TopicModel, TrainConfig};
use pqsda_linalg::stats::sample_discrete;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A trained LDA model.
#[derive(Clone, Debug)]
pub struct Lda {
    cfg: TrainConfig,
    doc_topic: Counts2D,
    topic_word: Counts2D,
}

impl Lda {
    /// Trains by collapsed Gibbs sampling.
    ///
    /// # Panics
    /// Panics on an empty corpus or zero topics.
    pub fn train(corpus: &Corpus, cfg: &TrainConfig) -> Self {
        assert!(cfg.num_topics > 0, "lda: need at least one topic");
        assert!(corpus.num_docs() > 0, "lda: empty corpus");
        let k = cfg.num_topics;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut doc_topic = Counts2D::new(corpus.num_docs(), k);
        let mut topic_word = Counts2D::new(k, corpus.num_words);

        // Flatten tokens with random initial assignments.
        let mut tokens: Vec<(usize, u32, u32)> = Vec::new(); // (doc, word, z)
        for (d, doc) in corpus.docs.iter().enumerate() {
            for s in &doc.sessions {
                for &w in &s.words {
                    let z = rng.gen_range(0..k) as u32;
                    doc_topic.inc(d, z as usize, 1);
                    topic_word.inc(z as usize, w as usize, 1);
                    tokens.push((d, w, z));
                }
            }
        }

        let w_prior = cfg.beta;
        let vocab = corpus.num_words as f64;
        let mut weights = vec![0.0; k];
        for _ in 0..cfg.iterations {
            for t in 0..tokens.len() {
                let (d, w, z_old) = tokens[t];
                doc_topic.dec(d, z_old as usize, 1);
                topic_word.dec(z_old as usize, w as usize, 1);
                for (z, wt) in weights.iter_mut().enumerate() {
                    *wt = (doc_topic.get(d, z) as f64 + cfg.alpha)
                        * (topic_word.get(z, w as usize) as f64 + w_prior)
                        / (topic_word.row_sum(z) as f64 + vocab * w_prior);
                }
                let z_new = sample_discrete(&weights, rng.gen::<f64>()) as u32;
                doc_topic.inc(d, z_new as usize, 1);
                topic_word.inc(z_new as usize, w as usize, 1);
                tokens[t] = (d, w, z_new);
            }
        }

        Lda {
            cfg: *cfg,
            doc_topic,
            topic_word,
        }
    }

    /// The document–topic count table (exposed for tests and diagnostics).
    pub fn doc_topic_counts(&self) -> &Counts2D {
        &self.doc_topic
    }
}

impl TopicModel for Lda {
    fn name(&self) -> &str {
        "LDA"
    }

    fn num_topics(&self) -> usize {
        self.cfg.num_topics
    }

    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        (0..self.cfg.num_topics)
            .map(|z| smoothed(&self.doc_topic, doc, z, self.cfg.alpha))
            .collect()
    }

    fn topic_word_prob(&self, _doc: usize, k: usize, w: u32) -> f64 {
        smoothed(&self.topic_word, k, w as usize, self.cfg.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DocSession, Document};
    use pqsda_querylog::UserId;

    /// Two clearly separated "topics": words {0,1,2} vs {3,4,5}; docs use
    /// one side each.
    pub fn two_cluster_corpus() -> Corpus {
        let mk = |words: Vec<u32>, t: f64| DocSession::from_records(vec![(words, None)], t);
        let doc = |u: u32, base: u32| Document {
            user: UserId(u),
            sessions: (0..6)
                .map(|i| mk(vec![base, base + 1, base + 2, base + (i % 3)], 0.5))
                .collect(),
        };
        Corpus {
            docs: vec![doc(0, 0), doc(1, 0), doc(2, 3), doc(3, 3)],
            num_words: 6,
            num_urls: 0,
        }
    }

    fn cfg(k: usize) -> TrainConfig {
        TrainConfig {
            num_topics: k,
            iterations: 80,
            seed: 3,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn recovers_two_clusters() {
        let corpus = two_cluster_corpus();
        let lda = Lda::train(&corpus, &cfg(2));
        // Docs 0,1 should share a dominant topic distinct from docs 2,3.
        let t0 = lda.doc_topic(0);
        let t2 = lda.doc_topic(2);
        let dom0 = if t0[0] > t0[1] { 0 } else { 1 };
        let dom2 = if t2[0] > t2[1] { 0 } else { 1 };
        assert_ne!(dom0, dom2, "clusters not separated: {t0:?} vs {t2:?}");
        assert!(t0[dom0] > 0.7, "{t0:?}");
        // The dominant topic of doc 0 prefers its cluster's words.
        assert!(
            lda.topic_word_prob(0, dom0, 0) > lda.topic_word_prob(0, dom0, 3),
            "topic-word distributions not separated"
        );
    }

    #[test]
    fn doc_topic_is_a_distribution() {
        let corpus = two_cluster_corpus();
        let lda = Lda::train(&corpus, &cfg(3));
        for d in 0..corpus.num_docs() {
            let theta = lda.doc_topic(d);
            assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(theta.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn topic_word_is_a_distribution() {
        let corpus = two_cluster_corpus();
        let lda = Lda::train(&corpus, &cfg(2));
        for z in 0..2 {
            let total: f64 = (0..6).map(|w| lda.topic_word_prob(0, z, w)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = two_cluster_corpus();
        let a = Lda::train(&corpus, &cfg(2));
        let b = Lda::train(&corpus, &cfg(2));
        assert_eq!(a.doc_topic(0), b.doc_topic(0));
    }

    #[test]
    fn counts_are_conserved() {
        let corpus = two_cluster_corpus();
        let lda = Lda::train(&corpus, &cfg(4));
        assert_eq!(
            lda.doc_topic_counts().total() as usize,
            corpus.total_words()
        );
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn zero_topics_rejected() {
        let corpus = two_cluster_corpus();
        Lda::train(&corpus, &cfg(0));
    }
}
