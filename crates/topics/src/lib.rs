//! Generative topic models over search-engine query logs: the paper's
//! **User Profiling Model (UPM)** and the eight baselines of its Fig. 4.
//!
//! * [`corpus`] — the shared document structure: one document per user,
//!   sessions as the atomic generative unit (words + URLs + a normalized
//!   timestamp), plus the observed/held-out splits used for perplexity and
//!   for profile-then-test personalization;
//! * [`counts`] — count tables shared by all collapsed Gibbs samplers:
//!   dense [`counts::Counts2D`] for global tables and sparse
//!   [`counts::SparseCounts`] for the UPM's per-document tables;
//! * [`model`] — the [`model::TopicModel`] trait and the held-out
//!   perplexity harness (paper Eq. 35);
//! * [`lda`] — Latent Dirichlet Allocation \[19\];
//! * [`tot`] — Topics-over-Time \[29\];
//! * [`ptm`] — PTM1 / PTM2, the query-log personalization topic models of
//!   Carman et al. \[21\];
//! * [`clickmodels`] — the Meta-word (MWM), Term–URL (TUM) and
//!   Clickthrough (CTM) models of Jiang et al. \[34\];
//! * [`sstm`] — the session-and-time model standing in for SSTM \[35\]
//!   (spatial signals absent from our log; see DESIGN.md §4);
//! * [`upm`] — the paper's contribution: session-level topics, per-user
//!   word/URL distributions with *learned* Dirichlet hyperpriors
//!   (Eq. 23–27), Beta-distributed timestamps (Eq. 28–29) and the user
//!   profile θ (Eq. 30);
//! * [`upm_reference`] — a frozen copy of the pre-optimization UPM
//!   sampler, kept as the golden model the optimized sampler is proven
//!   bit-identical to.

// Index-style loops are deliberate throughout this crate: the code mirrors
// the paper's matrix/count-table notation (rows, columns, topic indices),
// where explicit indices are clearer than iterator chains.
#![allow(clippy::needless_range_loop)]

pub mod clickmodels;
pub mod corpus;
pub mod counts;
pub mod lda;
pub mod model;
pub mod ptm;
pub mod record_gibbs;
pub mod sstm;
pub mod store;
pub mod tot;
pub mod upm;
pub mod upm_reference;

pub use corpus::{Corpus, DocSession, Document, SplitCorpus};
pub use counts::{Counts2D, SparseCounts};
pub use model::{perplexity, TopicModel, TrainConfig};
pub use store::{load_upm, save_upm, upm_digest, StoreError};
pub use upm::{GibbsPhaseStats, Upm, UpmConfig};
pub use upm_reference::UpmReference;
