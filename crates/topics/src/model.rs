//! The common topic-model interface and the held-out perplexity harness
//! (paper Eq. 35 / Fig. 4).

use crate::corpus::SplitCorpus;

/// Shared training configuration for all models.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of latent topics `K`.
    pub num_topics: usize,
    /// Gibbs sweeps.
    pub iterations: usize,
    /// RNG seed (sampling is fully deterministic given the seed).
    pub seed: u64,
    /// Symmetric Dirichlet prior on document–topic mixtures.
    pub alpha: f64,
    /// Symmetric Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Symmetric Dirichlet prior on topic–URL distributions.
    pub delta: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            num_topics: 10,
            iterations: 120,
            seed: 7,
            alpha: 0.5,
            beta: 0.05,
            delta: 0.05,
        }
    }
}

/// A trained generative model over user documents.
///
/// The interface covers exactly what the reproduction needs: the user
/// profile θ_d, the (possibly per-user) topic–word and topic–URL
/// distributions, and an optional temporal density — from which the
/// provided [`TopicModel::predictive_word_prob`] assembles the predictive
/// distribution `p(w | d, t)` used by perplexity and by the online
/// personalization score (paper Eq. 31 evaluates the same building blocks).
pub trait TopicModel {
    /// Model name as reported in Fig. 4.
    fn name(&self) -> &str;

    /// Number of topics.
    fn num_topics(&self) -> usize;

    /// The posterior document–topic mixture θ_d (a distribution over
    /// topics; the user profile of paper Eq. 30).
    fn doc_topic(&self, doc: usize) -> Vec<f64>;

    /// `p(word w | topic k, document d)`. Global-distribution models ignore
    /// `doc`; the UPM's per-user distributions use it.
    fn topic_word_prob(&self, doc: usize, k: usize, w: u32) -> f64;

    /// `p(url u | topic k, document d)`. Models without a URL component
    /// return a uniform distribution so URL likelihoods cancel in
    /// comparisons.
    fn topic_url_prob(&self, _doc: usize, _k: usize, _u: u32) -> f64 {
        1.0
    }

    /// `ln p(t | topic k)` for temporal models; non-temporal models return
    /// 0 (an improper uniform that cancels during weight normalization).
    fn topic_time_ln_pdf(&self, _k: usize, _t: f64) -> f64 {
        0.0
    }

    /// Predictive word distribution
    /// `p(w | d, t) = Σ_k p(k | d, t) · p(w | k, d)` with
    /// `p(k | d, t) ∝ θ_dk · p(t | k)`.
    fn predictive_word_prob(&self, doc: usize, w: u32, time: f64) -> f64 {
        let theta = self.doc_topic(doc);
        let k = self.num_topics();
        let mut weights = vec![0.0; k];
        let mut ln_ts: Vec<f64> = (0..k).map(|z| self.topic_time_ln_pdf(z, time)).collect();
        let max_ln = ln_ts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for z in 0..k {
            ln_ts[z] -= max_ln;
            weights[z] = theta[z] * ln_ts[z].exp();
        }
        let wsum: f64 = weights.iter().sum();
        if wsum <= 0.0 {
            return f64::MIN_POSITIVE;
        }
        let mut p = 0.0;
        for z in 0..k {
            p += weights[z] / wsum * self.topic_word_prob(doc, z, w);
        }
        p.max(f64::MIN_POSITIVE)
    }
}

/// Held-out perplexity (paper Eq. 35): train on the observed split, then
///
/// ```text
/// Perplexity = exp( − Σ_d Σ_i ln p(w_i | M, w_observed) / N_held )
/// ```
///
/// Lower is better. Returns `None` when the split has no held-out words.
pub fn perplexity(model: &dyn TopicModel, split: &SplitCorpus) -> Option<f64> {
    let mut ln_sum = 0.0;
    let mut n = 0usize;
    for (doc, sessions) in split.held_out.iter().enumerate() {
        for s in sessions {
            for &w in &s.words {
                ln_sum += model.predictive_word_prob(doc, w, s.time).ln();
                n += 1;
            }
        }
    }
    if n == 0 {
        None
    } else {
        Some((-ln_sum / n as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, DocSession, Document};
    use pqsda_querylog::UserId;

    /// An oracle model that knows the true word distribution.
    struct Oracle {
        probs: Vec<f64>,
    }

    impl TopicModel for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn num_topics(&self) -> usize {
            1
        }
        fn doc_topic(&self, _d: usize) -> Vec<f64> {
            vec![1.0]
        }
        fn topic_word_prob(&self, _d: usize, _k: usize, w: u32) -> f64 {
            self.probs[w as usize]
        }
    }

    fn one_doc_split(words: Vec<u32>) -> SplitCorpus {
        let c = Corpus {
            docs: vec![Document {
                user: UserId(0),
                sessions: vec![
                    DocSession::from_records(vec![(vec![0], None)], 0.2),
                    DocSession::from_records(vec![(words, None)], 0.8),
                ],
            }],
            num_words: 4,
            num_urls: 0,
        };
        SplitCorpus::by_fraction(&c, 0.5)
    }

    #[test]
    fn uniform_model_has_vocab_perplexity() {
        let m = Oracle {
            probs: vec![0.25; 4],
        };
        let split = one_doc_split(vec![0, 1, 2, 3]);
        let p = perplexity(&m, &split).unwrap();
        assert!((p - 4.0).abs() < 1e-9, "perplexity {p}");
    }

    #[test]
    fn better_models_get_lower_perplexity() {
        let split = one_doc_split(vec![0, 0, 0, 1]);
        let uniform = Oracle {
            probs: vec![0.25; 4],
        };
        let informed = Oracle {
            probs: vec![0.7, 0.1, 0.1, 0.1],
        };
        assert!(perplexity(&informed, &split).unwrap() < perplexity(&uniform, &split).unwrap());
    }

    #[test]
    fn empty_held_out_is_none() {
        let c = Corpus {
            docs: vec![Document {
                user: UserId(0),
                sessions: vec![DocSession::from_records(vec![(vec![0], None)], 0.5)],
            }],
            num_words: 1,
            num_urls: 0,
        };
        let split = SplitCorpus::by_fraction(&c, 1.0);
        let m = Oracle { probs: vec![1.0] };
        assert!(perplexity(&m, &split).is_none());
    }

    #[test]
    fn predictive_probability_is_normalized_for_oracle() {
        let m = Oracle {
            probs: vec![0.1, 0.2, 0.3, 0.4],
        };
        let total: f64 = (0..4).map(|w| m.predictive_word_prob(0, w, 0.5)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
