//! PTM1 / PTM2 — the query-log personalization topic models of Carman et
//! al. \[21\], two baselines of the paper's Fig. 4.
//!
//! Both assign one topic per *query record* within a user document. PTM1
//! generates only the query words from the topic; PTM2 additionally
//! generates the clicked URL from a topic–URL distribution, coupling query
//! intent and click behaviour.

use crate::corpus::Corpus;
use crate::model::{TopicModel, TrainConfig};
use crate::record_gibbs::{RecordFactors, RecordGibbs};

/// PTM1: record-level topics, words only.
#[derive(Clone, Debug)]
pub struct Ptm1 {
    inner: RecordGibbs,
}

impl Ptm1 {
    /// Trains PTM1.
    pub fn train(corpus: &Corpus, cfg: &TrainConfig) -> Self {
        Ptm1 {
            inner: RecordGibbs::train(
                corpus,
                cfg,
                RecordFactors {
                    use_urls: false,
                    use_click_indicator: false,
                },
            ),
        }
    }
}

impl TopicModel for Ptm1 {
    fn name(&self) -> &str {
        "PTM1"
    }
    fn num_topics(&self) -> usize {
        self.inner.cfg.num_topics
    }
    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        self.inner.doc_topic(doc)
    }
    fn topic_word_prob(&self, _doc: usize, k: usize, w: u32) -> f64 {
        self.inner.topic_word_prob(k, w)
    }
}

/// PTM2: record-level topics generating words and the clicked URL.
#[derive(Clone, Debug)]
pub struct Ptm2 {
    inner: RecordGibbs,
}

impl Ptm2 {
    /// Trains PTM2.
    pub fn train(corpus: &Corpus, cfg: &TrainConfig) -> Self {
        Ptm2 {
            inner: RecordGibbs::train(
                corpus,
                cfg,
                RecordFactors {
                    use_urls: true,
                    use_click_indicator: false,
                },
            ),
        }
    }
}

impl TopicModel for Ptm2 {
    fn name(&self) -> &str {
        "PTM2"
    }
    fn num_topics(&self) -> usize {
        self.inner.cfg.num_topics
    }
    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        self.inner.doc_topic(doc)
    }
    fn topic_word_prob(&self, _doc: usize, k: usize, w: u32) -> f64 {
        self.inner.topic_word_prob(k, w)
    }
    fn topic_url_prob(&self, _doc: usize, k: usize, u: u32) -> f64 {
        self.inner.topic_url_prob(k, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DocSession, Document};
    use pqsda_querylog::UserId;

    fn corpus() -> Corpus {
        let doc = |u: u32, wbase: u32, ubase: u32| Document {
            user: UserId(u),
            sessions: (0..6)
                .map(|i| {
                    DocSession::from_records(vec![(vec![wbase, wbase + (i % 2)], Some(ubase))], 0.5)
                })
                .collect(),
        };
        Corpus {
            docs: vec![doc(0, 0, 0), doc(1, 2, 1)],
            num_words: 4,
            num_urls: 2,
        }
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            num_topics: 2,
            iterations: 50,
            seed: 9,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn ptm1_separates_users_by_words() {
        let c = corpus();
        let m = Ptm1::train(&c, &cfg());
        assert_eq!(m.name(), "PTM1");
        let t0 = m.doc_topic(0);
        let t1 = m.doc_topic(1);
        let d0 = if t0[0] > t0[1] { 0 } else { 1 };
        let d1 = if t1[0] > t1[1] { 0 } else { 1 };
        assert_ne!(d0, d1);
    }

    #[test]
    fn ptm1_urls_are_uniform_placeholder() {
        let c = corpus();
        let m = Ptm1::train(&c, &cfg());
        // Default trait impl: URL factor cancels.
        assert_eq!(m.topic_url_prob(0, 0, 0), 1.0);
        assert_eq!(m.topic_url_prob(0, 1, 1), 1.0);
    }

    #[test]
    fn ptm2_learns_url_distributions() {
        let c = corpus();
        let m = Ptm2::train(&c, &cfg());
        assert_eq!(m.name(), "PTM2");
        let t0 = m.doc_topic(0);
        let d0 = if t0[0] > t0[1] { 0 } else { 1 };
        // User 0 always clicks url 0.
        assert!(m.topic_url_prob(0, d0, 0) > m.topic_url_prob(0, d0, 1));
    }

    #[test]
    fn both_models_expose_normalized_word_distributions() {
        let c = corpus();
        let m1 = Ptm1::train(&c, &cfg());
        let m2 = Ptm2::train(&c, &cfg());
        for z in 0..2 {
            let s1: f64 = (0..4).map(|w| m1.topic_word_prob(0, z, w)).sum();
            let s2: f64 = (0..4).map(|w| m2.topic_word_prob(0, z, w)).sum();
            assert!((s1 - 1.0).abs() < 1e-9);
            assert!((s2 - 1.0).abs() < 1e-9);
        }
    }
}
