//! Shared record-level collapsed Gibbs engine.
//!
//! PTM1/PTM2 (Carman et al. \[21\]) and the Clickthrough Model (Jiang et al.
//! \[34\]) all assign one topic per *log record* (one query submission and
//! its clicked URL); they differ only in which factors enter the
//! conditional: the query words always, the clicked URL optionally, and —
//! for CTM — a per-topic Bernoulli click propensity. This engine implements
//! the union and the wrappers pick the factors.

use crate::corpus::Corpus;
use crate::counts::{ln_block_weight_cached, smoothed, to_multiset, Counts2D};
use crate::model::TrainConfig;
use pqsda_linalg::special::ln_rising;
use pqsda_linalg::stats::{sample_discrete, softmax_in_place};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Minimum per-thread work (topic count × record size) before the
/// conditional evaluation fans out over the worker pool; test-sized topic
/// counts stay on the serial path where dispatch would dominate.
const MIN_TOPIC_WORK: usize = 8192;

/// Which factors the record-level conditional uses.
#[derive(Clone, Copy, Debug)]
pub struct RecordFactors {
    /// Include the clicked URL's topic–URL factor.
    pub use_urls: bool,
    /// Include the per-topic Bernoulli click-propensity factor (CTM).
    pub use_click_indicator: bool,
}

/// A trained record-level model (the state shared by PTM1/PTM2/CTM).
#[derive(Clone, Debug)]
pub struct RecordGibbs {
    pub(crate) cfg: TrainConfig,
    pub(crate) factors: RecordFactors,
    /// Documents × topics, counting *records*.
    pub(crate) doc_topic: Counts2D,
    /// Topics × words.
    pub(crate) topic_word: Counts2D,
    /// Topics × URLs.
    pub(crate) topic_url: Counts2D,
    /// Per topic: (records with a click, records total) for the click
    /// propensity π_z under a Beta(1,1) prior.
    pub(crate) clicks: Vec<(u32, u32)>,
}

struct RecordSlot {
    doc: usize,
    words: Vec<(u32, u32)>,
    url: Option<u32>,
    z: u32,
}

impl RecordGibbs {
    /// Trains on the corpus with the chosen factors.
    pub fn train(corpus: &Corpus, cfg: &TrainConfig, factors: RecordFactors) -> Self {
        assert!(cfg.num_topics > 0, "record model: need at least one topic");
        assert!(corpus.num_docs() > 0, "record model: empty corpus");
        let k = cfg.num_topics;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut doc_topic = Counts2D::new(corpus.num_docs(), k);
        let mut topic_word = Counts2D::new(k, corpus.num_words);
        let mut topic_url = Counts2D::new(k, corpus.num_urls.max(1));
        let mut clicks = vec![(0u32, 0u32); k];

        let mut slots: Vec<RecordSlot> = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            for s in &doc.sessions {
                for (words, url) in &s.records {
                    let z = rng.gen_range(0..k) as u32;
                    let ws = to_multiset(words);
                    add(
                        &mut doc_topic,
                        &mut topic_word,
                        &mut topic_url,
                        &mut clicks,
                        d,
                        &ws,
                        *url,
                        z,
                    );
                    slots.push(RecordSlot {
                        doc: d,
                        words: ws,
                        url: *url,
                        z,
                    });
                }
            }
        }

        // Prior-only `ln_rising(prior, 1)` terms — the zero-count fast path
        // of the Eq. 23-style numerators. The symmetric priors never change
        // during training, so these are computed exactly once.
        let ln_beta1 = ln_rising(cfg.beta, 1);
        let ln_delta1 = ln_rising(cfg.delta, 1);
        let mut ln_w = vec![0.0; k];
        for _ in 0..cfg.iterations {
            for i in 0..slots.len() {
                let RecordSlot { doc, z, url, .. } = slots[i];
                let words = std::mem::take(&mut slots[i].words);
                remove(
                    &mut doc_topic,
                    &mut topic_word,
                    &mut topic_url,
                    &mut clicks,
                    doc,
                    &words,
                    url,
                    z,
                );
                {
                    // Per-topic conditionals are independent, so they fan
                    // out over the worker pool for large topic counts; the
                    // chunked evaluation writes the same values the serial
                    // loop would, in the same slots.
                    let (doc_topic, topic_word, topic_url, clicks, words) =
                        (&doc_topic, &topic_word, &topic_url, &clicks, &words);
                    let eval_threads =
                        pqsda_parallel::effective_threads(0, k * (words.len() + 2), MIN_TOPIC_WORK);
                    pqsda_parallel::for_each_chunk_mut(&mut ln_w, eval_threads, |base, chunk| {
                        for (off, lw) in chunk.iter_mut().enumerate() {
                            let zz = base + off;
                            let mut acc = (doc_topic.get(doc, zz) as f64 + cfg.alpha).ln();
                            acc +=
                                ln_block_weight_cached(topic_word, zz, words, cfg.beta, ln_beta1);
                            if factors.use_urls {
                                if let Some(u) = url {
                                    acc += ln_block_weight_cached(
                                        topic_url,
                                        zz,
                                        &[(u, 1)],
                                        cfg.delta,
                                        ln_delta1,
                                    );
                                }
                            }
                            if factors.use_click_indicator {
                                let (c, n) = clicks[zz];
                                // Collapsed Bernoulli with Beta(1,1) prior.
                                let p_click = (c as f64 + 1.0) / (n as f64 + 2.0);
                                acc += if url.is_some() {
                                    p_click.ln()
                                } else {
                                    (1.0 - p_click).ln()
                                };
                            }
                            *lw = acc;
                        }
                    });
                }
                softmax_in_place(&mut ln_w);
                let z_new = sample_discrete(&ln_w, rng.gen::<f64>()) as u32;
                add(
                    &mut doc_topic,
                    &mut topic_word,
                    &mut topic_url,
                    &mut clicks,
                    doc,
                    &words,
                    url,
                    z_new,
                );
                slots[i].words = words;
                slots[i].z = z_new;
            }
        }

        RecordGibbs {
            cfg: *cfg,
            factors,
            doc_topic,
            topic_word,
            topic_url,
            clicks,
        }
    }

    /// θ_d over record counts.
    pub fn doc_topic(&self, doc: usize) -> Vec<f64> {
        (0..self.cfg.num_topics)
            .map(|z| smoothed(&self.doc_topic, doc, z, self.cfg.alpha))
            .collect()
    }

    /// Collapsed topic–word posterior mean.
    pub fn topic_word_prob(&self, k: usize, w: u32) -> f64 {
        smoothed(&self.topic_word, k, w as usize, self.cfg.beta)
    }

    /// Collapsed topic–URL posterior mean.
    pub fn topic_url_prob(&self, k: usize, u: u32) -> f64 {
        smoothed(&self.topic_url, k, u as usize, self.cfg.delta)
    }

    /// The factor set this model was trained with.
    pub fn factors(&self) -> RecordFactors {
        self.factors
    }

    /// Posterior click propensity of a topic.
    pub fn click_propensity(&self, k: usize) -> f64 {
        let (c, n) = self.clicks[k];
        (c as f64 + 1.0) / (n as f64 + 2.0)
    }
}

#[allow(clippy::too_many_arguments)]
fn add(
    doc_topic: &mut Counts2D,
    topic_word: &mut Counts2D,
    topic_url: &mut Counts2D,
    clicks: &mut [(u32, u32)],
    d: usize,
    words: &[(u32, u32)],
    url: Option<u32>,
    z: u32,
) {
    doc_topic.inc(d, z as usize, 1);
    for &(w, n) in words {
        topic_word.inc(z as usize, w as usize, n);
    }
    if let Some(u) = url {
        topic_url.inc(z as usize, u as usize, 1);
        clicks[z as usize].0 += 1;
    }
    clicks[z as usize].1 += 1;
}

#[allow(clippy::too_many_arguments)]
fn remove(
    doc_topic: &mut Counts2D,
    topic_word: &mut Counts2D,
    topic_url: &mut Counts2D,
    clicks: &mut [(u32, u32)],
    d: usize,
    words: &[(u32, u32)],
    url: Option<u32>,
    z: u32,
) {
    doc_topic.dec(d, z as usize, 1);
    for &(w, n) in words {
        topic_word.dec(z as usize, w as usize, n);
    }
    if let Some(u) = url {
        topic_url.dec(z as usize, u as usize, 1);
        clicks[z as usize].0 -= 1;
    }
    clicks[z as usize].1 -= 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DocSession, Document};
    use pqsda_querylog::UserId;

    /// Two clusters where words AND urls co-vary.
    fn clustered_corpus() -> Corpus {
        let doc = |u: u32, wbase: u32, ubase: u32| Document {
            user: UserId(u),
            sessions: (0..5)
                .map(|i| {
                    DocSession::from_records(
                        vec![
                            (vec![wbase, wbase + 1], Some(ubase)),
                            (
                                vec![wbase + (i % 3)],
                                if i % 2 == 0 { Some(ubase + 1) } else { None },
                            ),
                        ],
                        0.5,
                    )
                })
                .collect(),
        };
        Corpus {
            docs: vec![doc(0, 0, 0), doc(1, 0, 0), doc(2, 3, 2), doc(3, 3, 2)],
            num_words: 6,
            num_urls: 4,
        }
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            num_topics: 2,
            iterations: 60,
            seed: 5,
            ..TrainConfig::default()
        }
    }

    const BOTH: RecordFactors = RecordFactors {
        use_urls: true,
        use_click_indicator: false,
    };

    #[test]
    fn separates_clusters_with_urls() {
        let corpus = clustered_corpus();
        let m = RecordGibbs::train(&corpus, &cfg(), BOTH);
        let t0 = m.doc_topic(0);
        let t2 = m.doc_topic(2);
        let dom0 = if t0[0] > t0[1] { 0 } else { 1 };
        let dom2 = if t2[0] > t2[1] { 0 } else { 1 };
        assert_ne!(dom0, dom2, "{t0:?} vs {t2:?}");
        // URL distributions separate too.
        assert!(m.topic_url_prob(dom0, 0) > m.topic_url_prob(dom0, 2));
    }

    #[test]
    fn distributions_are_normalized() {
        let corpus = clustered_corpus();
        let m = RecordGibbs::train(&corpus, &cfg(), BOTH);
        for z in 0..2 {
            let pw: f64 = (0..6).map(|w| m.topic_word_prob(z, w)).sum();
            let pu: f64 = (0..4).map(|u| m.topic_url_prob(z, u)).sum();
            assert!((pw - 1.0).abs() < 1e-9);
            assert!((pu - 1.0).abs() < 1e-9);
        }
        for d in 0..4 {
            let th = m.doc_topic(d);
            assert!((th.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn click_propensity_tracks_data() {
        let corpus = clustered_corpus();
        let m = RecordGibbs::train(
            &corpus,
            &cfg(),
            RecordFactors {
                use_urls: true,
                use_click_indicator: true,
            },
        );
        for z in 0..2 {
            let p = m.click_propensity(z);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic() {
        let corpus = clustered_corpus();
        let a = RecordGibbs::train(&corpus, &cfg(), BOTH);
        let b = RecordGibbs::train(&corpus, &cfg(), BOTH);
        assert_eq!(a.doc_topic(1), b.doc_topic(1));
    }
}
