//! SSTM-style session/temporal topic model (Jiang & Ng \[35\]) — the last
//! Fig. 4 baseline before the UPM.
//!
//! The original SSTM mines topics with *spatio*-temporal patterns; a plain
//! query log carries no locations, so per DESIGN.md §4 we implement its
//! log-applicable core: one topic per **session** (all words and URLs of a
//! session share it), global topic–word and topic–URL distributions, and a
//! per-topic Beta over session timestamps. Structurally this is "UPM minus
//! the per-user distributions and hyperparameter learning", which is what
//! makes it the most informative baseline bar in Fig. 4.

use crate::corpus::Corpus;
use crate::counts::{ln_block_weight, smoothed, to_multiset, Counts2D};
use crate::model::{TopicModel, TrainConfig};
use pqsda_linalg::stats::{sample_discrete, softmax_in_place, RunningMoments};
use pqsda_linalg::BetaDistribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A trained session-temporal model.
#[derive(Clone, Debug)]
pub struct Sstm {
    cfg: TrainConfig,
    doc_topic: Counts2D,
    topic_word: Counts2D,
    topic_url: Counts2D,
    taus: Vec<BetaDistribution>,
}

impl Sstm {
    /// Trains by session-blocked collapsed Gibbs with per-sweep Beta refits.
    pub fn train(corpus: &Corpus, cfg: &TrainConfig) -> Self {
        assert!(cfg.num_topics > 0, "sstm: need at least one topic");
        assert!(corpus.num_docs() > 0, "sstm: empty corpus");
        let k = cfg.num_topics;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut doc_topic = Counts2D::new(corpus.num_docs(), k);
        let mut topic_word = Counts2D::new(k, corpus.num_words);
        let mut topic_url = Counts2D::new(k, corpus.num_urls.max(1));
        let mut taus = vec![BetaDistribution::uniform(); k];

        struct Slot {
            doc: usize,
            words: Vec<(u32, u32)>,
            urls: Vec<(u32, u32)>,
            time: f64,
            z: u32,
        }
        let mut slots: Vec<Slot> = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            for s in &doc.sessions {
                let z = rng.gen_range(0..k) as u32;
                let words = to_multiset(&s.words);
                let urls = to_multiset(&s.urls);
                doc_topic.inc(d, z as usize, 1);
                for &(w, n) in &words {
                    topic_word.inc(z as usize, w as usize, n);
                }
                for &(u, n) in &urls {
                    topic_url.inc(z as usize, u as usize, n);
                }
                slots.push(Slot {
                    doc: d,
                    words,
                    urls,
                    time: s.time,
                    z,
                });
            }
        }

        let mut ln_w = vec![0.0; k];
        for _ in 0..cfg.iterations {
            for i in 0..slots.len() {
                let (doc, time, z_old) = (slots[i].doc, slots[i].time, slots[i].z);
                let words = std::mem::take(&mut slots[i].words);
                let urls = std::mem::take(&mut slots[i].urls);
                doc_topic.dec(doc, z_old as usize, 1);
                for &(w, n) in &words {
                    topic_word.dec(z_old as usize, w as usize, n);
                }
                for &(u, n) in &urls {
                    topic_url.dec(z_old as usize, u as usize, n);
                }
                for (z, lw) in ln_w.iter_mut().enumerate() {
                    let mut acc = (doc_topic.get(doc, z) as f64 + cfg.alpha).ln();
                    acc += ln_block_weight(&topic_word, z, &words, cfg.beta);
                    if !urls.is_empty() {
                        acc += ln_block_weight(&topic_url, z, &urls, cfg.delta);
                    }
                    acc += taus[z].ln_pdf(time);
                    *lw = acc;
                }
                softmax_in_place(&mut ln_w);
                let z_new = sample_discrete(&ln_w, rng.gen::<f64>()) as u32;
                doc_topic.inc(doc, z_new as usize, 1);
                for &(w, n) in &words {
                    topic_word.inc(z_new as usize, w as usize, n);
                }
                for &(u, n) in &urls {
                    topic_url.inc(z_new as usize, u as usize, n);
                }
                slots[i].words = words;
                slots[i].urls = urls;
                slots[i].z = z_new;
            }
            // Beta refit from session timestamps (paper Eq. 28–29).
            let mut moments = vec![RunningMoments::new(); k];
            for s in &slots {
                moments[s.z as usize].push(s.time);
            }
            for z in 0..k {
                taus[z] = if moments[z].count() >= 2 {
                    BetaDistribution::fit_moments(moments[z].mean(), moments[z].variance_biased())
                } else {
                    BetaDistribution::uniform()
                };
            }
        }

        Sstm {
            cfg: *cfg,
            doc_topic,
            topic_word,
            topic_url,
            taus,
        }
    }

    /// The fitted temporal distribution of a topic.
    pub fn tau(&self, k: usize) -> &BetaDistribution {
        &self.taus[k]
    }
}

impl TopicModel for Sstm {
    fn name(&self) -> &str {
        "SSTM"
    }
    fn num_topics(&self) -> usize {
        self.cfg.num_topics
    }
    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        (0..self.cfg.num_topics)
            .map(|z| smoothed(&self.doc_topic, doc, z, self.cfg.alpha))
            .collect()
    }
    fn topic_word_prob(&self, _doc: usize, k: usize, w: u32) -> f64 {
        smoothed(&self.topic_word, k, w as usize, self.cfg.beta)
    }
    fn topic_url_prob(&self, _doc: usize, k: usize, u: u32) -> f64 {
        smoothed(&self.topic_url, k, u as usize, self.cfg.delta)
    }
    fn topic_time_ln_pdf(&self, k: usize, t: f64) -> f64 {
        self.taus[k].ln_pdf(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DocSession, Document};
    use pqsda_querylog::UserId;

    /// Sessions whose words straddle two clusters; session coherence is the
    /// only signal that keeps cluster words together.
    fn session_corpus() -> Corpus {
        let mut docs = Vec::new();
        for u in 0..4u32 {
            let mut sessions = Vec::new();
            for i in 0..8 {
                let (wbase, ubase, t) = if i % 2 == 0 {
                    (0u32, 0u32, 0.15)
                } else {
                    (3u32, 1u32, 0.85)
                };
                sessions.push(DocSession::from_records(
                    vec![
                        (vec![wbase, wbase + 1], Some(ubase)),
                        (vec![wbase + 2], None),
                    ],
                    t + 0.01 * (i as f64 % 4.0),
                ));
            }
            docs.push(Document {
                user: UserId(u),
                sessions,
            });
        }
        Corpus {
            docs,
            num_words: 6,
            num_urls: 2,
        }
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            num_topics: 2,
            iterations: 80,
            seed: 17,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn sessions_keep_cluster_words_together() {
        let c = session_corpus();
        let m = Sstm::train(&c, &cfg());
        // Topics separate by time and words jointly.
        let m0 = m.tau(0).mean();
        let m1 = m.tau(1).mean();
        let (early, late) = if m0 < m1 { (0, 1) } else { (1, 0) };
        assert!(m.tau(early).mean() < 0.5 && m.tau(late).mean() > 0.5);
        assert!(m.topic_word_prob(0, early, 0) > m.topic_word_prob(0, early, 3));
        assert!(m.topic_word_prob(0, late, 3) > m.topic_word_prob(0, late, 0));
        assert!(m.topic_url_prob(0, early, 0) > m.topic_url_prob(0, early, 1));
    }

    #[test]
    fn distributions_are_normalized() {
        let c = session_corpus();
        let m = Sstm::train(&c, &cfg());
        for z in 0..2 {
            let sw: f64 = (0..6).map(|w| m.topic_word_prob(0, z, w)).sum();
            let su: f64 = (0..2).map(|u| m.topic_url_prob(0, z, u)).sum();
            assert!((sw - 1.0).abs() < 1e-9);
            assert!((su - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let c = session_corpus();
        assert_eq!(
            Sstm::train(&c, &cfg()).doc_topic(0),
            Sstm::train(&c, &cfg()).doc_topic(0)
        );
    }

    #[test]
    fn temporal_prediction_uses_session_time() {
        let c = session_corpus();
        let m = Sstm::train(&c, &cfg());
        let p_early = m.predictive_word_prob(0, 0, 0.12);
        let p_wrong_era = m.predictive_word_prob(0, 0, 0.9);
        assert!(p_early > p_wrong_era, "{p_early} vs {p_wrong_era}");
    }
}
