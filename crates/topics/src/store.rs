//! Binary persistence for trained UPM profiles.
//!
//! The paper motivates the UPM partly by storage: it "reduces the data
//! dimension of the plain text of query log data and makes the user
//! profiles concise enough for **offline storage** and efficient online
//! personalization" (§V-A). This module delivers that: a compact,
//! versioned, self-describing binary encoding of a trained [`Upm`] —
//! per-document count tables are stored sparsely, so a profile costs a few
//! bytes per (topic, word) a user actually touched rather than the dense
//! K×W table.
//!
//! The format is little-endian, length-prefixed, with a magic header and a
//! version byte; [`load_upm`] validates every length and bound, so a
//! truncated or corrupted file fails with a typed error instead of a
//! panic.

use crate::counts::SparseCounts;
use crate::upm::Upm;
use bytes::{Buf, BufMut};

/// Magic bytes opening every profile file.
pub const MAGIC: &[u8; 4] = b"UPM\x01";
/// Current format version.
pub const VERSION: u8 = 1;

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Unsupported version byte.
    BadVersion(u8),
    /// Input ended before a declared field.
    Truncated(&'static str),
    /// A count or index exceeded its declared bounds.
    OutOfBounds(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a UPM profile file"),
            StoreError::BadVersion(v) => write!(f, "unsupported profile version {v}"),
            StoreError::Truncated(what) => write!(f, "truncated profile: {what}"),
            StoreError::OutOfBounds(what) => write!(f, "corrupt profile: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn put_f64_slice(buf: &mut Vec<u8>, xs: &[f64]) {
    buf.put_u32_le(xs.len() as u32);
    for &x in xs {
        buf.put_f64_le(x);
    }
}

fn get_f64_slice(data: &mut &[u8], what: &'static str) -> Result<Vec<f64>, StoreError> {
    if data.remaining() < 4 {
        return Err(StoreError::Truncated(what));
    }
    let n = data.get_u32_le() as usize;
    if data.remaining() < n * 8 {
        return Err(StoreError::Truncated(what));
    }
    Ok((0..n).map(|_| data.get_f64_le()).collect())
}

/// Sparse encoding of a count table: rows, cols, then per row the number
/// of non-zero cells followed by (col, value) pairs in ascending column
/// order. [`SparseCounts::for_each_nonzero`] visits cells exactly the way
/// the original dense row scan did, so the byte stream is identical to the
/// format every version-1 profile was written with.
fn put_counts(buf: &mut Vec<u8>, c: &SparseCounts) {
    buf.put_u32_le(c.rows() as u32);
    buf.put_u32_le(c.cols() as u32);
    for r in 0..c.rows() {
        buf.put_u32_le(c.row_nnz(r) as u32);
        c.for_each_nonzero(r, |col, v| {
            buf.put_u32_le(col as u32);
            buf.put_u32_le(v);
        });
    }
}

fn get_counts(data: &mut &[u8]) -> Result<SparseCounts, StoreError> {
    if data.remaining() < 8 {
        return Err(StoreError::Truncated("count table header"));
    }
    let rows = data.get_u32_le() as usize;
    let cols = data.get_u32_le() as usize;
    // A corrupted header must not drive a huge allocation: each row costs
    // at least 4 bytes (its nnz header), each column at least one cell
    // somewhere, so bound the table by what the input could encode (the
    // sparse representation can still promote a row to dense).
    if rows.saturating_mul(cols) > 64 * 1024 * 1024 {
        return Err(StoreError::OutOfBounds("count table size"));
    }
    let mut c = SparseCounts::new(rows, cols);
    for r in 0..rows {
        if data.remaining() < 4 {
            return Err(StoreError::Truncated("count row header"));
        }
        let nnz = data.get_u32_le() as usize;
        if data.remaining() < nnz * 8 {
            return Err(StoreError::Truncated("count row cells"));
        }
        for _ in 0..nnz {
            let col = data.get_u32_le() as usize;
            let v = data.get_u32_le();
            if col >= cols {
                return Err(StoreError::OutOfBounds("count column index"));
            }
            c.inc(r, col, v);
        }
    }
    Ok(c)
}

/// Serializes a trained model into `buf`.
pub fn save_upm(upm: &Upm, buf: &mut Vec<u8>) {
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    let (cfg, num_words, num_urls, docs, globals) = upm.store_parts();
    // Config (enough to resume scoring; training state is not needed).
    buf.put_u32_le(globals.0.len() as u32); // K
    buf.put_u32_le(num_words as u32);
    buf.put_u32_le(num_urls as u32);
    buf.put_f64_le(cfg.base.alpha);
    buf.put_f64_le(cfg.base.beta);
    buf.put_f64_le(cfg.base.delta);
    // Globals.
    let (alpha, beta, delta, taus, beta_sums, delta_sums) = globals;
    put_f64_slice(buf, alpha);
    for b in beta {
        put_f64_slice(buf, b);
    }
    for d in delta {
        put_f64_slice(buf, d);
    }
    put_f64_slice(buf, beta_sums);
    put_f64_slice(buf, delta_sums);
    buf.put_u32_le(taus.len() as u32);
    for t in taus {
        buf.put_f64_le(t.alpha());
        buf.put_f64_le(t.beta());
    }
    // Per-document state.
    buf.put_u32_le(docs.len() as u32);
    for (topic_counts, topic_word, topic_url) in docs {
        buf.put_u32_le(topic_counts.len() as u32);
        for &c in topic_counts {
            buf.put_u32_le(c);
        }
        put_counts(buf, topic_word);
        put_counts(buf, topic_url);
    }
}

/// A stable content digest of a trained model: FNV-1a over the
/// [`save_upm`] byte image. Two models digest equal iff they serialize
/// identically — every count, hyperparameter and τ bit participates.
///
/// The serving layer stamps each shard snapshot's profile store with this
/// value (next to the graph digest) so concurrent readers can verify the
/// graph+profile pair they answered from is one registered generation.
pub fn upm_digest(upm: &Upm) -> u64 {
    let mut buf = Vec::new();
    save_upm(upm, &mut buf);
    pqsda_querylog::hash::fnv1a_bytes(&buf)
}

/// Deserializes a model saved with [`save_upm`].
pub fn load_upm(mut data: &[u8]) -> Result<Upm, StoreError> {
    if data.remaining() < 5 {
        return Err(StoreError::BadMagic);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(StoreError::BadVersion(version));
    }
    if data.remaining() < 12 + 24 {
        return Err(StoreError::Truncated("header"));
    }
    let k = data.get_u32_le() as usize;
    let num_words = data.get_u32_le() as usize;
    let num_urls = data.get_u32_le() as usize;
    if k == 0 || k > 1 << 16 || num_words > 1 << 28 || num_urls > 1 << 28 {
        return Err(StoreError::OutOfBounds("header sizes"));
    }
    let base_alpha = data.get_f64_le();
    let base_beta = data.get_f64_le();
    let base_delta = data.get_f64_le();

    let alpha = get_f64_slice(&mut data, "alpha")?;
    if alpha.len() != k {
        return Err(StoreError::OutOfBounds("alpha length"));
    }
    let mut beta = Vec::new();
    for _ in 0..k {
        let b = get_f64_slice(&mut data, "beta")?;
        if b.len() != num_words {
            return Err(StoreError::OutOfBounds("beta length"));
        }
        beta.push(b);
    }
    let mut delta = Vec::new();
    for _ in 0..k {
        let d = get_f64_slice(&mut data, "delta")?;
        if d.len() != num_urls {
            return Err(StoreError::OutOfBounds("delta length"));
        }
        delta.push(d);
    }
    let beta_sums = get_f64_slice(&mut data, "beta sums")?;
    let delta_sums = get_f64_slice(&mut data, "delta sums")?;
    if beta_sums.len() != k || delta_sums.len() != k {
        return Err(StoreError::OutOfBounds("prior sum lengths"));
    }
    if data.remaining() < 4 {
        return Err(StoreError::Truncated("taus"));
    }
    let n_taus = data.get_u32_le() as usize;
    if n_taus != k || data.remaining() < n_taus * 16 {
        return Err(StoreError::Truncated("taus"));
    }
    let mut taus = Vec::new();
    for _ in 0..k {
        let a = data.get_f64_le();
        let b = data.get_f64_le();
        if !(a > 0.0 && b > 0.0 && a.is_finite() && b.is_finite()) {
            return Err(StoreError::OutOfBounds("tau parameters"));
        }
        taus.push(pqsda_linalg::BetaDistribution::new(a, b));
    }

    if data.remaining() < 4 {
        return Err(StoreError::Truncated("documents"));
    }
    let n_docs = data.get_u32_le() as usize;
    let mut docs = Vec::new();
    for _ in 0..n_docs {
        if data.remaining() < 4 {
            return Err(StoreError::Truncated("doc header"));
        }
        let tc_len = data.get_u32_le() as usize;
        if tc_len != k || data.remaining() < tc_len * 4 {
            return Err(StoreError::Truncated("topic counts"));
        }
        let topic_counts: Vec<u32> = (0..tc_len).map(|_| data.get_u32_le()).collect();
        let topic_word = get_counts(&mut data)?;
        let topic_url = get_counts(&mut data)?;
        if topic_word.rows() != k
            || topic_word.cols() != num_words
            || topic_url.rows() != k
            || topic_url.cols() != num_urls.max(1)
        {
            return Err(StoreError::OutOfBounds("document table shape"));
        }
        docs.push((topic_counts, topic_word, topic_url));
    }

    Ok(Upm::from_store_parts(
        (base_alpha, base_beta, base_delta),
        num_words,
        num_urls,
        alpha,
        (beta, beta_sums),
        (delta, delta_sums),
        taus,
        docs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, DocSession, Document};
    use crate::model::{TopicModel, TrainConfig};
    use crate::upm::UpmConfig;
    use pqsda_querylog::UserId;

    fn trained() -> Upm {
        let session =
            |ws: Vec<u32>, u: Option<u32>, t: f64| DocSession::from_records(vec![(ws, u)], t);
        let corpus = Corpus {
            docs: vec![
                Document {
                    user: UserId(0),
                    sessions: (0..6)
                        .map(|i| session(vec![i % 3, 3], Some(0), 0.3))
                        .collect(),
                },
                Document {
                    user: UserId(1),
                    sessions: (0..6)
                        .map(|i| session(vec![4 + (i % 2)], Some(1), 0.7))
                        .collect(),
                },
            ],
            num_words: 6,
            num_urls: 2,
        };
        Upm::train(
            &corpus,
            &UpmConfig {
                base: TrainConfig {
                    num_topics: 2,
                    iterations: 30,
                    seed: 9,
                    ..TrainConfig::default()
                },
                hyper_every: 10,
                hyper_iterations: 5,
                threads: 1,
            },
        )
    }

    #[test]
    fn round_trip_preserves_every_prediction() {
        let upm = trained();
        let mut buf = Vec::new();
        save_upm(&upm, &mut buf);
        let loaded = load_upm(&buf).unwrap();
        assert_eq!(loaded.num_docs(), upm.num_docs());
        assert_eq!(loaded.alpha(), upm.alpha());
        for d in 0..upm.num_docs() {
            assert_eq!(loaded.doc_topic(d), upm.doc_topic(d));
            for z in 0..2 {
                for w in 0..6 {
                    assert_eq!(loaded.user_word_prob(d, z, w), upm.user_word_prob(d, z, w));
                }
                for u in 0..2 {
                    assert_eq!(loaded.user_url_prob(d, z, u), upm.user_url_prob(d, z, u));
                }
                assert_eq!(loaded.tau(z).alpha(), upm.tau(z).alpha());
            }
        }
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let upm = trained();
        assert_eq!(upm_digest(&upm), upm_digest(&upm));
        // A round-tripped model carries identical content.
        let mut buf = Vec::new();
        save_upm(&upm, &mut buf);
        assert_eq!(upm_digest(&load_upm(&buf).unwrap()), upm_digest(&upm));
        // A smaller model (different content) digests differently.
        let other = Upm::train(
            &Corpus {
                docs: vec![Document {
                    user: UserId(0),
                    sessions: (0..4)
                        .map(|i| DocSession::from_records(vec![(vec![i % 3], Some(0))], 0.4))
                        .collect(),
                }],
                num_words: 6,
                num_urls: 2,
            },
            &UpmConfig {
                base: TrainConfig {
                    num_topics: 2,
                    iterations: 10,
                    seed: 11,
                    ..TrainConfig::default()
                },
                hyper_every: 0,
                hyper_iterations: 0,
                threads: 1,
            },
        );
        assert_ne!(upm_digest(&other), upm_digest(&upm));
    }

    #[test]
    fn sparse_encoding_is_compact() {
        let upm = trained();
        let mut buf = Vec::new();
        save_upm(&upm, &mut buf);
        // Dense per-doc tables would be 2 docs × 2 topics × (6+2) cells × 4B
        // plus the global vectors; the sparse profile must beat the naive
        // dense-plus-floats bound comfortably at real scales. Here we just
        // sanity-check the file is small and non-trivial.
        assert!(buf.len() > 64);
        assert!(
            buf.len() < 4096,
            "profile unexpectedly large: {}",
            buf.len()
        );
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        assert_eq!(load_upm(b"nope").unwrap_err(), StoreError::BadMagic);
        let mut buf = Vec::new();
        save_upm(&trained(), &mut buf);
        buf[4] = 99; // version byte
        assert_eq!(load_upm(&buf).unwrap_err(), StoreError::BadVersion(99));
    }

    #[test]
    fn rejects_truncation_at_any_point() {
        let mut buf = Vec::new();
        save_upm(&trained(), &mut buf);
        // Every strict prefix must fail cleanly, never panic.
        for cut in (0..buf.len()).step_by(7) {
            let r = load_upm(&buf[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn rejects_corrupted_column_index() {
        let upm = trained();
        let mut buf = Vec::new();
        save_upm(&upm, &mut buf);
        // Flip bytes late in the stream (count-table region) until decoding
        // errs; it must never panic.
        let mut rejected = 0;
        for i in (buf.len() - 64..buf.len()).step_by(3) {
            let mut copy = buf.clone();
            copy[i] ^= 0xFF;
            if load_upm(&copy).is_err() {
                rejected += 1;
            }
        }
        let _ = rejected; // any outcome is fine as long as nothing panicked
    }
}
