//! Topics-over-Time (Wang & McCallum \[29\]) — LDA plus a per-topic Beta
//! distribution over normalized timestamps, refit by moment matching after
//! every sweep. The UPM borrows exactly this temporal treatment (paper
//! Eq. 22, 28–29), so TOT is the ablation "UPM's time component without its
//! session coupling or per-user distributions".

use crate::corpus::Corpus;
use crate::counts::{smoothed, Counts2D};
use crate::model::{TopicModel, TrainConfig};
use pqsda_linalg::stats::{sample_discrete, RunningMoments};
use pqsda_linalg::BetaDistribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A trained Topics-over-Time model.
#[derive(Clone, Debug)]
pub struct Tot {
    cfg: TrainConfig,
    doc_topic: Counts2D,
    topic_word: Counts2D,
    taus: Vec<BetaDistribution>,
}

impl Tot {
    /// Trains by collapsed Gibbs sampling with per-sweep Beta refits.
    pub fn train(corpus: &Corpus, cfg: &TrainConfig) -> Self {
        assert!(cfg.num_topics > 0, "tot: need at least one topic");
        assert!(corpus.num_docs() > 0, "tot: empty corpus");
        let k = cfg.num_topics;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut doc_topic = Counts2D::new(corpus.num_docs(), k);
        let mut topic_word = Counts2D::new(k, corpus.num_words);
        let mut taus = vec![BetaDistribution::uniform(); k];

        // (doc, word, time, z)
        let mut tokens: Vec<(usize, u32, f64, u32)> = Vec::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            for s in &doc.sessions {
                for &w in &s.words {
                    let z = rng.gen_range(0..k) as u32;
                    doc_topic.inc(d, z as usize, 1);
                    topic_word.inc(z as usize, w as usize, 1);
                    tokens.push((d, w, s.time, z));
                }
            }
        }

        let vocab = corpus.num_words as f64;
        let mut weights = vec![0.0; k];
        for _ in 0..cfg.iterations {
            for t in 0..tokens.len() {
                let (d, w, time, z_old) = tokens[t];
                doc_topic.dec(d, z_old as usize, 1);
                topic_word.dec(z_old as usize, w as usize, 1);
                for (z, wt) in weights.iter_mut().enumerate() {
                    let base = (doc_topic.get(d, z) as f64 + cfg.alpha)
                        * (topic_word.get(z, w as usize) as f64 + cfg.beta)
                        / (topic_word.row_sum(z) as f64 + vocab * cfg.beta);
                    *wt = base * taus[z].pdf(time);
                }
                let z_new = sample_discrete(&weights, rng.gen::<f64>()) as u32;
                doc_topic.inc(d, z_new as usize, 1);
                topic_word.inc(z_new as usize, w as usize, 1);
                tokens[t] = (d, w, time, z_new);
            }
            // Moment-matching refit (paper Eq. 28–29).
            let mut moments = vec![RunningMoments::new(); k];
            for &(_, _, time, z) in &tokens {
                moments[z as usize].push(time);
            }
            for z in 0..k {
                taus[z] = if moments[z].count() >= 2 {
                    BetaDistribution::fit_moments(moments[z].mean(), moments[z].variance_biased())
                } else {
                    BetaDistribution::uniform()
                };
            }
        }

        Tot {
            cfg: *cfg,
            doc_topic,
            topic_word,
            taus,
        }
    }

    /// The fitted temporal distribution of a topic.
    pub fn tau(&self, k: usize) -> &BetaDistribution {
        &self.taus[k]
    }
}

impl TopicModel for Tot {
    fn name(&self) -> &str {
        "TOT"
    }

    fn num_topics(&self) -> usize {
        self.cfg.num_topics
    }

    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        (0..self.cfg.num_topics)
            .map(|z| smoothed(&self.doc_topic, doc, z, self.cfg.alpha))
            .collect()
    }

    fn topic_word_prob(&self, _doc: usize, k: usize, w: u32) -> f64 {
        smoothed(&self.topic_word, k, w as usize, self.cfg.beta)
    }

    fn topic_time_ln_pdf(&self, k: usize, t: f64) -> f64 {
        self.taus[k].ln_pdf(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DocSession, Document};
    use pqsda_querylog::UserId;

    /// Two topics that use the SAME words but live in disjoint eras —
    /// only the timestamps can tell them apart.
    fn temporal_corpus() -> Corpus {
        let mk = |words: Vec<u32>, t: f64| DocSession::from_records(vec![(words, None)], t);
        let mut docs = Vec::new();
        for u in 0..4u32 {
            let mut sessions = Vec::new();
            for i in 0..8 {
                // Early era: words 0..3 around t≈0.12; late era: words 3..6
                // around t≈0.88. Word 3 is shared.
                if i % 2 == 0 {
                    sessions.push(mk(vec![0, 1, 2, 3], 0.10 + 0.01 * (i as f64)));
                } else {
                    sessions.push(mk(vec![3, 4, 5], 0.85 + 0.01 * (i as f64)));
                }
            }
            docs.push(Document {
                user: UserId(u),
                sessions,
            });
        }
        Corpus {
            docs,
            num_words: 6,
            num_urls: 0,
        }
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            num_topics: 2,
            iterations: 120,
            seed: 11,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn learns_temporally_separated_topics() {
        let corpus = temporal_corpus();
        let tot = Tot::train(&corpus, &cfg());
        // One topic must concentrate early, the other late.
        let m0 = tot.tau(0).mean();
        let m1 = tot.tau(1).mean();
        let (early, late) = if m0 < m1 { (0, 1) } else { (1, 0) };
        assert!(
            tot.tau(early).mean() < 0.45 && tot.tau(late).mean() > 0.55,
            "means {m0} {m1}"
        );
        // Early topic prefers word 0, late topic prefers word 5.
        assert!(tot.topic_word_prob(0, early, 0) > tot.topic_word_prob(0, early, 5));
        assert!(tot.topic_word_prob(0, late, 5) > tot.topic_word_prob(0, late, 0));
    }

    #[test]
    fn time_sharpens_prediction_for_time_stamped_words() {
        let corpus = temporal_corpus();
        let tot = Tot::train(&corpus, &cfg());
        // At an early timestamp, early-era words should be far more likely.
        let p_early_word = tot.predictive_word_prob(0, 0, 0.1);
        let p_late_word = tot.predictive_word_prob(0, 5, 0.1);
        assert!(
            p_early_word > 2.0 * p_late_word,
            "{p_early_word} vs {p_late_word}"
        );
    }

    #[test]
    fn deterministic_training() {
        let corpus = temporal_corpus();
        let a = Tot::train(&corpus, &cfg());
        let b = Tot::train(&corpus, &cfg());
        assert_eq!(a.doc_topic(0), b.doc_topic(0));
        assert_eq!(a.tau(0).alpha(), b.tau(0).alpha());
    }

    #[test]
    fn taus_are_proper() {
        let corpus = temporal_corpus();
        let tot = Tot::train(&corpus, &cfg());
        for z in 0..2 {
            assert!(tot.tau(z).alpha() > 0.0 && tot.tau(z).beta() > 0.0);
        }
    }
}
