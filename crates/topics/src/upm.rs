//! The **User Profiling Model** (paper §V-A, Algorithm 2) — the
//! personalization engine of PQS-DA.
//!
//! Per the paper's generative process:
//!
//! * each user's log is one document `d` with mixture `θ_d ~ Dir(α)`;
//! * each topic `k` has **per-document** word and URL distributions
//!   `φ_kd ~ Dir(β_k)`, `Ω_kd ~ Dir(δ_k)` — two users interested in the
//!   same topic keep their own word usage ("Toyota" vs "Ford") while
//!   sharing strength through the common hyperprior vectors `β_k`, `δ_k`;
//! * each **session** draws one topic `z ~ Mult(θ_d)`; its words come from
//!   `φ_zd`, its URLs (when the indicator `X_ds = 1`) from `Ω_zd`, and its
//!   timestamp from `Beta(τ_z)`;
//! * inference is collapsed Gibbs over session assignments (Eq. 23) with
//!   the Gamma-ratio products evaluated as rising factorials;
//! * "different from conventional topic models such as LDA, it is
//!   imperative to learn the hyperparameters of UPM": α, β, δ are
//!   re-estimated by L-BFGS on the complete-likelihood objectives of
//!   Eq. 25–27 (log-reparameterized for positivity), and τ by moment
//!   matching (Eq. 28–29);
//! * the user profile is `θ_dk = (C_dk + α_k) / Σ_k' (C_dk' + α_k')`
//!   (Eq. 30).
//!
//! ## Parallel sampling
//!
//! The paper notes the UPM "can take advantage of parallel Gibbs sampling
//! paradigms such as \[31\] and it can scale to very large datasets". For
//! the UPM this is better than the approximate AD-LDA of \[31\]: because
//! *every count table is per-document* (only the hyperparameters and τ are
//! global, and those update between sweeps), document-parallel sampling is
//! **exact**, not approximate. Each document draws from its own
//! deterministic RNG stream seeded by `(seed, sweep, doc)`, so the result
//! is bit-identical for any thread count — `threads: 1` and `threads: 8`
//! produce the same model.

use crate::corpus::Corpus;
use crate::counts::{to_multiset, Counts2D};
use crate::model::{TopicModel, TrainConfig};
use pqsda_linalg::special::{digamma, ln_gamma, ln_rising};
use pqsda_linalg::stats::{sample_discrete, softmax_in_place, RunningMoments};
use pqsda_linalg::{BetaDistribution, Lbfgs, LbfgsConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// UPM-specific training configuration.
#[derive(Clone, Copy, Debug)]
pub struct UpmConfig {
    /// The shared sampler settings (topic count, sweeps, seed, initial
    /// symmetric values for α/β/δ).
    pub base: TrainConfig,
    /// Run the hyperparameter optimization every this many sweeps
    /// (0 disables learning — the "UPM minus hyperlearning" ablation).
    pub hyper_every: usize,
    /// L-BFGS iteration budget per hyperparameter update.
    pub hyper_iterations: usize,
    /// Worker threads for the (exact) document-parallel sweep; results are
    /// identical for any value. 0 and 1 both mean single-threaded.
    pub threads: usize,
}

impl Default for UpmConfig {
    fn default() -> Self {
        UpmConfig {
            base: TrainConfig::default(),
            hyper_every: 20,
            hyper_iterations: 15,
            threads: 1,
        }
    }
}

/// One session's sampling slot.
#[derive(Clone, Debug)]
struct Slot {
    words: Vec<(u32, u32)>,
    urls: Vec<(u32, u32)>,
    time: f64,
    z: u32,
}

/// All mutable per-document sampler state — the unit of parallelism.
#[derive(Clone, Debug)]
struct DocState {
    /// `C_dk`: sessions assigned to each topic.
    topic_counts: Vec<u32>,
    /// `C^{KWD}` for this document: topics × words.
    topic_word: Counts2D,
    /// `C^{KUD}` for this document: topics × URLs.
    topic_url: Counts2D,
    /// The document's sessions.
    slots: Vec<Slot>,
}

/// Global (read-only within a sweep) parameters.
#[derive(Clone, Debug)]
struct Globals {
    alpha: Vec<f64>,
    beta: Vec<Vec<f64>>,
    delta: Vec<Vec<f64>>,
    beta_sums: Vec<f64>,
    delta_sums: Vec<f64>,
    taus: Vec<BetaDistribution>,
}

/// A trained User Profiling Model.
#[derive(Clone, Debug)]
pub struct Upm {
    cfg: UpmConfig,
    num_words: usize,
    num_urls: usize,
    docs: Vec<DocState>,
    globals: Globals,
}

impl Upm {
    /// Trains the UPM on a corpus.
    pub fn train(corpus: &Corpus, cfg: &UpmConfig) -> Self {
        let base = cfg.base;
        assert!(base.num_topics > 0, "upm: need at least one topic");
        assert!(corpus.num_docs() > 0, "upm: empty corpus");
        let k = base.num_topics;
        let w_vocab = corpus.num_words;
        let u_vocab = corpus.num_urls.max(1);

        let globals = Globals {
            alpha: vec![base.alpha; k],
            beta: vec![vec![base.beta; w_vocab]; k],
            delta: vec![vec![base.delta; u_vocab]; k],
            beta_sums: vec![base.beta * w_vocab as f64; k],
            delta_sums: vec![base.delta * u_vocab as f64; k],
            taus: vec![BetaDistribution::uniform(); k],
        };

        // Per-document initialization, seeded per doc (sweep index 0).
        let docs: Vec<DocState> = corpus
            .docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                let mut rng = doc_rng(base.seed, 0, d);
                let mut state = DocState {
                    topic_counts: vec![0; k],
                    topic_word: Counts2D::new(k, w_vocab),
                    topic_url: Counts2D::new(k, u_vocab),
                    slots: Vec::with_capacity(doc.sessions.len()),
                };
                for s in &doc.sessions {
                    let z = rng.gen_range(0..k) as u32;
                    let slot = Slot {
                        words: to_multiset(&s.words),
                        urls: to_multiset(&s.urls),
                        time: s.time,
                        z,
                    };
                    state.add(&slot, z);
                    state.slots.push(slot);
                }
                state
            })
            .collect();

        let mut model = Upm {
            cfg: *cfg,
            num_words: w_vocab,
            num_urls: u_vocab,
            docs,
            globals,
        };

        for sweep in 1..=base.iterations {
            model.sweep(sweep);
            model.refit_taus();
            if cfg.hyper_every > 0 && sweep % cfg.hyper_every == 0 {
                model.optimize_hyperparameters();
            }
        }
        model
    }

    /// One full Gibbs sweep, document-parallel when configured.
    fn sweep(&mut self, sweep: usize) {
        let seed = self.cfg.base.seed;
        let threads = self.cfg.threads.max(1);
        let globals = &self.globals;
        if threads == 1 || self.docs.len() < 2 * threads {
            for (d, doc) in self.docs.iter_mut().enumerate() {
                let mut rng = doc_rng(seed, sweep, d);
                doc.sample_all(globals, &mut rng);
            }
            return;
        }
        // Exact document-parallel sweep: disjoint &mut chunks, shared
        // read-only globals. Chunk boundaries do not affect the result —
        // each document's RNG stream depends only on (seed, sweep, doc).
        let chunk = self.docs.len().div_ceil(threads);
        let doc_base: Vec<usize> = (0..self.docs.len()).collect();
        crossbeam::scope(|scope| {
            for (ci, docs_chunk) in self.docs.chunks_mut(chunk).enumerate() {
                let base_idx = doc_base[ci * chunk];
                scope.spawn(move |_| {
                    for (off, doc) in docs_chunk.iter_mut().enumerate() {
                        let mut rng = doc_rng(seed, sweep, base_idx + off);
                        doc.sample_all(globals, &mut rng);
                    }
                });
            }
        })
        .expect("gibbs worker panicked");
    }

    fn refit_taus(&mut self) {
        let k = self.globals.alpha.len();
        let mut moments = vec![RunningMoments::new(); k];
        for doc in &self.docs {
            for s in &doc.slots {
                moments[s.z as usize].push(s.time);
            }
        }
        for z in 0..k {
            self.globals.taus[z] = if moments[z].count() >= 2 {
                BetaDistribution::fit_moments(moments[z].mean(), moments[z].variance_biased())
            } else {
                BetaDistribution::uniform()
            };
        }
    }

    /// One alternating pass of the Eq. 25–27 maximizations via L-BFGS with
    /// `x = ln(param)` reparameterization.
    fn optimize_hyperparameters(&mut self) {
        self.optimize_alpha();
        self.optimize_emission(true);
        self.optimize_emission(false);
    }

    /// Eq. 25: α over the document–topic counts.
    fn optimize_alpha(&mut self) {
        let k = self.globals.alpha.len();
        let rows: Vec<(Vec<f64>, f64)> = self
            .docs
            .iter()
            .map(|doc| {
                let row: Vec<f64> = doc.topic_counts.iter().map(|&c| c as f64).collect();
                let sum: f64 = row.iter().sum();
                (row, sum)
            })
            .collect();
        let mut objective = |x: &[f64], grad: &mut [f64]| -> f64 {
            let alpha: Vec<f64> = x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
            let a0: f64 = alpha.iter().sum();
            let mut nll = 0.0;
            let mut g = vec![0.0; k];
            for (row, sum) in &rows {
                nll -= ln_gamma(a0) - ln_gamma(sum + a0);
                let d0 = digamma(a0) - digamma(sum + a0);
                for z in 0..k {
                    if row[z] > 0.0 {
                        nll -= ln_gamma(row[z] + alpha[z]) - ln_gamma(alpha[z]);
                        g[z] -= digamma(row[z] + alpha[z]) - digamma(alpha[z]);
                    }
                    g[z] -= d0;
                }
            }
            for z in 0..k {
                grad[z] = g[z] * alpha[z];
            }
            nll
        };
        let x0: Vec<f64> = self.globals.alpha.iter().map(|a| a.ln()).collect();
        let out = Lbfgs::new(LbfgsConfig {
            max_iterations: self.cfg.hyper_iterations,
            ..LbfgsConfig::default()
        })
        .minimize(&mut objective, &x0);
        self.globals.alpha = out.x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
    }

    /// Eq. 26 (words, `is_words = true`) / Eq. 27 (URLs): per-topic prior
    /// vectors over the per-document emission tables.
    fn optimize_emission(&mut self, is_words: bool) {
        let k = self.globals.alpha.len();
        let vocab = if is_words {
            self.num_words
        } else {
            self.num_urls
        };
        for z in 0..k {
            let mut doc_rows: Vec<(Vec<(usize, f64)>, f64)> = Vec::new();
            for doc in &self.docs {
                let t = if is_words {
                    &doc.topic_word
                } else {
                    &doc.topic_url
                };
                let sum = t.row_sum(z) as f64;
                if sum == 0.0 {
                    continue; // document never uses topic z: contributes nothing
                }
                let sparse: Vec<(usize, f64)> = t
                    .row(z)
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(v, &c)| (v, c as f64))
                    .collect();
                doc_rows.push((sparse, sum));
            }
            if doc_rows.is_empty() {
                continue;
            }
            // MAP rather than MLE: a weak Gamma(a, b) hyperprior on every
            // prior cell. Pure maximum likelihood drives the prior of words
            // a topic never emitted (in the observed split) to zero, which
            // crushes their held-out probability; the Gamma acts as a soft
            // floor while leaving well-evidenced cells free to move. Shape
            // is chosen so the hyperprior mode sits at the symmetric
            // initialization.
            let init = if is_words {
                self.cfg.base.beta
            } else {
                self.cfg.base.delta
            };
            let gamma_b = 1.0;
            let gamma_a = 1.0 + gamma_b * init; // mode (a-1)/b = init
            let n_rows = doc_rows.len() as f64;
            let mut objective = |x: &[f64], grad: &mut [f64]| -> f64 {
                let prior: Vec<f64> = x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
                let p0: f64 = prior.iter().sum();
                let mut nll = 0.0;
                let mut g = vec![0.0; vocab];
                let dig_p0 = digamma(p0);
                let ln_gamma_p0 = ln_gamma(p0);
                for (sparse, sum) in &doc_rows {
                    nll -= ln_gamma_p0 - ln_gamma(sum + p0);
                    let d0 = dig_p0 - digamma(sum + p0);
                    for gz in g.iter_mut() {
                        *gz -= d0;
                    }
                    for &(v, c) in sparse {
                        nll -= ln_gamma(c + prior[v]) - ln_gamma(prior[v]);
                        g[v] -= digamma(c + prior[v]) - digamma(prior[v]);
                    }
                }
                // Gamma hyperprior, scaled with the number of groups so its
                // pull does not vanish on large corpora.
                for v in 0..vocab {
                    nll -= n_rows * ((gamma_a - 1.0) * prior[v].ln() - gamma_b * prior[v]);
                    g[v] -= n_rows * ((gamma_a - 1.0) / prior[v] - gamma_b);
                    grad[v] = g[v] * prior[v];
                }
                nll
            };
            let current = if is_words {
                &self.globals.beta[z]
            } else {
                &self.globals.delta[z]
            };
            let x0: Vec<f64> = current.iter().map(|b| b.ln()).collect();
            let out = Lbfgs::new(LbfgsConfig {
                max_iterations: self.cfg.hyper_iterations,
                ..LbfgsConfig::default()
            })
            .minimize(&mut objective, &x0);
            let learned: Vec<f64> = out.x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
            let sum: f64 = learned.iter().sum();
            if is_words {
                self.globals.beta[z] = learned;
                self.globals.beta_sums[z] = sum;
            } else {
                self.globals.delta[z] = learned;
                self.globals.delta_sums[z] = sum;
            }
        }
    }

    /// The learned α vector.
    pub fn alpha(&self) -> &[f64] {
        &self.globals.alpha
    }

    /// The learned word hyperprior of topic `k` (β_k, length W).
    pub fn beta_k(&self, k: usize) -> &[f64] {
        &self.globals.beta[k]
    }

    /// The learned URL hyperprior of topic `k` (δ_k, length U).
    pub fn delta_k(&self, k: usize) -> &[f64] {
        &self.globals.delta[k]
    }

    /// The fitted temporal distribution of topic `k`.
    pub fn tau(&self, k: usize) -> &BetaDistribution {
        &self.globals.taus[k]
    }

    /// The paper's Eq. 31 numerator building block:
    /// `p(w | z = k, d)` under the per-user distribution.
    pub fn user_word_prob(&self, doc: usize, k: usize, w: u32) -> f64 {
        let t = &self.docs[doc].topic_word;
        (t.get(k, w as usize) as f64 + self.globals.beta[k][w as usize])
            / (t.row_sum(k) as f64 + self.globals.beta_sums[k])
    }

    /// Per-user URL probability `p(u | z = k, d)`.
    pub fn user_url_prob(&self, doc: usize, k: usize, u: u32) -> f64 {
        let t = &self.docs[doc].topic_url;
        (t.get(k, u as usize) as f64 + self.globals.delta[k][u as usize])
            / (t.row_sum(k) as f64 + self.globals.delta_sums[k])
    }

    /// Number of documents profiled.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Internal view for the binary profile store (`crate::store`).
    #[allow(clippy::type_complexity)]
    pub(crate) fn store_parts(
        &self,
    ) -> (
        &UpmConfig,
        usize,
        usize,
        Vec<(&Vec<u32>, &Counts2D, &Counts2D)>,
        (
            &[f64],
            &[Vec<f64>],
            &[Vec<f64>],
            &[BetaDistribution],
            &[f64],
            &[f64],
        ),
    ) {
        (
            &self.cfg,
            self.num_words,
            self.num_urls,
            self.docs
                .iter()
                .map(|d| (&d.topic_counts, &d.topic_word, &d.topic_url))
                .collect(),
            (
                &self.globals.alpha,
                &self.globals.beta,
                &self.globals.delta,
                &self.globals.taus,
                &self.globals.beta_sums,
                &self.globals.delta_sums,
            ),
        )
    }

    /// Rebuilds a model from stored parts (`crate::store`). The training
    /// slots are not persisted — a loaded model scores and profiles but
    /// cannot resume sampling.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_store_parts(
        base_priors: (f64, f64, f64),
        num_words: usize,
        num_urls: usize,
        alpha: Vec<f64>,
        beta: (Vec<Vec<f64>>, Vec<f64>),
        delta: (Vec<Vec<f64>>, Vec<f64>),
        taus: Vec<BetaDistribution>,
        docs: Vec<(Vec<u32>, Counts2D, Counts2D)>,
    ) -> Self {
        let (beta, beta_sums) = beta;
        let (delta, delta_sums) = delta;
        Upm {
            cfg: UpmConfig {
                base: TrainConfig {
                    num_topics: alpha.len(),
                    iterations: 0,
                    seed: 0,
                    alpha: base_priors.0,
                    beta: base_priors.1,
                    delta: base_priors.2,
                },
                hyper_every: 0,
                hyper_iterations: 0,
                threads: 1,
            },
            num_words,
            num_urls,
            docs: docs
                .into_iter()
                .map(|(topic_counts, topic_word, topic_url)| DocState {
                    topic_counts,
                    topic_word,
                    topic_url,
                    slots: Vec::new(),
                })
                .collect(),
            globals: Globals {
                alpha,
                beta,
                delta,
                beta_sums,
                delta_sums,
                taus,
            },
        }
    }
}

impl DocState {
    fn add(&mut self, s: &Slot, z: u32) {
        self.topic_counts[z as usize] += 1;
        for &(w, n) in &s.words {
            self.topic_word.inc(z as usize, w as usize, n);
        }
        for &(u, n) in &s.urls {
            self.topic_url.inc(z as usize, u as usize, n);
        }
    }

    fn remove(&mut self, s: &Slot, z: u32) {
        self.topic_counts[z as usize] -= 1;
        for &(w, n) in &s.words {
            self.topic_word.dec(z as usize, w as usize, n);
        }
        for &(u, n) in &s.urls {
            self.topic_url.dec(z as usize, u as usize, n);
        }
    }

    /// The paper's Eq. 23 in log space, with the Gamma ratios written as
    /// rising factorials over this document's tables.
    fn ln_conditional(&self, g: &Globals, s: &Slot, z: usize) -> f64 {
        let mut acc = (self.topic_counts[z] as f64 + g.alpha[z]).ln();
        let tw = &self.topic_word;
        let mut n_total = 0usize;
        for &(w, n) in &s.words {
            acc += ln_rising(
                tw.get(z, w as usize) as f64 + g.beta[z][w as usize],
                n as usize,
            );
            n_total += n as usize;
        }
        acc -= ln_rising(tw.row_sum(z) as f64 + g.beta_sums[z], n_total);
        if !s.urls.is_empty() {
            let tu = &self.topic_url;
            let mut m_total = 0usize;
            for &(u, n) in &s.urls {
                acc += ln_rising(
                    tu.get(z, u as usize) as f64 + g.delta[z][u as usize],
                    n as usize,
                );
                m_total += n as usize;
            }
            acc -= ln_rising(tu.row_sum(z) as f64 + g.delta_sums[z], m_total);
        }
        acc + g.taus[z].ln_pdf(s.time)
    }

    /// Resamples every session of this document.
    fn sample_all(&mut self, g: &Globals, rng: &mut SmallRng) {
        let k = g.alpha.len();
        let mut ln_w = vec![0.0; k];
        for i in 0..self.slots.len() {
            let z_old = self.slots[i].z;
            let slot = std::mem::replace(
                &mut self.slots[i],
                Slot {
                    words: Vec::new(),
                    urls: Vec::new(),
                    time: 0.0,
                    z: 0,
                },
            );
            self.remove(&slot, z_old);
            for (z, lw) in ln_w.iter_mut().enumerate() {
                *lw = self.ln_conditional(g, &slot, z);
            }
            softmax_in_place(&mut ln_w);
            let z_new = sample_discrete(&ln_w, rng.gen::<f64>()) as u32;
            self.add(&slot, z_new);
            self.slots[i] = Slot { z: z_new, ..slot };
        }
    }
}

/// The per-(seed, sweep, document) RNG stream — the key to exact,
/// thread-count-independent parallel sampling.
fn doc_rng(seed: u64, sweep: usize, doc: usize) -> SmallRng {
    SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((sweep as u64) << 32)
            .wrapping_add(doc as u64),
    )
}

impl TopicModel for Upm {
    fn name(&self) -> &str {
        "UPM"
    }

    fn num_topics(&self) -> usize {
        self.globals.alpha.len()
    }

    /// Eq. 30 with the learned (generally asymmetric) α.
    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        let a0: f64 = self.globals.alpha.iter().sum();
        let total: u32 = self.docs[doc].topic_counts.iter().sum();
        let denom = total as f64 + a0;
        self.docs[doc]
            .topic_counts
            .iter()
            .zip(&self.globals.alpha)
            .map(|(&c, &a)| (c as f64 + a) / denom)
            .collect()
    }

    fn topic_word_prob(&self, doc: usize, k: usize, w: u32) -> f64 {
        self.user_word_prob(doc, k, w)
    }

    fn topic_url_prob(&self, doc: usize, k: usize, u: u32) -> f64 {
        self.user_url_prob(doc, k, u)
    }

    fn topic_time_ln_pdf(&self, k: usize, t: f64) -> f64 {
        self.globals.taus[k].ln_pdf(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DocSession, Document};
    use pqsda_querylog::UserId;

    /// The paper's Toyota/Ford scenario: two users share a "cars" topic
    /// (words 0..4 = generic car words) but differ in brand words
    /// (4 = toyota, 5 = ford); a third user is in another topic entirely
    /// (words 6..9).
    fn toyota_ford_corpus() -> Corpus {
        let session =
            |ws: Vec<u32>, u: Option<u32>, t: f64| DocSession::from_records(vec![(ws, u)], t);
        let cars_user = |uid: u32, brand: u32, url: u32| Document {
            user: UserId(uid),
            sessions: (0..8)
                .map(|i| session(vec![i % 4, brand], Some(url), 0.3 + 0.05 * (i % 4) as f64))
                .collect(),
        };
        let other_user = Document {
            user: UserId(2),
            sessions: (0..8)
                .map(|i| session(vec![6 + (i % 4)], Some(2), 0.7 + 0.02 * (i % 4) as f64))
                .collect(),
        };
        Corpus {
            docs: vec![cars_user(0, 4, 0), cars_user(1, 5, 1), other_user],
            num_words: 10,
            num_urls: 3,
        }
    }

    fn cfg() -> UpmConfig {
        UpmConfig {
            base: TrainConfig {
                num_topics: 2,
                iterations: 60,
                seed: 23,
                ..TrainConfig::default()
            },
            hyper_every: 20,
            hyper_iterations: 10,
            threads: 1,
        }
    }

    #[test]
    fn cars_users_share_topic_but_keep_brand_words() {
        let c = toyota_ford_corpus();
        let m = Upm::train(&c, &cfg());
        let t0 = m.doc_topic(0);
        let t1 = m.doc_topic(1);
        let t2 = m.doc_topic(2);
        let dom0 = if t0[0] > t0[1] { 0 } else { 1 };
        let dom1 = if t1[0] > t1[1] { 0 } else { 1 };
        let dom2 = if t2[0] > t2[1] { 0 } else { 1 };
        assert_eq!(dom0, dom1, "car users must share the cars topic");
        assert_ne!(dom0, dom2, "other user is in the other topic");
        // Per-user word distributions: the paper's core claim. User 0
        // weighs "toyota" (4) over "ford" (5) in the SAME topic; user 1
        // the reverse.
        assert!(
            m.user_word_prob(0, dom0, 4) > 3.0 * m.user_word_prob(0, dom0, 5),
            "user 0 must prefer toyota"
        );
        assert!(
            m.user_word_prob(1, dom1, 5) > 3.0 * m.user_word_prob(1, dom1, 4),
            "user 1 must prefer ford"
        );
        // And per-user URL preferences.
        assert!(m.user_url_prob(0, dom0, 0) > m.user_url_prob(0, dom0, 1));
        assert!(m.user_url_prob(1, dom1, 1) > m.user_url_prob(1, dom1, 0));
    }

    #[test]
    fn hyperparameter_learning_breaks_symmetry() {
        let c = toyota_ford_corpus();
        let m = Upm::train(&c, &cfg());
        let t0 = m.doc_topic(0);
        let cars = if t0[0] > t0[1] { 0 } else { 1 };
        let b = m.beta_k(cars);
        let car_avg: f64 = (0..4).map(|w| b[w]).sum::<f64>() / 4.0;
        let other_avg: f64 = (6..10).map(|w| b[w]).sum::<f64>() / 4.0;
        assert!(
            car_avg > other_avg,
            "learned beta must favor topic words: {car_avg} vs {other_avg}"
        );
        assert!(m.alpha().iter().all(|&a| a > 0.0 && a.is_finite()));
    }

    #[test]
    fn profiles_are_distributions() {
        let c = toyota_ford_corpus();
        let m = Upm::train(&c, &cfg());
        for d in 0..3 {
            let th = m.doc_topic(d);
            assert!((th.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let pw: f64 = (0..10).map(|w| m.user_word_prob(d, 0, w)).sum();
            assert!((pw - 1.0).abs() < 1e-9);
            let pu: f64 = (0..3).map(|u| m.user_url_prob(d, 0, u)).sum();
            assert!((pu - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn temporal_components_fit_session_times() {
        let c = toyota_ford_corpus();
        let m = Upm::train(&c, &cfg());
        let t2 = m.doc_topic(2);
        let other = if t2[0] > t2[1] { 0 } else { 1 };
        assert!(m.tau(other).mean() > m.tau(1 - other).mean());
    }

    #[test]
    fn disabling_hyperlearning_keeps_symmetric_priors() {
        let c = toyota_ford_corpus();
        let mut cfg = cfg();
        cfg.hyper_every = 0;
        let m = Upm::train(&c, &cfg);
        let b = m.beta_k(0);
        assert!(b.iter().all(|&x| (x - cfg.base.beta).abs() < 1e-12));
        assert!(m
            .alpha()
            .iter()
            .all(|&a| (a - cfg.base.alpha).abs() < 1e-12));
    }

    #[test]
    fn deterministic_training() {
        let c = toyota_ford_corpus();
        let a = Upm::train(&c, &cfg());
        let b = Upm::train(&c, &cfg());
        assert_eq!(a.doc_topic(0), b.doc_topic(0));
        assert_eq!(a.alpha(), b.alpha());
    }

    #[test]
    fn parallel_training_is_bit_identical_to_sequential() {
        // The headline property of the per-document design: thread count
        // does not change the model at all.
        let c = toyota_ford_corpus();
        let seq = Upm::train(&c, &cfg());
        for threads in [2usize, 4] {
            let par = Upm::train(&c, &UpmConfig { threads, ..cfg() });
            for d in 0..3 {
                assert_eq!(seq.doc_topic(d), par.doc_topic(d), "threads={threads}");
            }
            assert_eq!(seq.alpha(), par.alpha(), "threads={threads}");
            for z in 0..2 {
                assert_eq!(seq.beta_k(z), par.beta_k(z), "threads={threads}");
                assert_eq!(seq.tau(z).alpha(), par.tau(z).alpha());
            }
        }
    }
}
