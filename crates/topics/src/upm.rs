//! The **User Profiling Model** (paper §V-A, Algorithm 2) — the
//! personalization engine of PQS-DA.
//!
//! Per the paper's generative process:
//!
//! * each user's log is one document `d` with mixture `θ_d ~ Dir(α)`;
//! * each topic `k` has **per-document** word and URL distributions
//!   `φ_kd ~ Dir(β_k)`, `Ω_kd ~ Dir(δ_k)` — two users interested in the
//!   same topic keep their own word usage ("Toyota" vs "Ford") while
//!   sharing strength through the common hyperprior vectors `β_k`, `δ_k`;
//! * each **session** draws one topic `z ~ Mult(θ_d)`; its words come from
//!   `φ_zd`, its URLs (when the indicator `X_ds = 1`) from `Ω_zd`, and its
//!   timestamp from `Beta(τ_z)`;
//! * inference is collapsed Gibbs over session assignments (Eq. 23) with
//!   the Gamma-ratio products evaluated as rising factorials;
//! * "different from conventional topic models such as LDA, it is
//!   imperative to learn the hyperparameters of UPM": α, β, δ are
//!   re-estimated by L-BFGS on the complete-likelihood objectives of
//!   Eq. 25–27 (log-reparameterized for positivity), and τ by moment
//!   matching (Eq. 28–29);
//! * the user profile is `θ_dk = (C_dk + α_k) / Σ_k' (C_dk' + α_k')`
//!   (Eq. 30).
//!
//! ## Sampler performance
//!
//! Three mechanisms make the sweep fast without changing a single bit of
//! its output (asserted against [`crate::upm_reference::UpmReference`] by
//! the property tests; DESIGN.md §7 has the cost model):
//!
//! * **Transcendental caching.** The Eq. 23 numerator terms for
//!   zero-count cells — the overwhelming majority, since each user
//!   touches a sliver of the vocabulary — collapse to cached
//!   `ln_rising(β_zw, n)` tables over every in-session multiplicity
//!   ([`NumerTable`]), rebuilt only when a hyperparameter update changes
//!   `β`/`δ`. Nonzero-count cells with multiplicity ≥ 2 — recurring
//!   vocabulary under an already-used topic — read a lazily-filled,
//!   size-capped per-`(item, count)` row cache ([`NzNumerCache`]) shared
//!   across sweep workers and invalidated at the same points. The
//!   denominator `ln_rising(C_zd + Σβ_z, n)`
//!   and the `ln(C_dz + α_z)` topic term depend on their counts only
//!   through small integers, so they read per-topic tables over the
//!   integer grid the corpus can reach ([`DenomTable`]), rebuilt at the
//!   same hyperparameter updates. The Beta(τ) density is evaluated
//!   through its affine form `a₁·ln t' + b₁·ln(1−t') − ln B(τ₁,τ₂)`: the
//!   `(a₁, b₁, norm)` triple is refreshed at each τ refit and `ln t'`/
//!   `ln(1−t')` are computed once per slot at corpus load. Together these
//!   take the steady-state per-(slot, topic) cost from roughly six
//!   logarithms to table reads plus two multiply-adds.
//! * **Sparse per-document counts.** Per-document tables are
//!   [`SparseCounts`] (sorted `(col, count)` rows with a dense fallback
//!   for pathological fill) instead of dense `K × V` tables, so memory
//!   and cache traffic track each user's actual vocabulary.
//! * **Pooled parallel sweeps.** Document-parallel sweeps run on the
//!   persistent [`pqsda_parallel::WorkerPool`] — workers are parked
//!   between sweeps, not respawned per sweep — and the pool never
//!   oversubscribes the hardware.
//!
//! ## Parallel sampling
//!
//! The paper notes the UPM "can take advantage of parallel Gibbs sampling
//! paradigms such as \[31\] and it can scale to very large datasets". For
//! the UPM this is better than the approximate AD-LDA of \[31\]: because
//! *every count table is per-document* (only the hyperparameters and τ are
//! global, and those update between sweeps), document-parallel sampling is
//! **exact**, not approximate. Each document draws from its own
//! deterministic RNG stream seeded by `(seed, sweep, doc)`, so the result
//! is bit-identical for any thread count — `threads: 1` and `threads: 8`
//! produce the same model.

use std::time::Instant;

use crate::corpus::Corpus;
use crate::counts::{to_multiset, SparseCounts};
use crate::model::{TopicModel, TrainConfig};
use pqsda_linalg::beta::TIME_EPS;
use pqsda_linalg::special::{digamma, ln_gamma, ln_rising, ln_rising_row};
use pqsda_linalg::stats::{sample_discrete, softmax_in_place, RunningMoments};
use pqsda_linalg::{BetaDistribution, Lbfgs, LbfgsConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// UPM-specific training configuration.
#[derive(Clone, Copy, Debug)]
pub struct UpmConfig {
    /// The shared sampler settings (topic count, sweeps, seed, initial
    /// symmetric values for α/β/δ).
    pub base: TrainConfig,
    /// Run the hyperparameter optimization every this many sweeps
    /// (0 disables learning — the "UPM minus hyperlearning" ablation).
    pub hyper_every: usize,
    /// L-BFGS iteration budget per hyperparameter update.
    pub hyper_iterations: usize,
    /// Worker threads for the (exact) document-parallel sweep; results are
    /// identical for any value. 0 and 1 both mean single-threaded.
    pub threads: usize,
}

impl Default for UpmConfig {
    fn default() -> Self {
        UpmConfig {
            base: TrainConfig::default(),
            hyper_every: 20,
            hyper_iterations: 15,
            threads: 1,
        }
    }
}

/// Wall-clock breakdown of one training run, split by Gibbs phase.
/// Produced by [`Upm::train_with_stats`]; the perf harness reports these
/// as the "gibbs phase" rows of `BENCH_perf.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GibbsPhaseStats {
    /// Nanoseconds spent resampling session assignments (Eq. 23 sweeps).
    pub sample_ns: u64,
    /// Nanoseconds spent refitting the τ temporal components (Eq. 28–29).
    pub tau_ns: u64,
    /// Nanoseconds spent in L-BFGS hyperparameter updates (Eq. 25–27).
    pub hyper_ns: u64,
    /// Number of sweeps timed.
    pub sweeps: u32,
}

/// One session's sampling slot.
#[derive(Clone, Debug)]
struct Slot {
    words: Vec<(u32, u32)>,
    urls: Vec<(u32, u32)>,
    /// Raw (unclamped) timestamp — what the τ moment refits consume.
    time: f64,
    /// `ln t'` for `t' = time.clamp(TIME_EPS, 1 − TIME_EPS)`: the slot's
    /// half of the cached Beta log-density (see `Globals::tau_terms`).
    ln_t: f64,
    /// `ln (1 − t')`, cached alongside `ln_t`.
    ln_1mt: f64,
    z: u32,
}

impl Slot {
    fn new(words: Vec<(u32, u32)>, urls: Vec<(u32, u32)>, time: f64, z: u32) -> Self {
        let tc = time.clamp(TIME_EPS, 1.0 - TIME_EPS);
        Slot {
            words,
            urls,
            time,
            ln_t: tc.ln(),
            ln_1mt: (1.0 - tc).ln(),
            z,
        }
    }
}

/// The per-document count tables — kept separate from the slot list so the
/// sampler can hold `&mut` counts and `&mut` slots simultaneously (the
/// pre-optimization code had to move each slot out of its vector and back
/// per resample, churning two `Vec` allocations per session per sweep).
#[derive(Clone, Debug)]
struct DocCounts {
    /// `C_dk`: sessions assigned to each topic.
    topic_counts: Vec<u32>,
    /// `C^{KWD}` for this document: topics × words.
    topic_word: SparseCounts,
    /// `C^{KUD}` for this document: topics × URLs.
    topic_url: SparseCounts,
}

/// All mutable per-document sampler state — the unit of parallelism.
#[derive(Clone, Debug)]
struct DocState {
    counts: DocCounts,
    /// The document's sessions.
    slots: Vec<Slot>,
}

/// The integer ranges the sampler's count-keyed terms can take on a given
/// corpus — fixed at corpus load, they size the [`DenomTable`]s and the
/// `ln(c + α_z)` table. All bounds are inclusive maxima.
#[derive(Clone, Copy, Debug, Default)]
struct CacheDims {
    /// Sessions in the largest document (bounds every `C_dz`).
    max_sessions: usize,
    /// Total word multiplicity of the wordiest document (bounds every
    /// word-table row sum).
    max_doc_words: usize,
    /// Largest per-session word block (bounds the word denominator `n`).
    max_session_words: usize,
    /// Largest multiplicity of a single word within one session (bounds
    /// the word numerator `n`).
    max_word_mult: usize,
    /// URL analogue of `max_doc_words`.
    max_doc_urls: usize,
    /// URL analogue of `max_session_words`.
    max_session_urls: usize,
    /// URL analogue of `max_word_mult`.
    max_url_mult: usize,
}

impl CacheDims {
    fn measure(docs: &[DocState]) -> Self {
        let mut d = CacheDims::default();
        for doc in docs {
            d.max_sessions = d.max_sessions.max(doc.slots.len());
            let (mut words, mut urls) = (0usize, 0usize);
            for s in &doc.slots {
                let mut sw = 0usize;
                for &(_, n) in &s.words {
                    sw += n as usize;
                    d.max_word_mult = d.max_word_mult.max(n as usize);
                }
                let mut su = 0usize;
                for &(_, n) in &s.urls {
                    su += n as usize;
                    d.max_url_mult = d.max_url_mult.max(n as usize);
                }
                d.max_session_words = d.max_session_words.max(sw);
                d.max_session_urls = d.max_session_urls.max(su);
                words += sw;
                urls += su;
            }
            d.max_doc_words = d.max_doc_words.max(words);
            d.max_doc_urls = d.max_doc_urls.max(urls);
        }
        d
    }
}

/// Upper bound on one topic's denominator table, in `f64` cells. A table
/// that would exceed it is left empty and every lookup falls back to
/// direct `ln_rising` — correctness never depends on the cache.
const DENOM_TABLE_MAX_CELLS: usize = 1 << 21;

/// Per-topic cache of the Eq. 23 denominator
/// `ln_rising(c + Σ prior, n)` over the integer grid `(c, n)` the corpus
/// can reach: `c` is a per-document count-row sum, `n` a session block
/// size. Rows are built with [`ln_rising_row`], so every entry is
/// bit-identical to the direct call it replaces.
#[derive(Clone, Debug, Default)]
struct DenomTable {
    /// Cached `n` range is `1..=max_n`.
    max_n: usize,
    /// Cached `c` range is `0..rows`.
    rows: usize,
    /// Row-major `[c * max_n + (n - 1)]`.
    vals: Vec<f64>,
}

impl DenomTable {
    fn build(prior_sum: f64, max_count: usize, max_n: usize) -> Self {
        let rows = max_count + 1;
        if max_n == 0 || rows.saturating_mul(max_n) > DENOM_TABLE_MAX_CELLS {
            return DenomTable::default();
        }
        let mut vals = Vec::with_capacity(rows * max_n);
        for c in 0..rows {
            vals.extend(ln_rising_row(c as f64 + prior_sum, max_n));
        }
        DenomTable { max_n, rows, vals }
    }

    #[inline]
    fn get(&self, c: usize, n: usize) -> Option<f64> {
        if c < self.rows && n.wrapping_sub(1) < self.max_n {
            Some(self.vals[c * self.max_n + (n - 1)])
        } else {
            None
        }
    }
}

/// Cap on the numerator tables' multiplicity axis: a single word repeated
/// more often than this within one session falls back to direct
/// `ln_rising` rather than growing the table.
const NUMER_TABLE_MAX_N: usize = 16;

/// Per-topic cache of the Eq. 23 numerator for **zero-count** cells:
/// `ln_rising(prior_zw, n)` for every vocabulary item and every in-session
/// multiplicity `n = 1..=max_n` the corpus contains. Zero count is the
/// overwhelmingly common case (each user touches a sliver of the
/// vocabulary), and `0 + prior` is bitwise `prior` for the strictly
/// positive priors the model maintains, so a hit equals the direct
/// evaluation to the last bit. Rows are built with [`ln_rising_row`].
#[derive(Clone, Debug)]
struct NumerTable {
    /// Cached `n` range is `1..=max_n`.
    max_n: usize,
    /// Row-major `[item * max_n + (n - 1)]`.
    vals: Vec<f64>,
}

impl NumerTable {
    fn build(priors: &[f64], max_n: usize) -> Self {
        let max_n = max_n.clamp(1, NUMER_TABLE_MAX_N);
        let mut vals = Vec::with_capacity(priors.len() * max_n);
        for &p in priors {
            vals.extend(ln_rising_row(p, max_n));
        }
        NumerTable { max_n, vals }
    }

    #[inline]
    fn get(&self, item: usize, n: usize) -> Option<f64> {
        if n.wrapping_sub(1) < self.max_n {
            Some(self.vals[item * self.max_n + (n - 1)])
        } else {
            None
        }
    }
}

/// Size cap on one topic's nonzero-count numerator cache, in entries.
/// Each entry is one `ln_rising_row` over the multiplicity axis (≤
/// [`NUMER_TABLE_MAX_N`] cells), so a full cache stays well under a
/// megabyte per topic.
const NZ_NUMER_MAX_ENTRIES: usize = 1 << 15;

/// Lock shards of an [`NzNumerCache`]; sweeps fill the cache from many
/// worker threads at once.
const NZ_NUMER_SHARDS: usize = 16;

/// Size-capped per-`(item, count)` extension of [`NumerTable`] to
/// **nonzero**-count cells of the Eq. 23 numerator.
///
/// When a session re-expresses vocabulary its document already used under
/// the candidate topic, the numerator is `ln_rising(c + prior, n)` with a
/// per-document count `c > 0` — outside the zero-count table, but keyed by
/// the small integer pair `(item, c)` that recurs across documents sharing
/// hot vocabulary. This cache memoizes the whole [`ln_rising_row`] for such
/// a pair on first touch, behind sharded mutexes so concurrent sweep
/// workers share it. Every stored entry is bit-identical to the direct
/// `ln_rising` it replaces (the row-prefix property), so hits and misses
/// are indistinguishable in the sampled model. Invalidation is exactly the
/// [`NumerTable`] rule: the cache is reset wherever the topic's prior
/// vector changes (construction and the Eq. 26/27 updates). Lookups with
/// `n < 2` skip the cache — a direct single-`ln` evaluation is cheaper
/// than a lock — and once a shard reaches its cap, misses simply fall back
/// to direct evaluation.
struct NzNumerCache {
    shards: Vec<std::sync::Mutex<std::collections::HashMap<u64, Box<[f64]>>>>,
    /// Cached `n` range is `2..=max_n`.
    max_n: usize,
    cap_per_shard: usize,
}

impl NzNumerCache {
    fn new(max_mult: usize) -> Self {
        NzNumerCache {
            shards: (0..NZ_NUMER_SHARDS)
                .map(|_| std::sync::Mutex::new(std::collections::HashMap::new()))
                .collect(),
            max_n: max_mult.clamp(1, NUMER_TABLE_MAX_N),
            cap_per_shard: NZ_NUMER_MAX_ENTRIES / NZ_NUMER_SHARDS,
        }
    }

    /// `ln_rising(count + priors[item], n)` through the cache, or `None`
    /// when the lookup is out of cached range (caller falls back to the
    /// direct evaluation, which a hit matches bit-for-bit).
    #[inline]
    fn get(&self, item: usize, count: u32, n: usize, priors: &[f64]) -> Option<f64> {
        if n < 2 || n > self.max_n {
            return None;
        }
        let key = ((item as u64) << 32) | u64::from(count);
        let shard = &self.shards[(item + count as usize) % NZ_NUMER_SHARDS];
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(row) = map.get(&key) {
            return Some(row[n - 1]);
        }
        if map.len() >= self.cap_per_shard {
            return None;
        }
        let row: Box<[f64]> = ln_rising_row(f64::from(count) + priors[item], self.max_n).into();
        let v = row[n - 1];
        map.insert(key, row);
        Some(v)
    }
}

impl Clone for NzNumerCache {
    fn clone(&self) -> Self {
        NzNumerCache {
            shards: self
                .shards
                .iter()
                .map(|s| std::sync::Mutex::new(s.lock().unwrap_or_else(|e| e.into_inner()).clone()))
                .collect(),
            max_n: self.max_n,
            cap_per_shard: self.cap_per_shard,
        }
    }
}

impl std::fmt::Debug for NzNumerCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries: usize = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum();
        f.debug_struct("NzNumerCache")
            .field("max_n", &self.max_n)
            .field("entries", &entries)
            .finish()
    }
}

/// Global (read-only within a sweep) parameters, plus the transcendental
/// caches derived from them. Cache invalidation is strictly tied to the
/// three places the underlying parameters change: `numer_w[z]` /
/// `numer_u[z]` / `denom_w[z]` / `denom_u[z]` are rebuilt per-topic by
/// the Eq. 26/27 updates, `ln_alpha` by the Eq. 25 update, and
/// `tau_terms` after every τ refit.
#[derive(Clone, Debug)]
struct Globals {
    alpha: Vec<f64>,
    beta: Vec<Vec<f64>>,
    delta: Vec<Vec<f64>>,
    beta_sums: Vec<f64>,
    delta_sums: Vec<f64>,
    taus: Vec<BetaDistribution>,
    /// Zero-count word-numerator table per topic.
    numer_w: Vec<NumerTable>,
    /// Zero-count URL-numerator table per topic.
    numer_u: Vec<NumerTable>,
    /// Nonzero-count word-numerator cache per topic (fills lazily during
    /// sweeps; reset in lockstep with `numer_w`).
    nz_w: Vec<NzNumerCache>,
    /// Nonzero-count URL-numerator cache per topic.
    nz_u: Vec<NzNumerCache>,
    /// `BetaDistribution::ln_pdf_terms` per topic: `(τ₁−1, τ₂−1,
    /// ln B(τ₁,τ₂))`, combined with the per-slot `ln_t`/`ln_1mt`.
    tau_terms: Vec<(f64, f64, f64)>,
    /// The corpus-fixed integer ranges sizing the count-keyed tables.
    dims: CacheDims,
    /// `ln(c + α_z)` per topic for `c = 0..=max_sessions` — the Eq. 23
    /// topic term.
    ln_alpha: Vec<Vec<f64>>,
    /// Word-denominator table per topic.
    denom_w: Vec<DenomTable>,
    /// URL-denominator table per topic.
    denom_u: Vec<DenomTable>,
}

impl Globals {
    fn new(
        alpha: Vec<f64>,
        beta: Vec<Vec<f64>>,
        delta: Vec<Vec<f64>>,
        beta_sums: Vec<f64>,
        delta_sums: Vec<f64>,
        taus: Vec<BetaDistribution>,
        dims: CacheDims,
    ) -> Self {
        let numer_w = beta
            .iter()
            .map(|row| NumerTable::build(row, dims.max_word_mult))
            .collect();
        let numer_u = delta
            .iter()
            .map(|row| NumerTable::build(row, dims.max_url_mult))
            .collect();
        let nz_w = beta
            .iter()
            .map(|_| NzNumerCache::new(dims.max_word_mult))
            .collect();
        let nz_u = delta
            .iter()
            .map(|_| NzNumerCache::new(dims.max_url_mult))
            .collect();
        let tau_terms = taus.iter().map(|t| t.ln_pdf_terms()).collect();
        let ln_alpha = Self::alpha_table(&alpha, &dims);
        let denom_w = beta_sums
            .iter()
            .map(|&s| DenomTable::build(s, dims.max_doc_words, dims.max_session_words))
            .collect();
        let denom_u = delta_sums
            .iter()
            .map(|&s| DenomTable::build(s, dims.max_doc_urls, dims.max_session_urls))
            .collect();
        Globals {
            alpha,
            beta,
            delta,
            beta_sums,
            delta_sums,
            taus,
            numer_w,
            numer_u,
            nz_w,
            nz_u,
            tau_terms,
            dims,
            ln_alpha,
            denom_w,
            denom_u,
        }
    }

    fn alpha_table(alpha: &[f64], dims: &CacheDims) -> Vec<Vec<f64>> {
        alpha
            .iter()
            .map(|&a| {
                (0..=dims.max_sessions)
                    .map(|c| (c as f64 + a).ln())
                    .collect()
            })
            .collect()
    }

    /// Re-derives `ln_alpha` from `alpha`; must follow every α update.
    fn refresh_alpha_table(&mut self) {
        self.ln_alpha = Self::alpha_table(&self.alpha, &self.dims);
    }

    /// Re-derives topic `z`'s denominator table from its prior sum; must
    /// follow every β (words) / δ (URLs) update.
    fn refresh_denom(&mut self, z: usize, is_words: bool) {
        if is_words {
            self.denom_w[z] = DenomTable::build(
                self.beta_sums[z],
                self.dims.max_doc_words,
                self.dims.max_session_words,
            );
        } else {
            self.denom_u[z] = DenomTable::build(
                self.delta_sums[z],
                self.dims.max_doc_urls,
                self.dims.max_session_urls,
            );
        }
    }

    /// Re-derives `tau_terms` from `taus`; must follow every τ refit.
    fn refresh_tau_terms(&mut self) {
        for (slot, t) in self.tau_terms.iter_mut().zip(&self.taus) {
            *slot = t.ln_pdf_terms();
        }
    }
}

/// A trained User Profiling Model.
#[derive(Clone, Debug)]
pub struct Upm {
    cfg: UpmConfig,
    num_words: usize,
    num_urls: usize,
    docs: Vec<DocState>,
    globals: Globals,
}

impl Upm {
    /// Trains the UPM on a corpus.
    pub fn train(corpus: &Corpus, cfg: &UpmConfig) -> Self {
        Self::train_with_stats(corpus, cfg).0
    }

    /// Trains the UPM and reports the per-phase wall-clock breakdown.
    pub fn train_with_stats(corpus: &Corpus, cfg: &UpmConfig) -> (Self, GibbsPhaseStats) {
        let base = cfg.base;
        assert!(base.num_topics > 0, "upm: need at least one topic");
        assert!(corpus.num_docs() > 0, "upm: empty corpus");
        let k = base.num_topics;
        let w_vocab = corpus.num_words;
        let u_vocab = corpus.num_urls.max(1);

        // Per-document initialization, seeded per doc (sweep index 0).
        let docs: Vec<DocState> = corpus
            .docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                let mut rng = doc_rng(base.seed, 0, d);
                let mut state = DocState {
                    counts: DocCounts {
                        topic_counts: vec![0; k],
                        topic_word: SparseCounts::new(k, w_vocab),
                        topic_url: SparseCounts::new(k, u_vocab),
                    },
                    slots: Vec::with_capacity(doc.sessions.len()),
                };
                for s in &doc.sessions {
                    let z = rng.gen_range(0..k) as u32;
                    let slot = Slot::new(to_multiset(&s.words), to_multiset(&s.urls), s.time, z);
                    state.counts.add(&slot, z);
                    state.slots.push(slot);
                }
                state
            })
            .collect();

        let globals = Globals::new(
            vec![base.alpha; k],
            vec![vec![base.beta; w_vocab]; k],
            vec![vec![base.delta; u_vocab]; k],
            vec![base.beta * w_vocab as f64; k],
            vec![base.delta * u_vocab as f64; k],
            vec![BetaDistribution::uniform(); k],
            CacheDims::measure(&docs),
        );

        let mut model = Upm {
            cfg: *cfg,
            num_words: w_vocab,
            num_urls: u_vocab,
            docs,
            globals,
        };

        let mut stats = GibbsPhaseStats::default();
        for sweep in 1..=base.iterations {
            let t = Instant::now();
            model.sweep(sweep);
            stats.sample_ns += t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            model.refit_taus();
            stats.tau_ns += t.elapsed().as_nanos() as u64;
            if cfg.hyper_every > 0 && sweep % cfg.hyper_every == 0 {
                let t = Instant::now();
                model.optimize_hyperparameters();
                stats.hyper_ns += t.elapsed().as_nanos() as u64;
            }
            stats.sweeps += 1;
        }
        (model, stats)
    }

    /// One full Gibbs sweep, document-parallel when configured. Parallel
    /// sweeps run on the persistent global [`pqsda_parallel::WorkerPool`];
    /// chunk geometry never affects the result — each document's RNG
    /// stream depends only on (seed, sweep, doc).
    fn sweep(&mut self, sweep: usize) {
        let seed = self.cfg.base.seed;
        let threads = self.cfg.threads.max(1);
        let k = self.globals.alpha.len();
        let globals = &self.globals;
        if threads == 1 || self.docs.len() < 2 * threads {
            let mut ln_w = vec![0.0; k];
            for (d, doc) in self.docs.iter_mut().enumerate() {
                let mut rng = doc_rng(seed, sweep, d);
                doc.sample_all(globals, &mut rng, &mut ln_w);
            }
            return;
        }
        pqsda_parallel::for_each_chunk_mut(&mut self.docs, threads, |base, chunk| {
            let mut ln_w = vec![0.0; k];
            for (off, doc) in chunk.iter_mut().enumerate() {
                let mut rng = doc_rng(seed, sweep, base + off);
                doc.sample_all(globals, &mut rng, &mut ln_w);
            }
        });
    }

    fn refit_taus(&mut self) {
        let k = self.globals.alpha.len();
        let mut moments = vec![RunningMoments::new(); k];
        for doc in &self.docs {
            for s in &doc.slots {
                moments[s.z as usize].push(s.time);
            }
        }
        for z in 0..k {
            self.globals.taus[z] = if moments[z].count() >= 2 {
                BetaDistribution::fit_moments(moments[z].mean(), moments[z].variance_biased())
            } else {
                BetaDistribution::uniform()
            };
        }
        self.globals.refresh_tau_terms();
    }

    /// One alternating pass of the Eq. 25–27 maximizations via L-BFGS with
    /// `x = ln(param)` reparameterization.
    fn optimize_hyperparameters(&mut self) {
        self.optimize_alpha();
        self.optimize_emission(true);
        self.optimize_emission(false);
    }

    /// Eq. 25: α over the document–topic counts.
    ///
    /// The objective's transcendentals are evaluated document-parallel on
    /// the worker pool, then folded serially in document order. The fold
    /// replays the exact operation sequence of the plain sequential loop —
    /// the document-independent `ln Γ(α₀)` / `ψ(α₀)` / per-topic
    /// `ln Γ(α_z)` / `ψ(α_z)` values are pure functions of α, so hoisting
    /// them changes no bits — which keeps the learned α identical for any
    /// thread count (asserted by the parallel-bit-identity tests).
    fn optimize_alpha(&mut self) {
        let k = self.globals.alpha.len();
        let threads = self.cfg.threads.max(1);
        let rows: Vec<(Vec<f64>, f64)> = self
            .docs
            .iter()
            .map(|doc| {
                let row: Vec<f64> = doc.counts.topic_counts.iter().map(|&c| c as f64).collect();
                let sum: f64 = row.iter().sum();
                (row, sum)
            })
            .collect();
        let mut objective = |x: &[f64], grad: &mut [f64]| -> f64 {
            let alpha: Vec<f64> = x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
            let a0: f64 = alpha.iter().sum();
            let lg_a0 = ln_gamma(a0);
            let dg_a0 = digamma(a0);
            let lg_alpha: Vec<f64> = alpha.iter().map(|&a| ln_gamma(a)).collect();
            let dg_alpha: Vec<f64> = alpha.iter().map(|&a| digamma(a)).collect();
            // Per-document transcendentals: the row-sum pair plus one
            // (ln Γ, ψ) pair per positive topic count.
            #[allow(clippy::type_complexity)]
            let per_doc: Vec<(f64, f64, Vec<(usize, f64, f64)>)> = {
                let alpha = &alpha;
                let rows = &rows;
                pqsda_parallel::map_indexed(rows.len(), threads, |i| {
                    let (row, sum) = &rows[i];
                    let mut nz = Vec::new();
                    for z in 0..k {
                        if row[z] > 0.0 {
                            nz.push((z, ln_gamma(row[z] + alpha[z]), digamma(row[z] + alpha[z])));
                        }
                    }
                    (ln_gamma(sum + a0), digamma(sum + a0), nz)
                })
            };
            let mut nll = 0.0;
            let mut g = vec![0.0; k];
            for ((row, _), (lg_sum, dg_sum, nz)) in rows.iter().zip(&per_doc) {
                nll -= lg_a0 - lg_sum;
                let d0 = dg_a0 - dg_sum;
                let mut j = 0;
                for z in 0..k {
                    if row[z] > 0.0 {
                        nll -= nz[j].1 - lg_alpha[z];
                        g[z] -= nz[j].2 - dg_alpha[z];
                        j += 1;
                    }
                    g[z] -= d0;
                }
            }
            for z in 0..k {
                grad[z] = g[z] * alpha[z];
            }
            nll
        };
        let x0: Vec<f64> = self.globals.alpha.iter().map(|a| a.ln()).collect();
        let out = Lbfgs::new(LbfgsConfig {
            max_iterations: self.cfg.hyper_iterations,
            ..LbfgsConfig::default()
        })
        .minimize(&mut objective, &x0);
        self.globals.alpha = out.x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
        self.globals.refresh_alpha_table();
    }

    /// Eq. 26 (words, `is_words = true`) / Eq. 27 (URLs): per-topic prior
    /// vectors over the per-document emission tables.
    fn optimize_emission(&mut self, is_words: bool) {
        let k = self.globals.alpha.len();
        let vocab = if is_words {
            self.num_words
        } else {
            self.num_urls
        };
        for z in 0..k {
            let mut doc_rows: Vec<(Vec<(usize, f64)>, f64)> = Vec::new();
            for doc in &self.docs {
                let t = if is_words {
                    &doc.counts.topic_word
                } else {
                    &doc.counts.topic_url
                };
                let sum = t.row_sum(z) as f64;
                if sum == 0.0 {
                    continue; // document never uses topic z: contributes nothing
                }
                let mut sparse: Vec<(usize, f64)> = Vec::with_capacity(t.row_nnz(z));
                t.for_each_nonzero(z, |v, c| sparse.push((v, c as f64)));
                doc_rows.push((sparse, sum));
            }
            if doc_rows.is_empty() {
                continue;
            }
            // MAP rather than MLE: a weak Gamma(a, b) hyperprior on every
            // prior cell. Pure maximum likelihood drives the prior of words
            // a topic never emitted (in the observed split) to zero, which
            // crushes their held-out probability; the Gamma acts as a soft
            // floor while leaving well-evidenced cells free to move. Shape
            // is chosen so the hyperprior mode sits at the symmetric
            // initialization.
            let init = if is_words {
                self.cfg.base.beta
            } else {
                self.cfg.base.delta
            };
            let gamma_b = 1.0;
            let gamma_a = 1.0 + gamma_b * init; // mode (a-1)/b = init
            let n_rows = doc_rows.len() as f64;
            let threads = self.cfg.threads.max(1);
            // The per-document transcendentals run document-parallel; the
            // serial fold below then replays the sequential loop's exact
            // operation order (each `nll -=` / `g[v] -=` consumes the same
            // precomputed difference the inline call produced), so the
            // learned priors are identical for any thread count.
            let mut objective = |x: &[f64], grad: &mut [f64]| -> f64 {
                let prior: Vec<f64> = x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
                let p0: f64 = prior.iter().sum();
                let mut nll = 0.0;
                let mut g = vec![0.0; vocab];
                let dig_p0 = digamma(p0);
                let ln_gamma_p0 = ln_gamma(p0);
                #[allow(clippy::type_complexity)]
                let per_doc: Vec<(f64, f64, Vec<(usize, f64, f64)>)> = {
                    let prior = &prior;
                    let doc_rows = &doc_rows;
                    pqsda_parallel::map_indexed(doc_rows.len(), threads, |i| {
                        let (sparse, sum) = &doc_rows[i];
                        let terms: Vec<(usize, f64, f64)> = sparse
                            .iter()
                            .map(|&(v, c)| {
                                (
                                    v,
                                    ln_gamma(c + prior[v]) - ln_gamma(prior[v]),
                                    digamma(c + prior[v]) - digamma(prior[v]),
                                )
                            })
                            .collect();
                        (ln_gamma(sum + p0), digamma(sum + p0), terms)
                    })
                };
                for (lg_sum, dg_sum, terms) in &per_doc {
                    nll -= ln_gamma_p0 - lg_sum;
                    let d0 = dig_p0 - dg_sum;
                    for gz in g.iter_mut() {
                        *gz -= d0;
                    }
                    for &(v, nd, gd) in terms {
                        nll -= nd;
                        g[v] -= gd;
                    }
                }
                // Gamma hyperprior, scaled with the number of groups so its
                // pull does not vanish on large corpora.
                for v in 0..vocab {
                    nll -= n_rows * ((gamma_a - 1.0) * prior[v].ln() - gamma_b * prior[v]);
                    g[v] -= n_rows * ((gamma_a - 1.0) / prior[v] - gamma_b);
                    grad[v] = g[v] * prior[v];
                }
                nll
            };
            let current = if is_words {
                &self.globals.beta[z]
            } else {
                &self.globals.delta[z]
            };
            let x0: Vec<f64> = current.iter().map(|b| b.ln()).collect();
            let out = Lbfgs::new(LbfgsConfig {
                max_iterations: self.cfg.hyper_iterations,
                ..LbfgsConfig::default()
            })
            .minimize(&mut objective, &x0);
            let learned: Vec<f64> = out.x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
            let sum: f64 = learned.iter().sum();
            // The prior vector changed: rebuild this topic's numerator
            // tables (zero-count table and nonzero-count cache alike) and
            // denominator table (the only invalidation point besides
            // init/load).
            if is_words {
                self.globals.numer_w[z] =
                    NumerTable::build(&learned, self.globals.dims.max_word_mult);
                self.globals.nz_w[z] = NzNumerCache::new(self.globals.dims.max_word_mult);
                self.globals.beta[z] = learned;
                self.globals.beta_sums[z] = sum;
            } else {
                self.globals.numer_u[z] =
                    NumerTable::build(&learned, self.globals.dims.max_url_mult);
                self.globals.nz_u[z] = NzNumerCache::new(self.globals.dims.max_url_mult);
                self.globals.delta[z] = learned;
                self.globals.delta_sums[z] = sum;
            }
            self.globals.refresh_denom(z, is_words);
        }
    }

    /// The learned α vector.
    pub fn alpha(&self) -> &[f64] {
        &self.globals.alpha
    }

    /// The learned word hyperprior of topic `k` (β_k, length W).
    pub fn beta_k(&self, k: usize) -> &[f64] {
        &self.globals.beta[k]
    }

    /// The learned URL hyperprior of topic `k` (δ_k, length U).
    pub fn delta_k(&self, k: usize) -> &[f64] {
        &self.globals.delta[k]
    }

    /// The fitted temporal distribution of topic `k`.
    pub fn tau(&self, k: usize) -> &BetaDistribution {
        &self.globals.taus[k]
    }

    /// The paper's Eq. 31 numerator building block:
    /// `p(w | z = k, d)` under the per-user distribution.
    pub fn user_word_prob(&self, doc: usize, k: usize, w: u32) -> f64 {
        let t = &self.docs[doc].counts.topic_word;
        (t.get(k, w as usize) as f64 + self.globals.beta[k][w as usize])
            / (t.row_sum(k) as f64 + self.globals.beta_sums[k])
    }

    /// Per-user URL probability `p(u | z = k, d)`.
    pub fn user_url_prob(&self, doc: usize, k: usize, u: u32) -> f64 {
        let t = &self.docs[doc].counts.topic_url;
        (t.get(k, u as usize) as f64 + self.globals.delta[k][u as usize])
            / (t.row_sum(k) as f64 + self.globals.delta_sums[k])
    }

    /// Number of documents profiled.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Warm-start retraining after a log delta — the topics stage of the
    /// incremental update pipeline (DESIGN.md §9).
    ///
    /// `corpus` is the post-delta corpus. For each of its documents,
    /// `old_doc_of[d]` is this model's document index for the same user
    /// (`None` for a first-seen user) and `changed[d]` says whether that
    /// user's log gained records in the delta.
    ///
    /// Unchanged documents keep their converged session assignments and
    /// count tables verbatim; only their slot times are refreshed, because
    /// the corpus normalizes timestamps against the *global* log span,
    /// which a delta shifts for everyone. Changed and new documents are
    /// freshly initialized (seeded by their new document index, like a
    /// cold start) and are the only ones the Gibbs sweeps resample. τ is
    /// refit over all documents every sweep — a moment match, linear in
    /// the corpus — with the frozen documents' moments folded once up
    /// front. Hyperparameters are inherited from the converged model (new
    /// vocabulary extends β/δ with the symmetric base priors); the
    /// Eq. 25–27 objectives range over every document, so re-optimizing
    /// them here would cost full-corpus passes and is deferred to
    /// scheduled cold retrains.
    ///
    /// Returns `None` when this model cannot resume sampling (store-loaded
    /// models drop their slots) or when `corpus` does not extend the
    /// trained one; callers then fall back to a cold [`Upm::train`]. The
    /// result is bit-identical for any `cfg.threads`, and for an empty
    /// delta (all `changed` false, every document matched, identical
    /// corpus) the returned profiles equal this model's bit-for-bit. For a
    /// non-empty delta the warm model is *not* bitwise equal to a cold
    /// retrain — Gibbs chains diverge — but converges to the same
    /// posterior; the equivalence tests assert a bounded gap on held-in
    /// predictive likelihood.
    pub fn retrain_delta(
        &self,
        corpus: &Corpus,
        old_doc_of: &[Option<usize>],
        changed: &[bool],
    ) -> Option<Upm> {
        assert_eq!(
            corpus.num_docs(),
            old_doc_of.len(),
            "retrain_delta: old_doc_of length"
        );
        assert_eq!(
            corpus.num_docs(),
            changed.len(),
            "retrain_delta: changed length"
        );
        let k = self.globals.alpha.len();
        let base = self.cfg.base;
        let w_vocab = corpus.num_words;
        let u_vocab = corpus.num_urls.max(1);
        if corpus.num_docs() == 0 || w_vocab < self.num_words || u_vocab < self.num_urls {
            return None;
        }

        // Rebuild the document states: warm copies for unchanged users,
        // cold initialization for changed and new ones.
        let mut changed_idx: Vec<usize> = Vec::new();
        let mut docs: Vec<DocState> = Vec::with_capacity(corpus.num_docs());
        for (d, doc) in corpus.docs.iter().enumerate() {
            let warm = if changed[d] { None } else { old_doc_of[d] };
            match warm {
                Some(od) => {
                    let old = &self.docs[od];
                    if old.slots.is_empty() || old.slots.len() != doc.sessions.len() {
                        // Store-loaded model (no slots) or a mislabeled
                        // "unchanged" document: cannot warm-start.
                        return None;
                    }
                    let mut counts = old.counts.clone();
                    counts.topic_word.grow_cols(w_vocab);
                    counts.topic_url.grow_cols(u_vocab);
                    let slots = old
                        .slots
                        .iter()
                        .zip(&doc.sessions)
                        .map(|(slot, s)| {
                            debug_assert_eq!(
                                slot.words,
                                to_multiset(&s.words),
                                "retrain_delta: unchanged document {d} changed content"
                            );
                            Slot::new(slot.words.clone(), slot.urls.clone(), s.time, slot.z)
                        })
                        .collect();
                    docs.push(DocState { counts, slots });
                }
                None => {
                    changed_idx.push(d);
                    let mut rng = doc_rng(base.seed, 0, d);
                    let mut state = DocState {
                        counts: DocCounts {
                            topic_counts: vec![0; k],
                            topic_word: SparseCounts::new(k, w_vocab),
                            topic_url: SparseCounts::new(k, u_vocab),
                        },
                        slots: Vec::with_capacity(doc.sessions.len()),
                    };
                    for s in &doc.sessions {
                        let z = rng.gen_range(0..k) as u32;
                        let slot =
                            Slot::new(to_multiset(&s.words), to_multiset(&s.urls), s.time, z);
                        state.counts.add(&slot, z);
                        state.slots.push(slot);
                    }
                    docs.push(state);
                }
            }
        }

        // Inherited hyperpriors, extended over vocabulary growth with the
        // symmetric base values.
        let mut beta = self.globals.beta.clone();
        let mut delta = self.globals.delta.clone();
        for row in &mut beta {
            row.resize(w_vocab, base.beta);
        }
        for row in &mut delta {
            row.resize(u_vocab, base.delta);
        }
        let grow_w = (w_vocab - self.num_words) as f64;
        let grow_u = (u_vocab - self.num_urls) as f64;
        let beta_sums: Vec<f64> = self
            .globals
            .beta_sums
            .iter()
            .map(|&s| s + base.beta * grow_w)
            .collect();
        let delta_sums: Vec<f64> = self
            .globals
            .delta_sums
            .iter()
            .map(|&s| s + base.delta * grow_u)
            .collect();
        let globals = Globals::new(
            self.globals.alpha.clone(),
            beta,
            delta,
            beta_sums,
            delta_sums,
            self.globals.taus.clone(),
            CacheDims::measure(&docs),
        );
        let mut model = Upm {
            cfg: self.cfg,
            num_words: w_vocab,
            num_urls: u_vocab,
            docs,
            globals,
        };

        // Pull the changed documents into a contiguous buffer so the
        // pooled chunked sweep applies; each keeps sampling under its
        // *corpus* document index, so the RNG streams — and therefore the
        // result — do not depend on thread count or on which other
        // documents changed.
        let hollow = || DocState {
            counts: DocCounts {
                topic_counts: Vec::new(),
                topic_word: SparseCounts::new(0, 0),
                topic_url: SparseCounts::new(0, 0),
            },
            slots: Vec::new(),
        };
        let mut active: Vec<DocState> = changed_idx
            .iter()
            .map(|&d| std::mem::replace(&mut model.docs[d], hollow()))
            .collect();
        // Frozen documents never resample, so their τ moments are folded
        // once (the hollowed slots contribute nothing here).
        let mut frozen = vec![RunningMoments::new(); k];
        for doc in &model.docs {
            for s in &doc.slots {
                frozen[s.z as usize].push(s.time);
            }
        }
        let threads = self.cfg.threads.max(1);
        for sweep in 1..=base.iterations {
            if !active.is_empty() {
                let globals = &model.globals;
                if threads == 1 || active.len() < 2 * threads {
                    let mut ln_w = vec![0.0; k];
                    for (i, doc) in active.iter_mut().enumerate() {
                        let mut rng = doc_rng(base.seed, sweep, changed_idx[i]);
                        doc.sample_all(globals, &mut rng, &mut ln_w);
                    }
                } else {
                    let changed_idx = &changed_idx;
                    pqsda_parallel::for_each_chunk_mut(&mut active, threads, |start, chunk| {
                        let mut ln_w = vec![0.0; k];
                        for (off, doc) in chunk.iter_mut().enumerate() {
                            let mut rng = doc_rng(base.seed, sweep, changed_idx[start + off]);
                            doc.sample_all(globals, &mut rng, &mut ln_w);
                        }
                    });
                }
            }
            let mut moments = frozen.clone();
            for doc in &active {
                for s in &doc.slots {
                    moments[s.z as usize].push(s.time);
                }
            }
            for z in 0..k {
                model.globals.taus[z] = if moments[z].count() >= 2 {
                    BetaDistribution::fit_moments(moments[z].mean(), moments[z].variance_biased())
                } else {
                    BetaDistribution::uniform()
                };
            }
            model.globals.refresh_tau_terms();
        }
        for (i, &d) in changed_idx.iter().enumerate() {
            model.docs[d] = std::mem::replace(&mut active[i], hollow());
        }
        Some(model)
    }

    /// Internal view for the binary profile store (`crate::store`).
    #[allow(clippy::type_complexity)]
    pub(crate) fn store_parts(
        &self,
    ) -> (
        &UpmConfig,
        usize,
        usize,
        Vec<(&Vec<u32>, &SparseCounts, &SparseCounts)>,
        (
            &[f64],
            &[Vec<f64>],
            &[Vec<f64>],
            &[BetaDistribution],
            &[f64],
            &[f64],
        ),
    ) {
        (
            &self.cfg,
            self.num_words,
            self.num_urls,
            self.docs
                .iter()
                .map(|d| {
                    (
                        &d.counts.topic_counts,
                        &d.counts.topic_word,
                        &d.counts.topic_url,
                    )
                })
                .collect(),
            (
                &self.globals.alpha,
                &self.globals.beta,
                &self.globals.delta,
                &self.globals.taus,
                &self.globals.beta_sums,
                &self.globals.delta_sums,
            ),
        )
    }

    /// Rebuilds a model from stored parts (`crate::store`). The training
    /// slots are not persisted — a loaded model scores and profiles but
    /// cannot resume sampling. The transcendental caches are re-derived
    /// from the loaded parameters.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_store_parts(
        base_priors: (f64, f64, f64),
        num_words: usize,
        num_urls: usize,
        alpha: Vec<f64>,
        beta: (Vec<Vec<f64>>, Vec<f64>),
        delta: (Vec<Vec<f64>>, Vec<f64>),
        taus: Vec<BetaDistribution>,
        docs: Vec<(Vec<u32>, SparseCounts, SparseCounts)>,
    ) -> Self {
        let (beta, beta_sums) = beta;
        let (delta, delta_sums) = delta;
        Upm {
            cfg: UpmConfig {
                base: TrainConfig {
                    num_topics: alpha.len(),
                    iterations: 0,
                    seed: 0,
                    alpha: base_priors.0,
                    beta: base_priors.1,
                    delta: base_priors.2,
                },
                hyper_every: 0,
                hyper_iterations: 0,
                threads: 1,
            },
            num_words,
            num_urls,
            docs: docs
                .into_iter()
                .map(|(topic_counts, topic_word, topic_url)| DocState {
                    counts: DocCounts {
                        topic_counts,
                        topic_word,
                        topic_url,
                    },
                    slots: Vec::new(),
                })
                .collect(),
            // Loaded models score and profile but never resume sampling,
            // so the count-keyed sweep tables can stay empty.
            globals: Globals::new(
                alpha,
                beta,
                delta,
                beta_sums,
                delta_sums,
                taus,
                CacheDims::default(),
            ),
        }
    }
}

impl DocCounts {
    fn add(&mut self, s: &Slot, z: u32) {
        self.topic_counts[z as usize] += 1;
        for &(w, n) in &s.words {
            self.topic_word.inc(z as usize, w as usize, n);
        }
        for &(u, n) in &s.urls {
            self.topic_url.inc(z as usize, u as usize, n);
        }
    }

    fn remove(&mut self, s: &Slot, z: u32) {
        self.topic_counts[z as usize] -= 1;
        for &(w, n) in &s.words {
            self.topic_word.dec(z as usize, w as usize, n);
        }
        for &(u, n) in &s.urls {
            self.topic_url.dec(z as usize, u as usize, n);
        }
    }

    /// The paper's Eq. 23 in log space, with the Gamma ratios written as
    /// rising factorials over this document's tables.
    ///
    /// The common case — zero count — reads the cached `ln_rising(prior,
    /// n)` tables ([`NumerTable`]); `0.0 + prior` is bitwise `prior` for
    /// the strictly positive priors the model maintains, so the cached
    /// term equals direct evaluation to the last bit (the invariant the
    /// `upm_bit_identity` property tests pin down). Nonzero counts with
    /// multiplicity ≥ 2 read the lazily-filled [`NzNumerCache`], whose
    /// entries are likewise bit-identical to the direct call. The topic
    /// term and the denominators depend on their counts only through small
    /// integers, so they read the count-keyed tables (`ln_alpha`,
    /// [`DenomTable`]); the direct evaluation remains as the fallback for
    /// out-of-range keys (only possible when a table was size-capped
    /// away).
    fn ln_conditional(&self, g: &Globals, s: &Slot, z: usize) -> f64 {
        let tc = self.topic_counts[z] as usize;
        let la = &g.ln_alpha[z];
        let mut acc = if tc < la.len() {
            la[tc]
        } else {
            (tc as f64 + g.alpha[z]).ln()
        };
        let tw = &self.topic_word;
        let nw = &g.numer_w[z];
        let mut n_total = 0usize;
        for &(w, n) in &s.words {
            let c = tw.get(z, w as usize);
            let cached = if c == 0 {
                nw.get(w as usize, n as usize)
            } else {
                g.nz_w[z].get(w as usize, c, n as usize, &g.beta[z])
            };
            acc +=
                cached.unwrap_or_else(|| ln_rising(c as f64 + g.beta[z][w as usize], n as usize));
            n_total += n as usize;
        }
        let row = tw.row_sum(z) as usize;
        acc -= g.denom_w[z]
            .get(row, n_total)
            .unwrap_or_else(|| ln_rising(row as f64 + g.beta_sums[z], n_total));
        if !s.urls.is_empty() {
            let tu = &self.topic_url;
            let nu = &g.numer_u[z];
            let mut m_total = 0usize;
            for &(u, n) in &s.urls {
                let c = tu.get(z, u as usize);
                let cached = if c == 0 {
                    nu.get(u as usize, n as usize)
                } else {
                    g.nz_u[z].get(u as usize, c, n as usize, &g.delta[z])
                };
                acc += cached
                    .unwrap_or_else(|| ln_rising(c as f64 + g.delta[z][u as usize], n as usize));
                m_total += n as usize;
            }
            let row = tu.row_sum(z) as usize;
            acc -= g.denom_u[z]
                .get(row, m_total)
                .unwrap_or_else(|| ln_rising(row as f64 + g.delta_sums[z], m_total));
        }
        // Beta(τ_z) log-density via its cached affine form — the same
        // operations `taus[z].ln_pdf(s.time)` performs, in the same order.
        let (a1, b1, norm) = g.tau_terms[z];
        acc + (a1 * s.ln_t + b1 * s.ln_1mt - norm)
    }
}

impl DocState {
    /// Resamples every session of this document. `ln_w` is caller-provided
    /// scratch of length K, reused across the whole sweep.
    fn sample_all(&mut self, g: &Globals, rng: &mut SmallRng, ln_w: &mut [f64]) {
        let counts = &mut self.counts;
        for slot in &mut self.slots {
            counts.remove(slot, slot.z);
            for (z, lw) in ln_w.iter_mut().enumerate() {
                *lw = counts.ln_conditional(g, slot, z);
            }
            softmax_in_place(ln_w);
            let z_new = sample_discrete(ln_w, rng.gen::<f64>()) as u32;
            counts.add(slot, z_new);
            slot.z = z_new;
        }
    }
}

/// The per-(seed, sweep, document) RNG stream — the key to exact,
/// thread-count-independent parallel sampling.
fn doc_rng(seed: u64, sweep: usize, doc: usize) -> SmallRng {
    SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((sweep as u64) << 32)
            .wrapping_add(doc as u64),
    )
}

impl TopicModel for Upm {
    fn name(&self) -> &str {
        "UPM"
    }

    fn num_topics(&self) -> usize {
        self.globals.alpha.len()
    }

    /// Eq. 30 with the learned (generally asymmetric) α.
    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        let a0: f64 = self.globals.alpha.iter().sum();
        let total: u32 = self.docs[doc].counts.topic_counts.iter().sum();
        let denom = total as f64 + a0;
        self.docs[doc]
            .counts
            .topic_counts
            .iter()
            .zip(&self.globals.alpha)
            .map(|(&c, &a)| (c as f64 + a) / denom)
            .collect()
    }

    fn topic_word_prob(&self, doc: usize, k: usize, w: u32) -> f64 {
        self.user_word_prob(doc, k, w)
    }

    fn topic_url_prob(&self, doc: usize, k: usize, u: u32) -> f64 {
        self.user_url_prob(doc, k, u)
    }

    fn topic_time_ln_pdf(&self, k: usize, t: f64) -> f64 {
        self.globals.taus[k].ln_pdf(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DocSession, Document};
    use crate::upm_reference::UpmReference;
    use pqsda_querylog::UserId;

    /// The paper's Toyota/Ford scenario: two users share a "cars" topic
    /// (words 0..4 = generic car words) but differ in brand words
    /// (4 = toyota, 5 = ford); a third user is in another topic entirely
    /// (words 6..9).
    fn toyota_ford_corpus() -> Corpus {
        let session =
            |ws: Vec<u32>, u: Option<u32>, t: f64| DocSession::from_records(vec![(ws, u)], t);
        let cars_user = |uid: u32, brand: u32, url: u32| Document {
            user: UserId(uid),
            sessions: (0..8)
                .map(|i| session(vec![i % 4, brand], Some(url), 0.3 + 0.05 * (i % 4) as f64))
                .collect(),
        };
        let other_user = Document {
            user: UserId(2),
            sessions: (0..8)
                .map(|i| session(vec![6 + (i % 4)], Some(2), 0.7 + 0.02 * (i % 4) as f64))
                .collect(),
        };
        Corpus {
            docs: vec![cars_user(0, 4, 0), cars_user(1, 5, 1), other_user],
            num_words: 10,
            num_urls: 3,
        }
    }

    fn cfg() -> UpmConfig {
        UpmConfig {
            base: TrainConfig {
                num_topics: 2,
                iterations: 60,
                seed: 23,
                ..TrainConfig::default()
            },
            hyper_every: 20,
            hyper_iterations: 10,
            threads: 1,
        }
    }

    #[test]
    fn cars_users_share_topic_but_keep_brand_words() {
        let c = toyota_ford_corpus();
        let m = Upm::train(&c, &cfg());
        let t0 = m.doc_topic(0);
        let t1 = m.doc_topic(1);
        let t2 = m.doc_topic(2);
        let dom0 = if t0[0] > t0[1] { 0 } else { 1 };
        let dom1 = if t1[0] > t1[1] { 0 } else { 1 };
        let dom2 = if t2[0] > t2[1] { 0 } else { 1 };
        assert_eq!(dom0, dom1, "car users must share the cars topic");
        assert_ne!(dom0, dom2, "other user is in the other topic");
        // Per-user word distributions: the paper's core claim. User 0
        // weighs "toyota" (4) over "ford" (5) in the SAME topic; user 1
        // the reverse.
        assert!(
            m.user_word_prob(0, dom0, 4) > 3.0 * m.user_word_prob(0, dom0, 5),
            "user 0 must prefer toyota"
        );
        assert!(
            m.user_word_prob(1, dom1, 5) > 3.0 * m.user_word_prob(1, dom1, 4),
            "user 1 must prefer ford"
        );
        // And per-user URL preferences.
        assert!(m.user_url_prob(0, dom0, 0) > m.user_url_prob(0, dom0, 1));
        assert!(m.user_url_prob(1, dom1, 1) > m.user_url_prob(1, dom1, 0));
    }

    #[test]
    fn hyperparameter_learning_breaks_symmetry() {
        let c = toyota_ford_corpus();
        let m = Upm::train(&c, &cfg());
        let t0 = m.doc_topic(0);
        let cars = if t0[0] > t0[1] { 0 } else { 1 };
        let b = m.beta_k(cars);
        let car_avg: f64 = (0..4).map(|w| b[w]).sum::<f64>() / 4.0;
        let other_avg: f64 = (6..10).map(|w| b[w]).sum::<f64>() / 4.0;
        assert!(
            car_avg > other_avg,
            "learned beta must favor topic words: {car_avg} vs {other_avg}"
        );
        assert!(m.alpha().iter().all(|&a| a > 0.0 && a.is_finite()));
    }

    #[test]
    fn profiles_are_distributions() {
        let c = toyota_ford_corpus();
        let m = Upm::train(&c, &cfg());
        for d in 0..3 {
            let th = m.doc_topic(d);
            assert!((th.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let pw: f64 = (0..10).map(|w| m.user_word_prob(d, 0, w)).sum();
            assert!((pw - 1.0).abs() < 1e-9);
            let pu: f64 = (0..3).map(|u| m.user_url_prob(d, 0, u)).sum();
            assert!((pu - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn temporal_components_fit_session_times() {
        let c = toyota_ford_corpus();
        let m = Upm::train(&c, &cfg());
        let t2 = m.doc_topic(2);
        let other = if t2[0] > t2[1] { 0 } else { 1 };
        assert!(m.tau(other).mean() > m.tau(1 - other).mean());
    }

    #[test]
    fn disabling_hyperlearning_keeps_symmetric_priors() {
        let c = toyota_ford_corpus();
        let mut cfg = cfg();
        cfg.hyper_every = 0;
        let m = Upm::train(&c, &cfg);
        let b = m.beta_k(0);
        assert!(b.iter().all(|&x| (x - cfg.base.beta).abs() < 1e-12));
        assert!(m
            .alpha()
            .iter()
            .all(|&a| (a - cfg.base.alpha).abs() < 1e-12));
    }

    #[test]
    fn deterministic_training() {
        let c = toyota_ford_corpus();
        let a = Upm::train(&c, &cfg());
        let b = Upm::train(&c, &cfg());
        assert_eq!(a.doc_topic(0), b.doc_topic(0));
        assert_eq!(a.alpha(), b.alpha());
    }

    #[test]
    fn parallel_training_is_bit_identical_to_sequential() {
        // The headline property of the per-document design: thread count
        // does not change the model at all.
        let c = toyota_ford_corpus();
        let seq = Upm::train(&c, &cfg());
        for threads in [2usize, 4] {
            let par = Upm::train(&c, &UpmConfig { threads, ..cfg() });
            for d in 0..3 {
                assert_eq!(seq.doc_topic(d), par.doc_topic(d), "threads={threads}");
            }
            assert_eq!(seq.alpha(), par.alpha(), "threads={threads}");
            for z in 0..2 {
                assert_eq!(seq.beta_k(z), par.beta_k(z), "threads={threads}");
                assert_eq!(seq.tau(z).alpha(), par.tau(z).alpha());
            }
        }
    }

    #[test]
    fn optimized_sampler_is_bit_identical_to_reference() {
        // The acceptance bar of the whole optimization: cached
        // transcendentals + sparse counts + pooled sweeps reproduce the
        // pre-optimization sampler bit for bit, hyperlearning included.
        let c = toyota_ford_corpus();
        let reference = UpmReference::train(&c, &cfg());
        for threads in [1usize, 2, 4] {
            let m = Upm::train(&c, &UpmConfig { threads, ..cfg() });
            assert_eq!(m.alpha(), reference.alpha(), "threads={threads}");
            for z in 0..2 {
                assert_eq!(m.beta_k(z), reference.beta_k(z), "threads={threads}");
                assert_eq!(m.delta_k(z), reference.delta_k(z), "threads={threads}");
                assert_eq!(
                    m.tau(z).alpha().to_bits(),
                    reference.tau(z).alpha().to_bits()
                );
                assert_eq!(m.tau(z).beta().to_bits(), reference.tau(z).beta().to_bits());
            }
            for d in 0..3 {
                assert_eq!(m.doc_topic(d), reference.doc_topic(d), "threads={threads}");
                for w in 0..10 {
                    assert_eq!(
                        m.user_word_prob(d, 0, w).to_bits(),
                        reference.user_word_prob(d, 0, w).to_bits()
                    );
                }
                for u in 0..3 {
                    assert_eq!(
                        m.user_url_prob(d, 1, u).to_bits(),
                        reference.user_url_prob(d, 1, u).to_bits()
                    );
                }
            }
        }
    }

    /// The toyota/ford corpus after a log delta: user 2's document gains
    /// two sessions, and a brand-new user 3 arrives with two unseen words
    /// (10, 11) and an unseen URL (3). Users 0 and 1 are untouched.
    fn delta_corpus() -> (Corpus, Vec<Option<usize>>, Vec<bool>) {
        let session =
            |ws: Vec<u32>, u: Option<u32>, t: f64| DocSession::from_records(vec![(ws, u)], t);
        let mut corpus = toyota_ford_corpus();
        corpus.docs[2]
            .sessions
            .push(session(vec![6, 7, 7], Some(2), 0.9));
        corpus.docs[2]
            .sessions
            .push(session(vec![8, 9], None, 0.95));
        corpus.docs.push(Document {
            user: UserId(3),
            sessions: (0..6)
                .map(|i| session(vec![10 + (i % 2), 6], Some(3), 0.8 + 0.03 * (i % 3) as f64))
                .collect(),
        });
        corpus.num_words = 12;
        corpus.num_urls = 4;
        let old_doc_of = vec![Some(0), Some(1), Some(2), None];
        let changed = vec![false, false, true, true];
        (corpus, old_doc_of, changed)
    }

    /// Label-invariant model quality: mean in-sample per-token predictive
    /// log-likelihood `ln Σ_k θ_dk · p(w | k, d)` — topic permutations
    /// between two independently-converged chains cancel out.
    fn mean_token_ll(m: &Upm, c: &Corpus) -> f64 {
        let k = m.num_topics();
        let (mut ll, mut n) = (0.0, 0u32);
        for (d, doc) in c.docs.iter().enumerate() {
            let theta = m.doc_topic(d);
            for s in &doc.sessions {
                for &w in &s.words {
                    let p: f64 = (0..k).map(|z| theta[z] * m.user_word_prob(d, z, w)).sum();
                    ll += p.ln();
                    n += 1;
                }
            }
        }
        ll / f64::from(n)
    }

    #[test]
    fn empty_delta_warm_start_reproduces_the_model() {
        let c = toyota_ford_corpus();
        let m = Upm::train(&c, &cfg());
        let w = m
            .retrain_delta(&c, &[Some(0), Some(1), Some(2)], &[false; 3])
            .expect("trained model must warm-start");
        for d in 0..3 {
            assert_eq!(m.doc_topic(d), w.doc_topic(d), "doc {d} topic profile");
            for z in 0..2 {
                for word in 0..10 {
                    assert_eq!(
                        m.user_word_prob(d, z, word).to_bits(),
                        w.user_word_prob(d, z, word).to_bits()
                    );
                }
                for url in 0..3 {
                    assert_eq!(
                        m.user_url_prob(d, z, url).to_bits(),
                        w.user_url_prob(d, z, url).to_bits()
                    );
                }
            }
        }
        for z in 0..2 {
            assert_eq!(
                m.tau(z).ln_pdf(0.4).to_bits(),
                w.tau(z).ln_pdf(0.4).to_bits()
            );
        }
    }

    #[test]
    fn warm_start_is_thread_count_invariant_and_extends_vocabulary() {
        let c = toyota_ford_corpus();
        let (c2, old_doc_of, changed) = delta_corpus();
        let mut threaded = cfg();
        let base_model = Upm::train(&c, &cfg());
        let w1 = base_model
            .retrain_delta(&c2, &old_doc_of, &changed)
            .unwrap();
        threaded.threads = 4;
        let base_threaded = Upm::train(&c, &threaded);
        let w4 = base_threaded
            .retrain_delta(&c2, &old_doc_of, &changed)
            .unwrap();
        assert_eq!(w1.num_docs(), 4);
        for d in 0..4 {
            let (a, b) = (w1.doc_topic(d), w4.doc_topic(d));
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "doc {d} θ must not depend on threads"
                );
            }
            for z in 0..2 {
                for word in 0..12 {
                    assert_eq!(
                        w1.user_word_prob(d, z, word).to_bits(),
                        w4.user_word_prob(d, z, word).to_bits()
                    );
                }
            }
        }
        // New vocabulary rides on the symmetric base priors (hyperpriors
        // are inherited, not re-optimized, on the warm path).
        for z in 0..2 {
            assert_eq!(w1.beta_k(z).len(), 12);
            assert_eq!(w1.beta_k(z)[10], cfg().base.beta);
            assert_eq!(w1.beta_k(z)[11], cfg().base.beta);
            assert_eq!(w1.delta_k(z).len(), 4);
            assert_eq!(w1.delta_k(z)[3], cfg().base.delta);
        }
        // Untouched users keep their converged per-topic word preferences:
        // the warm path never resampled them.
        let t0 = base_model.doc_topic(0);
        let dom0 = if t0[0] > t0[1] { 0 } else { 1 };
        assert!(w1.user_word_prob(0, dom0, 4) > 3.0 * w1.user_word_prob(0, dom0, 5));
    }

    #[test]
    fn warm_start_tracks_cold_retrain_quality() {
        let (c2, old_doc_of, changed) = delta_corpus();
        let base_model = Upm::train(&toyota_ford_corpus(), &cfg());
        let warm = base_model
            .retrain_delta(&c2, &old_doc_of, &changed)
            .unwrap();
        let cold = Upm::train(&c2, &cfg());
        let (ll_warm, ll_cold) = (mean_token_ll(&warm, &c2), mean_token_ll(&cold, &c2));
        // Independently-converged chains: not bitwise equal, but the warm
        // model must fit the post-delta corpus about as well as a cold
        // rebuild (per-token log-likelihood gap under a quarter nat).
        assert!(
            (ll_warm - ll_cold).abs() < 0.25,
            "warm {ll_warm} vs cold {ll_cold}"
        );
        // And the new user's profile is a usable distribution.
        let th = warm.doc_topic(3);
        assert!((th.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_start_refuses_slotless_models_and_shrunken_corpora() {
        let c = toyota_ford_corpus();
        let mut m = Upm::train(&c, &cfg());
        // A shrunken vocabulary cannot extend the trained model.
        let mut small = c.clone();
        small.num_words = 5;
        assert!(m
            .retrain_delta(&small, &[Some(0), Some(1), Some(2)], &[false; 3])
            .is_none());
        // Dropping the slots (what a store round-trip does) forfeits
        // resumability.
        for d in &mut m.docs {
            d.slots.clear();
        }
        assert!(m
            .retrain_delta(&c, &[Some(0), Some(1), Some(2)], &[false; 3])
            .is_none());
    }

    #[test]
    fn train_with_stats_reports_phases() {
        let c = toyota_ford_corpus();
        let (m, stats) = Upm::train_with_stats(&c, &cfg());
        assert_eq!(stats.sweeps, 60);
        // 60 sweeps of real sampling cannot take literally zero time.
        assert!(stats.sample_ns > 0);
        // hyper_every = 20 over 60 iterations: three L-BFGS passes ran.
        assert!(stats.hyper_ns > 0);
        // And the stats-reporting path trains the same model.
        let plain = Upm::train(&c, &cfg());
        assert_eq!(m.alpha(), plain.alpha());
        assert_eq!(m.doc_topic(0), plain.doc_topic(0));
    }
}
