//! Golden-model oracle for the UPM sampler.
//!
//! This is a **verbatim copy of the pre-optimization sampler**: dense
//! [`Counts2D`] per-document tables, serial sweeps, and direct
//! `ln_rising`/`ln_pdf` evaluation with no transcendental caching. It
//! exists solely so the property tests can assert that the optimized
//! [`crate::upm::Upm`] — sparse counts, cached transcendentals, pooled
//! sweeps — is **bit-identical** to the original arithmetic for every
//! seed, corpus and thread count.
//!
//! Do not optimize this file. Its value is that it stays simple and
//! obviously equal to the model as first derived from the paper
//! (Eq. 23, 25–30); any divergence between [`UpmReference`] and `Upm`
//! is a bug in the optimized path, never in this one.

use crate::corpus::Corpus;
use crate::counts::{to_multiset, Counts2D};
use crate::model::TopicModel;
use crate::upm::UpmConfig;
use pqsda_linalg::special::{digamma, ln_gamma, ln_rising};
use pqsda_linalg::stats::{sample_discrete, softmax_in_place, RunningMoments};
use pqsda_linalg::{BetaDistribution, Lbfgs, LbfgsConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One session's sampling slot.
#[derive(Clone, Debug)]
struct Slot {
    words: Vec<(u32, u32)>,
    urls: Vec<(u32, u32)>,
    time: f64,
    z: u32,
}

/// All mutable per-document sampler state.
#[derive(Clone, Debug)]
struct DocState {
    topic_counts: Vec<u32>,
    topic_word: Counts2D,
    topic_url: Counts2D,
    slots: Vec<Slot>,
}

/// Global (read-only within a sweep) parameters.
#[derive(Clone, Debug)]
struct Globals {
    alpha: Vec<f64>,
    beta: Vec<Vec<f64>>,
    delta: Vec<Vec<f64>>,
    beta_sums: Vec<f64>,
    delta_sums: Vec<f64>,
    taus: Vec<BetaDistribution>,
}

/// The reference (pre-optimization) UPM implementation.
#[derive(Clone, Debug)]
pub struct UpmReference {
    cfg: UpmConfig,
    num_words: usize,
    num_urls: usize,
    docs: Vec<DocState>,
    globals: Globals,
}

impl UpmReference {
    /// Trains the reference model — always serial; the original parallel
    /// path was bit-identical to this by construction, so the serial loop
    /// stands in for every thread count.
    pub fn train(corpus: &Corpus, cfg: &UpmConfig) -> Self {
        let base = cfg.base;
        assert!(base.num_topics > 0, "upm: need at least one topic");
        assert!(corpus.num_docs() > 0, "upm: empty corpus");
        let k = base.num_topics;
        let w_vocab = corpus.num_words;
        let u_vocab = corpus.num_urls.max(1);

        let globals = Globals {
            alpha: vec![base.alpha; k],
            beta: vec![vec![base.beta; w_vocab]; k],
            delta: vec![vec![base.delta; u_vocab]; k],
            beta_sums: vec![base.beta * w_vocab as f64; k],
            delta_sums: vec![base.delta * u_vocab as f64; k],
            taus: vec![BetaDistribution::uniform(); k],
        };

        let docs: Vec<DocState> = corpus
            .docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                let mut rng = doc_rng(base.seed, 0, d);
                let mut state = DocState {
                    topic_counts: vec![0; k],
                    topic_word: Counts2D::new(k, w_vocab),
                    topic_url: Counts2D::new(k, u_vocab),
                    slots: Vec::with_capacity(doc.sessions.len()),
                };
                for s in &doc.sessions {
                    let z = rng.gen_range(0..k) as u32;
                    let slot = Slot {
                        words: to_multiset(&s.words),
                        urls: to_multiset(&s.urls),
                        time: s.time,
                        z,
                    };
                    state.add(&slot, z);
                    state.slots.push(slot);
                }
                state
            })
            .collect();

        let mut model = UpmReference {
            cfg: *cfg,
            num_words: w_vocab,
            num_urls: u_vocab,
            docs,
            globals,
        };

        for sweep in 1..=base.iterations {
            model.sweep(sweep);
            model.refit_taus();
            if cfg.hyper_every > 0 && sweep % cfg.hyper_every == 0 {
                model.optimize_hyperparameters();
            }
        }
        model
    }

    fn sweep(&mut self, sweep: usize) {
        let seed = self.cfg.base.seed;
        let globals = &self.globals;
        for (d, doc) in self.docs.iter_mut().enumerate() {
            let mut rng = doc_rng(seed, sweep, d);
            doc.sample_all(globals, &mut rng);
        }
    }

    fn refit_taus(&mut self) {
        let k = self.globals.alpha.len();
        let mut moments = vec![RunningMoments::new(); k];
        for doc in &self.docs {
            for s in &doc.slots {
                moments[s.z as usize].push(s.time);
            }
        }
        for z in 0..k {
            self.globals.taus[z] = if moments[z].count() >= 2 {
                BetaDistribution::fit_moments(moments[z].mean(), moments[z].variance_biased())
            } else {
                BetaDistribution::uniform()
            };
        }
    }

    fn optimize_hyperparameters(&mut self) {
        self.optimize_alpha();
        self.optimize_emission(true);
        self.optimize_emission(false);
    }

    fn optimize_alpha(&mut self) {
        let k = self.globals.alpha.len();
        let rows: Vec<(Vec<f64>, f64)> = self
            .docs
            .iter()
            .map(|doc| {
                let row: Vec<f64> = doc.topic_counts.iter().map(|&c| c as f64).collect();
                let sum: f64 = row.iter().sum();
                (row, sum)
            })
            .collect();
        let mut objective = |x: &[f64], grad: &mut [f64]| -> f64 {
            let alpha: Vec<f64> = x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
            let a0: f64 = alpha.iter().sum();
            let mut nll = 0.0;
            let mut g = vec![0.0; k];
            for (row, sum) in &rows {
                nll -= ln_gamma(a0) - ln_gamma(sum + a0);
                let d0 = digamma(a0) - digamma(sum + a0);
                for z in 0..k {
                    if row[z] > 0.0 {
                        nll -= ln_gamma(row[z] + alpha[z]) - ln_gamma(alpha[z]);
                        g[z] -= digamma(row[z] + alpha[z]) - digamma(alpha[z]);
                    }
                    g[z] -= d0;
                }
            }
            for z in 0..k {
                grad[z] = g[z] * alpha[z];
            }
            nll
        };
        let x0: Vec<f64> = self.globals.alpha.iter().map(|a| a.ln()).collect();
        let out = Lbfgs::new(LbfgsConfig {
            max_iterations: self.cfg.hyper_iterations,
            ..LbfgsConfig::default()
        })
        .minimize(&mut objective, &x0);
        self.globals.alpha = out.x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
    }

    fn optimize_emission(&mut self, is_words: bool) {
        let k = self.globals.alpha.len();
        let vocab = if is_words {
            self.num_words
        } else {
            self.num_urls
        };
        for z in 0..k {
            let mut doc_rows: Vec<(Vec<(usize, f64)>, f64)> = Vec::new();
            for doc in &self.docs {
                let t = if is_words {
                    &doc.topic_word
                } else {
                    &doc.topic_url
                };
                let sum = t.row_sum(z) as f64;
                if sum == 0.0 {
                    continue;
                }
                let sparse: Vec<(usize, f64)> = t
                    .row(z)
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(v, &c)| (v, c as f64))
                    .collect();
                doc_rows.push((sparse, sum));
            }
            if doc_rows.is_empty() {
                continue;
            }
            let init = if is_words {
                self.cfg.base.beta
            } else {
                self.cfg.base.delta
            };
            let gamma_b = 1.0;
            let gamma_a = 1.0 + gamma_b * init;
            let n_rows = doc_rows.len() as f64;
            let mut objective = |x: &[f64], grad: &mut [f64]| -> f64 {
                let prior: Vec<f64> = x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
                let p0: f64 = prior.iter().sum();
                let mut nll = 0.0;
                let mut g = vec![0.0; vocab];
                let dig_p0 = digamma(p0);
                let ln_gamma_p0 = ln_gamma(p0);
                for (sparse, sum) in &doc_rows {
                    nll -= ln_gamma_p0 - ln_gamma(sum + p0);
                    let d0 = dig_p0 - digamma(sum + p0);
                    for gz in g.iter_mut() {
                        *gz -= d0;
                    }
                    for &(v, c) in sparse {
                        nll -= ln_gamma(c + prior[v]) - ln_gamma(prior[v]);
                        g[v] -= digamma(c + prior[v]) - digamma(prior[v]);
                    }
                }
                for v in 0..vocab {
                    nll -= n_rows * ((gamma_a - 1.0) * prior[v].ln() - gamma_b * prior[v]);
                    g[v] -= n_rows * ((gamma_a - 1.0) / prior[v] - gamma_b);
                    grad[v] = g[v] * prior[v];
                }
                nll
            };
            let current = if is_words {
                &self.globals.beta[z]
            } else {
                &self.globals.delta[z]
            };
            let x0: Vec<f64> = current.iter().map(|b| b.ln()).collect();
            let out = Lbfgs::new(LbfgsConfig {
                max_iterations: self.cfg.hyper_iterations,
                ..LbfgsConfig::default()
            })
            .minimize(&mut objective, &x0);
            let learned: Vec<f64> = out.x.iter().map(|v| v.exp().clamp(1e-8, 1e6)).collect();
            let sum: f64 = learned.iter().sum();
            if is_words {
                self.globals.beta[z] = learned;
                self.globals.beta_sums[z] = sum;
            } else {
                self.globals.delta[z] = learned;
                self.globals.delta_sums[z] = sum;
            }
        }
    }

    /// The learned α vector.
    pub fn alpha(&self) -> &[f64] {
        &self.globals.alpha
    }

    /// The learned word hyperprior of topic `k`.
    pub fn beta_k(&self, k: usize) -> &[f64] {
        &self.globals.beta[k]
    }

    /// The learned URL hyperprior of topic `k`.
    pub fn delta_k(&self, k: usize) -> &[f64] {
        &self.globals.delta[k]
    }

    /// The fitted temporal distribution of topic `k`.
    pub fn tau(&self, k: usize) -> &BetaDistribution {
        &self.globals.taus[k]
    }

    /// Eq. 31 numerator building block `p(w | z = k, d)`.
    pub fn user_word_prob(&self, doc: usize, k: usize, w: u32) -> f64 {
        let t = &self.docs[doc].topic_word;
        (t.get(k, w as usize) as f64 + self.globals.beta[k][w as usize])
            / (t.row_sum(k) as f64 + self.globals.beta_sums[k])
    }

    /// Per-user URL probability `p(u | z = k, d)`.
    pub fn user_url_prob(&self, doc: usize, k: usize, u: u32) -> f64 {
        let t = &self.docs[doc].topic_url;
        (t.get(k, u as usize) as f64 + self.globals.delta[k][u as usize])
            / (t.row_sum(k) as f64 + self.globals.delta_sums[k])
    }

    /// Number of documents profiled.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }
}

impl DocState {
    fn add(&mut self, s: &Slot, z: u32) {
        self.topic_counts[z as usize] += 1;
        for &(w, n) in &s.words {
            self.topic_word.inc(z as usize, w as usize, n);
        }
        for &(u, n) in &s.urls {
            self.topic_url.inc(z as usize, u as usize, n);
        }
    }

    fn remove(&mut self, s: &Slot, z: u32) {
        self.topic_counts[z as usize] -= 1;
        for &(w, n) in &s.words {
            self.topic_word.dec(z as usize, w as usize, n);
        }
        for &(u, n) in &s.urls {
            self.topic_url.dec(z as usize, u as usize, n);
        }
    }

    /// Eq. 23 in log space, Gamma ratios as rising factorials — evaluated
    /// directly, no caching.
    fn ln_conditional(&self, g: &Globals, s: &Slot, z: usize) -> f64 {
        let mut acc = (self.topic_counts[z] as f64 + g.alpha[z]).ln();
        let tw = &self.topic_word;
        let mut n_total = 0usize;
        for &(w, n) in &s.words {
            acc += ln_rising(
                tw.get(z, w as usize) as f64 + g.beta[z][w as usize],
                n as usize,
            );
            n_total += n as usize;
        }
        acc -= ln_rising(tw.row_sum(z) as f64 + g.beta_sums[z], n_total);
        if !s.urls.is_empty() {
            let tu = &self.topic_url;
            let mut m_total = 0usize;
            for &(u, n) in &s.urls {
                acc += ln_rising(
                    tu.get(z, u as usize) as f64 + g.delta[z][u as usize],
                    n as usize,
                );
                m_total += n as usize;
            }
            acc -= ln_rising(tu.row_sum(z) as f64 + g.delta_sums[z], m_total);
        }
        acc + g.taus[z].ln_pdf(s.time)
    }

    fn sample_all(&mut self, g: &Globals, rng: &mut SmallRng) {
        let k = g.alpha.len();
        let mut ln_w = vec![0.0; k];
        for i in 0..self.slots.len() {
            let z_old = self.slots[i].z;
            let slot = std::mem::replace(
                &mut self.slots[i],
                Slot {
                    words: Vec::new(),
                    urls: Vec::new(),
                    time: 0.0,
                    z: 0,
                },
            );
            self.remove(&slot, z_old);
            for (z, lw) in ln_w.iter_mut().enumerate() {
                *lw = self.ln_conditional(g, &slot, z);
            }
            softmax_in_place(&mut ln_w);
            let z_new = sample_discrete(&ln_w, rng.gen::<f64>()) as u32;
            self.add(&slot, z_new);
            self.slots[i] = Slot { z: z_new, ..slot };
        }
    }
}

/// The per-(seed, sweep, document) RNG stream — must match
/// `crate::upm::doc_rng` constant-for-constant.
fn doc_rng(seed: u64, sweep: usize, doc: usize) -> SmallRng {
    SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((sweep as u64) << 32)
            .wrapping_add(doc as u64),
    )
}

impl TopicModel for UpmReference {
    fn name(&self) -> &str {
        "UPM-reference"
    }

    fn num_topics(&self) -> usize {
        self.globals.alpha.len()
    }

    fn doc_topic(&self, doc: usize) -> Vec<f64> {
        let a0: f64 = self.globals.alpha.iter().sum();
        let total: u32 = self.docs[doc].topic_counts.iter().sum();
        let denom = total as f64 + a0;
        self.docs[doc]
            .topic_counts
            .iter()
            .zip(&self.globals.alpha)
            .map(|(&c, &a)| (c as f64 + a) / denom)
            .collect()
    }

    fn topic_word_prob(&self, doc: usize, k: usize, w: u32) -> f64 {
        self.user_word_prob(doc, k, w)
    }

    fn topic_url_prob(&self, doc: usize, k: usize, u: u32) -> f64 {
        self.user_url_prob(doc, k, u)
    }

    fn topic_time_ln_pdf(&self, k: usize, t: f64) -> f64 {
        self.globals.taus[k].ln_pdf(t)
    }
}
