//! Bit-identity property tests for the optimized UPM sampler.
//!
//! The optimized sampler (`Upm`: cached transcendentals, sparse
//! per-document counts, pooled parallel sweeps) must reproduce the frozen
//! pre-optimization sampler (`UpmReference`: dense counts, serial, direct
//! `ln_rising`/`ln_pdf`) **to the last bit** on any corpus, any seed and
//! any thread count — not merely to a tolerance. These tests generate
//! random small corpora and training configurations and compare every
//! observable of the two models with exact `f64` equality.

use pqsda_linalg::special::{ln_rising, ln_rising1_table};
use pqsda_querylog::UserId;
use pqsda_topics::corpus::{Corpus, DocSession, Document};
use pqsda_topics::model::{TopicModel, TrainConfig};
use pqsda_topics::upm::{Upm, UpmConfig};
use pqsda_topics::upm_reference::UpmReference;
use proptest::prelude::*;

/// Raw generated shape: per doc, per session, (word ids, optional url,
/// timestamp). Ids are drawn from a wide range and reduced modulo the
/// vocabulary in `build_corpus`, since the shim has no flat-map strategy.
type RawDocs = Vec<Vec<(Vec<u32>, Option<u32>, f64)>>;

fn build_corpus(num_words: usize, num_urls: usize, raw: RawDocs) -> Corpus {
    let docs = raw
        .into_iter()
        .enumerate()
        .map(|(d, sessions)| Document {
            user: UserId(d as u32),
            sessions: sessions
                .into_iter()
                .map(|(words, url, time)| {
                    let words: Vec<u32> = words.into_iter().map(|w| w % num_words as u32).collect();
                    let url = if num_urls == 0 {
                        None
                    } else {
                        url.map(|u| u % num_urls as u32)
                    };
                    DocSession::from_records(vec![(words, url)], time)
                })
                .collect(),
        })
        .collect();
    Corpus {
        docs,
        num_words,
        num_urls,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole acceptance property: for random corpora, seeds,
    /// iteration counts, with and without hyperparameter learning, and at
    /// every thread count, the optimized sampler's observables equal the
    /// reference's bitwise.
    #[test]
    fn optimized_upm_matches_reference_bitwise(
        num_words in 4usize..12,
        num_urls in 0usize..4,
        raw in prop::collection::vec(
            prop::collection::vec(
                (
                    prop::collection::vec(0u32..1024, 1..5),
                    prop::option::of(0u32..1024),
                    0.02f64..0.98,
                ),
                1..7,
            ),
            1..6,
        ),
        k in 1usize..4,
        iterations in 3usize..9,
        learn_hypers in 0u32..2,
        seed in 0u64..1 << 40,
    ) {
        let corpus = build_corpus(num_words, num_urls, raw);
        let cfg = UpmConfig {
            base: TrainConfig {
                num_topics: k,
                iterations,
                seed,
                ..TrainConfig::default()
            },
            hyper_every: if learn_hypers == 0 { 0 } else { 2 },
            hyper_iterations: 5,
            threads: 1,
        };
        let reference = UpmReference::train(&corpus, &cfg);
        for threads in [1usize, 2, 4] {
            let m = Upm::train(&corpus, &UpmConfig { threads, ..cfg });
            prop_assert_eq!(m.num_docs(), reference.num_docs());
            for (a, r) in m.alpha().iter().zip(reference.alpha()) {
                prop_assert_eq!(a.to_bits(), r.to_bits(), "alpha, threads={}", threads);
            }
            for z in 0..k {
                for (a, r) in m.beta_k(z).iter().zip(reference.beta_k(z)) {
                    prop_assert_eq!(a.to_bits(), r.to_bits(), "beta[{}], threads={}", z, threads);
                }
                for (a, r) in m.delta_k(z).iter().zip(reference.delta_k(z)) {
                    prop_assert_eq!(a.to_bits(), r.to_bits(), "delta[{}], threads={}", z, threads);
                }
                prop_assert_eq!(m.tau(z).alpha().to_bits(), reference.tau(z).alpha().to_bits());
                prop_assert_eq!(m.tau(z).beta().to_bits(), reference.tau(z).beta().to_bits());
            }
            for d in 0..m.num_docs() {
                let (td, rd) = (m.doc_topic(d), reference.doc_topic(d));
                for (a, r) in td.iter().zip(&rd) {
                    prop_assert_eq!(a.to_bits(), r.to_bits(), "theta[{}], threads={}", d, threads);
                }
                for z in 0..k {
                    for w in 0..num_words as u32 {
                        prop_assert_eq!(
                            m.user_word_prob(d, z, w).to_bits(),
                            reference.user_word_prob(d, z, w).to_bits()
                        );
                    }
                    for u in 0..num_urls.max(1) as u32 {
                        prop_assert_eq!(
                            m.user_url_prob(d, z, u).to_bits(),
                            reference.user_url_prob(d, z, u).to_bits()
                        );
                    }
                }
            }
        }
    }

    /// The transcendental cache's contract: a table hit equals direct
    /// `ln_rising` evaluation to the bit, including through the sampler's
    /// actual read pattern (`count 0` → `0.0 + prior`).
    #[test]
    fn ln_rising_cache_hit_is_bit_identical(
        priors in prop::collection::vec(1e-6f64..10.0, 1..40),
    ) {
        let table = ln_rising1_table(&priors);
        for (i, &p) in priors.iter().enumerate() {
            prop_assert_eq!(table[i].to_bits(), ln_rising(p, 1).to_bits());
            prop_assert_eq!(table[i].to_bits(), ln_rising(0.0 + p, 1).to_bits());
        }
    }
}
