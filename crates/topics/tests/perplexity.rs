//! Cross-model integration test: on a synthetic topic-world log, richer
//! models must not predict worse than the uniform baseline, and the UPM
//! should beat plain LDA — the qualitative ordering of the paper's Fig. 4.

use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_topics::clickmodels::{Ctm, Mwm, Tum};
use pqsda_topics::lda::Lda;
use pqsda_topics::ptm::{Ptm1, Ptm2};
use pqsda_topics::sstm::Sstm;
use pqsda_topics::tot::Tot;
use pqsda_topics::{perplexity, Corpus, SplitCorpus, TrainConfig, Upm, UpmConfig};

fn setup() -> SplitCorpus {
    let synth = generate(&SynthConfig {
        num_users: 40,
        sessions_per_user: (20, 30),
        ..SynthConfig::tiny(101)
    });
    let corpus = Corpus::build(&synth.log, &synth.truth.sessions);
    SplitCorpus::by_fraction(&corpus, 0.7)
}

fn cfg() -> TrainConfig {
    // K at world-topic granularity: the regime the paper studies, where a
    // topic is broad ("cars") and users differ in facet-level word usage
    // ("toyota" vs "ford"). Per-user distributions only pay off there; at
    // K ≈ #facets every model degenerates to facet-specific topics.
    TrainConfig {
        num_topics: 4,
        iterations: 40,
        seed: 77,
        ..TrainConfig::default()
    }
}

#[test]
fn all_models_beat_uniform_and_upm_beats_lda() {
    let split = setup();
    let vocab = split.observed.num_words as f64;
    let cfg = cfg();

    let lda = Lda::train(&split.observed, &cfg);
    let tot = Tot::train(&split.observed, &cfg);
    let ptm1 = Ptm1::train(&split.observed, &cfg);
    let ptm2 = Ptm2::train(&split.observed, &cfg);
    let mwm = Mwm::train(&split.observed, &cfg);
    let tum = Tum::train(&split.observed, &cfg);
    let ctm = Ctm::train(&split.observed, &cfg);
    let sstm = Sstm::train(&split.observed, &cfg);
    let upm = Upm::train(
        &split.observed,
        &UpmConfig {
            base: cfg,
            hyper_every: 15,
            hyper_iterations: 8,
            threads: 1,
        },
    );

    let models: Vec<(&str, f64)> = vec![
        ("LDA", perplexity(&lda, &split).unwrap()),
        ("TOT", perplexity(&tot, &split).unwrap()),
        ("PTM1", perplexity(&ptm1, &split).unwrap()),
        ("PTM2", perplexity(&ptm2, &split).unwrap()),
        ("MWM", perplexity(&mwm, &split).unwrap()),
        ("TUM", perplexity(&tum, &split).unwrap()),
        ("CTM", perplexity(&ctm, &split).unwrap()),
        ("SSTM", perplexity(&sstm, &split).unwrap()),
        ("UPM", perplexity(&upm, &split).unwrap()),
    ];

    for (name, p) in &models {
        assert!(
            p.is_finite() && *p > 1.0,
            "{name}: degenerate perplexity {p}"
        );
        assert!(
            *p < vocab,
            "{name}: perplexity {p} no better than uniform ({vocab})"
        );
    }
    let lda_p = models[0].1;
    let upm_p = models[8].1;
    assert!(
        upm_p < lda_p,
        "UPM ({upm_p:.1}) must beat LDA ({lda_p:.1}) as in Fig. 4"
    );
}
