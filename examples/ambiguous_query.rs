//! The paper's motivating scenario (§I): the ambiguous query **"sun"** —
//! solar system? Sun Microsystems? a newspaper? — served to two different
//! users.
//!
//! A hand-crafted log gives "sun" three facets with distinct user bases.
//! The example shows (1) the diversified candidate list covering all three
//! facets, and (2) the personalized rankings: the computer scientist sees
//! `sun java` first, the astronomy enthusiast `sun solar system` — while
//! *both* lists keep all facets reachable, which is exactly the PQS-DA
//! thesis that diversification and personalization cooperate.
//!
//! Run with: `cargo run -p pqsda --example ambiguous_query`

use pqsda::{Personalizer, PqsDa, PqsDaConfig};
use pqsda_baselines::{SuggestRequest, Suggester};
use pqsda_graph::multi::MultiBipartite;
use pqsda_graph::weighting::WeightingScheme;
use pqsda_querylog::session::{segment_sessions, SessionConfig};
use pqsda_querylog::{LogEntry, QueryLog, UserId};
use pqsda_topics::{Corpus, TrainConfig, Upm, UpmConfig};

const DEV: UserId = UserId(0); // a computer scientist
const ASTRO: UserId = UserId(1); // an astronomy enthusiast
const PRESS: UserId = UserId(2); // a newspaper reader

fn main() {
    let mut entries = Vec::new();
    // Several repetitions build enough signal for the profiles.
    for rep in 0..6u64 {
        let t = rep * 100_000;
        // The computer scientist: Java/Oracle world.
        entries.push(LogEntry::new(DEV, "sun", Some("java.sun.com"), t));
        entries.push(LogEntry::new(DEV, "sun java", Some("java.sun.com"), t + 40));
        entries.push(LogEntry::new(DEV, "sun oracle", Some("oracle.com"), t + 90));
        entries.push(LogEntry::new(
            DEV,
            "java jvm download",
            Some("java.sun.com"),
            t + 140,
        ));
        // The astronomer: solar system world.
        entries.push(LogEntry::new(ASTRO, "sun", Some("nasa.gov/sun"), t + 1000));
        entries.push(LogEntry::new(
            ASTRO,
            "sun solar system",
            Some("nasa.gov/sun"),
            t + 1050,
        ));
        entries.push(LogEntry::new(
            ASTRO,
            "solar eclipse dates",
            Some("skycal.org"),
            t + 1100,
        ));
        // The newspaper reader: UK tabloid world.
        entries.push(LogEntry::new(PRESS, "sun", Some("thesun.co.uk"), t + 2000));
        entries.push(LogEntry::new(
            PRESS,
            "sun daily uk",
            Some("thesun.co.uk"),
            t + 2050,
        ));
        entries.push(LogEntry::new(
            PRESS,
            "uk tabloid news",
            Some("news.uk"),
            t + 2100,
        ));
    }

    let mut log = QueryLog::from_entries(&entries);
    let sessions = segment_sessions(&mut log, &SessionConfig::default());
    let multi = MultiBipartite::build(&log, &sessions, WeightingScheme::CfIqf);

    // Train the UPM on the three users' histories (paper §V-A).
    let corpus = Corpus::build(&log, &sessions);
    let upm = Upm::train(
        &corpus,
        &UpmConfig {
            base: TrainConfig {
                num_topics: 3,
                iterations: 60,
                seed: 7,
                ..TrainConfig::default()
            },
            hyper_every: 20,
            hyper_iterations: 8,
            threads: 1,
        },
    );
    let personalizer = Personalizer::new(upm, &corpus, log.num_users());
    let engine = PqsDa::new(log, multi, Some(personalizer), PqsDaConfig::default());

    let sun = engine.log().find_query("sun").unwrap();
    let show = |title: &str, list: &[pqsda_querylog::QueryId]| {
        println!("\n{title}");
        for (i, q) in list.iter().enumerate() {
            println!("  {}. {}", i + 1, engine.log().query_text(*q));
        }
    };

    // 1. Diversification only: one list covering all facets.
    let diversified = engine.diversify(&SuggestRequest::simple(sun, 6));
    show(
        "diversified candidates for \"sun\" (anonymous):",
        &diversified,
    );
    let covers = |needle: &str| {
        diversified
            .iter()
            .any(|&q| engine.log().query_text(q).contains(needle))
    };
    assert!(
        covers("java") || covers("oracle"),
        "computing facet missing"
    );
    assert!(covers("solar"), "astronomy facet missing");
    assert!(covers("uk") || covers("daily"), "newspaper facet missing");

    // 2. Personalized rankings per user.
    for (user, label, expected) in [
        (DEV, "computer scientist", &["java", "oracle", "jvm"][..]),
        (ASTRO, "astronomy enthusiast", &["solar", "eclipse"][..]),
        (PRESS, "newspaper reader", &["uk", "daily", "tabloid"][..]),
    ] {
        let list = engine.suggest(&SuggestRequest::simple(sun, 6).for_user(user));
        show(&format!("personalized for the {label}:"), &list);
        let top = engine.log().query_text(list[0]);
        assert!(
            expected.iter().any(|e| top.contains(e)),
            "{label}: expected a {expected:?} query first, got {top}"
        );
    }
    println!("\nAll three users got their own facet first — with every facet still present.");
}
