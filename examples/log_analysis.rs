//! Query-log analysis walkthrough: cleaning, session segmentation and the
//! §III coverage argument — how much more of the log the multi-bipartite
//! representation reaches compared with the click graph.
//!
//! Run with: `cargo run -p pqsda --example log_analysis --release`

use pqsda_graph::bipartite::EntityKind;
use pqsda_graph::multi::MultiBipartite;
use pqsda_graph::weighting::{inverse_query_frequencies, WeightingScheme};
use pqsda_querylog::clean::{clean_entries, CleanConfig};
use pqsda_querylog::session::{segment_sessions, SessionConfig};
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::{LogEntry, QueryLog, UserId};

fn main() {
    // Generate a raw log, then pollute it the way real logs are polluted:
    // navigational URL queries, reloads, junk.
    let synth = generate(&SynthConfig {
        seed: 5,
        num_users: 80,
        ..SynthConfig::default()
    });
    let mut raw: Vec<LogEntry> = Vec::new();
    for (i, r) in synth.log.records().iter().enumerate() {
        let text = synth.log.query_text(r.query).to_owned();
        let url = r.click.map(|u| synth.log.url_text(u).to_owned());
        raw.push(LogEntry::new(r.user, &text, url.as_deref(), r.timestamp));
        if i % 7 == 0 {
            // A reload of the same query seconds later.
            raw.push(LogEntry::new(
                r.user,
                &text,
                url.as_deref(),
                r.timestamp + 2,
            ));
        }
        if i % 13 == 0 {
            // A pasted URL "query".
            raw.push(LogEntry::new(
                r.user,
                "www.somewhere.com",
                None,
                r.timestamp + 5,
            ));
        }
        if i % 17 == 0 {
            raw.push(LogEntry::new(UserId(999), "!!!", None, r.timestamp + 6));
        }
    }
    println!("raw entries: {}", raw.len());

    // 1. Cleaning (Wang & Zhai style, paper §VI-A).
    let (cleaned, stats) = clean_entries(&raw, &CleanConfig::default());
    println!(
        "cleaning: kept {} | dropped {} empty, {} url-like, {} duplicates, {} long",
        stats.kept,
        stats.dropped_empty,
        stats.dropped_url_like,
        stats.dropped_duplicate,
        stats.dropped_long
    );

    // 2. Interning + session segmentation (paper Definition 1, ref [25]).
    let mut log = QueryLog::from_entries(&cleaned);
    let sessions = segment_sessions(&mut log, &SessionConfig::default());
    let avg_len = sessions.iter().map(|s| s.len()).sum::<usize>() as f64 / sessions.len() as f64;
    println!(
        "sessions: {} (avg {:.2} records); {} distinct queries, {} URLs, {} terms",
        sessions.len(),
        avg_len,
        log.num_queries(),
        log.num_urls(),
        log.num_terms()
    );

    // 3. The §III coverage argument, quantified: average one-hop neighbour
    //    count per query through each bipartite vs all three.
    let multi = MultiBipartite::build(&log, &sessions, WeightingScheme::Raw);
    let mut per_kind = [0usize; 3];
    let mut all = 0usize;
    let n = multi.num_queries();
    for q in 0..n {
        all += multi.one_hop_neighbors(q).len();
        for (i, kind) in EntityKind::ALL.iter().enumerate() {
            let b = multi.get(*kind);
            let mut seen = std::collections::HashSet::new();
            let (ents, _) = b.matrix().row(q);
            for &e in ents {
                let (qs, _) = b.transposed().row(e as usize);
                seen.extend(qs.iter().copied());
            }
            seen.remove(&(q as u32));
            per_kind[i] += seen.len();
        }
    }
    println!("\naverage one-hop query neighbours:");
    for (i, kind) in EntityKind::ALL.iter().enumerate() {
        println!(
            "  {:?} bipartite only: {:.2}",
            kind,
            per_kind[i] as f64 / n as f64
        );
    }
    println!("  multi-bipartite:      {:.2}", all as f64 / n as f64);
    assert!(
        all > per_kind[0],
        "multi-bipartite must reach more than the click graph"
    );

    // 4. The iqf weights (Eq. 1–3): the most and least discriminative URLs.
    let click = multi.get(EntityKind::Url);
    let iqf = inverse_query_frequencies(click, log.num_queries());
    let mut order: Vec<usize> = (0..log.num_urls()).collect();
    order.sort_by(|&a, &b| iqf[b].partial_cmp(&iqf[a]).unwrap());
    println!("\nmost discriminative URLs (highest iqf):");
    for &u in order.iter().take(3) {
        println!(
            "  {:.3}  {}",
            iqf[u],
            log.url_text(pqsda_querylog::UrlId::from_index(u))
        );
    }
    println!("least discriminative URLs:");
    for &u in order.iter().rev().take(3) {
        println!(
            "  {:.3}  {}",
            iqf[u],
            log.url_text(pqsda_querylog::UrlId::from_index(u))
        );
    }
}
