//! Context-aware suggestion inside a live search session, on a full
//! synthetic log: the search context (paper Definition 2) and its Eq. 7
//! decay steer the first candidate, and the user's UPM profile
//! personalizes the final ranking.
//!
//! Run with: `cargo run -p pqsda --example personalized_session --release`

use pqsda::{preference_score, Personalizer, PqsDa, PqsDaConfig};
use pqsda_baselines::{SuggestRequest, Suggester};
use pqsda_graph::multi::MultiBipartite;
use pqsda_graph::weighting::WeightingScheme;
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_topics::{Corpus, SplitCorpus, TrainConfig, Upm, UpmConfig};

fn main() {
    // A medium synthetic world (see DESIGN.md §4 for what it preserves).
    let synth = generate(&SynthConfig {
        seed: 11,
        num_users: 60,
        sessions_per_user: (20, 32),
        ..SynthConfig::default()
    });
    let log = synth.log.clone();
    println!(
        "synthetic log: {} users, {} records, {} distinct queries",
        log.num_users(),
        log.records().len(),
        log.num_queries()
    );

    // Profile users on their history, holding out the most recent sessions
    // (the paper's §VI-C protocol).
    let corpus = Corpus::build(&log, &synth.truth.sessions);
    let split = SplitCorpus::last_k(&corpus, 3);
    let upm = Upm::train(
        &split.observed,
        &UpmConfig {
            base: TrainConfig {
                num_topics: 10,
                iterations: 50,
                seed: 3,
                ..TrainConfig::default()
            },
            hyper_every: 25,
            hyper_iterations: 8,
            threads: 1,
        },
    );
    let personalizer = Personalizer::new(upm, &split.observed, log.num_users());

    let multi = MultiBipartite::build(&log, &synth.truth.sessions, WeightingScheme::CfIqf);
    let engine = PqsDa::new(log, multi, Some(personalizer), PqsDaConfig::default());

    // Pick a held-out session with at least two queries: replay it.
    let session = synth
        .truth
        .sessions
        .iter()
        .rev()
        .find(|s| s.queries.len() >= 3)
        .expect("some session has three queries");
    let user = session.user;
    let log = engine.log();
    println!("\nreplaying a session of user {user:?}:");
    for &q in &session.queries {
        println!("  typed: {}", log.query_text(q));
    }

    // Suggest for the LAST query given the earlier ones as context.
    let input = *session.queries.last().unwrap();
    let context: Vec<_> = session.queries[..session.queries.len() - 1].to_vec();
    let times: Vec<u64> = context.iter().map(|_| session.start).collect();
    let req = SuggestRequest::simple(input, 6)
        .with_context(context.clone(), times, session.end)
        .for_user(user);
    let with_context = engine.suggest(&req);
    let without = engine.suggest(&SuggestRequest::simple(input, 6).for_user(user));

    println!("\nsuggestions with session context:");
    for (i, &q) in with_context.iter().enumerate() {
        println!("  {}. {}", i + 1, log.query_text(q));
    }
    println!("suggestions without context:");
    for (i, &q) in without.iter().enumerate() {
        println!("  {}. {}", i + 1, log.query_text(q));
    }

    // Show the preference scores (Eq. 31) behind the personalized order.
    println!("\nEq. 31 preference scores P(q|d) for the contextual list:");
    let corpus_for_scores = Corpus::build(log, &synth.truth.sessions);
    if let Some(doc) = corpus_for_scores.doc_of_user(user) {
        // Scores via the engine's own trained model would need access to
        // the personalizer; recompute on a fresh profile for illustration.
        let upm2 = Upm::train(
            &corpus_for_scores,
            &UpmConfig {
                base: TrainConfig {
                    num_topics: 10,
                    iterations: 30,
                    seed: 3,
                    ..TrainConfig::default()
                },
                hyper_every: 0,
                hyper_iterations: 0,
                threads: 1,
            },
        );
        for &q in &with_context {
            println!(
                "  {:<30} {:.5}",
                log.query_text(q),
                preference_score(&upm2, doc, log, q)
            );
        }
    }

    assert!(!with_context.is_empty());
    assert!(!with_context.contains(&input), "never suggest the input");
    for c in &context {
        assert!(!with_context.contains(c), "never suggest the context");
    }
}
