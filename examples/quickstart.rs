//! Quickstart: build a PQS-DA engine from a handful of log lines — the
//! paper's Table I — and ask for suggestions.
//!
//! Run with: `cargo run -p pqsda --example quickstart`

use pqsda::{PqsDa, PqsDaConfig};
use pqsda_baselines::{SuggestRequest, Suggester};
use pqsda_graph::multi::MultiBipartite;
use pqsda_graph::weighting::WeightingScheme;
use pqsda_querylog::session::{segment_sessions, SessionConfig};
use pqsda_querylog::{LogEntry, QueryLog, UserId};

fn main() {
    // 1. Raw query-log lines, exactly the paper's Table I schema:
    //    (user, query, clicked URL, timestamp).
    let entries = vec![
        LogEntry::new(UserId(0), "sun", Some("www.java.com"), 100),
        LogEntry::new(UserId(0), "sun java", Some("java.sun.com"), 120),
        LogEntry::new(UserId(0), "jvm download", None, 200),
        LogEntry::new(UserId(1), "sun", Some("www.suncellular.com"), 300),
        LogEntry::new(
            UserId(1),
            "solar cell",
            Some("en.wikipedia.org/wiki/Solar_cell"),
            400,
        ),
        LogEntry::new(UserId(2), "sun oracle", Some("www.oracle.com"), 500),
        LogEntry::new(UserId(2), "java", Some("www.java.com"), 560),
    ];

    // 2. Intern the log and segment sessions (paper Definition 1).
    let mut log = QueryLog::from_entries(&entries);
    let sessions = segment_sessions(&mut log, &SessionConfig::default());
    println!(
        "log: {} records, {} distinct queries, {} sessions",
        log.records().len(),
        log.num_queries(),
        sessions.len()
    );

    // 3. Build the multi-bipartite representation (paper §III) with
    //    cfiqf edge weighting (Eq. 1–6).
    let multi = MultiBipartite::build(&log, &sessions, WeightingScheme::CfIqf);
    println!(
        "multi-bipartite edges: {} (click graph alone: {})",
        multi.total_edges(),
        multi.get(pqsda_graph::EntityKind::Url).num_edges()
    );

    // 4. The engine: diversification only here (no user profiles from 7
    //    log lines); see the other examples for personalization.
    let engine = PqsDa::new(log, multi, None, PqsDaConfig::default());

    // 5. Suggest for the ambiguous query "sun".
    let sun = engine.log().find_query("sun").expect("'sun' is in the log");
    let suggestions = engine.suggest(&SuggestRequest::simple(sun, 5));
    println!("\nsuggestions for \"sun\":");
    for (rank, q) in suggestions.iter().enumerate() {
        println!("  {}. {}", rank + 1, engine.log().query_text(*q));
    }
    assert!(!suggestions.is_empty());
}
