//! Minimal offline stand-in for the `bytes` crate: the [`Buf`]/[`BufMut`]
//! subset the UPM profile store uses (little-endian scalar codecs over
//! `&[u8]` / `Vec<u8>`).

/// Read cursor over a shrinking byte slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out and advances.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf: not enough bytes");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(self.len() >= cnt, "Buf: not enough bytes");
        *self = &self[cnt..];
    }
}

/// Append-only write sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(-1.25);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), -1.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "not enough bytes")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
