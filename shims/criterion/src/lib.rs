//! Minimal offline stand-in for `criterion`. Implements the subset of the
//! API used by this workspace's benches (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `b.iter`, the `criterion_group!` /
//! `criterion_main!` macros) with a simple wall-clock harness: each benchmark
//! is warmed up once, then timed over enough iterations to fill a small
//! per-benchmark budget, and the mean ns/iter is printed.
//!
//! Budget is tunable via `PQSDA_BENCH_BUDGET_MS` (default 200ms/benchmark).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("PQSDA_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// Top-level harness handle. Holds nothing but default sample settings; all
/// real work happens inside [`BenchmarkGroup`].
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors criterion's CLI-argument hook; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), &mut f);
        self
    }
}

/// Identifier combining a function name and a parameter, e.g. `jacobi/512`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Criterion uses this to shrink statistical sample counts; our harness
    /// is budget-driven, so it is accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&full, &mut wrapped);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    eprintln!(
        "bench {label}: {:.0} ns/iter ({} iters)",
        bencher.mean_ns, bencher.iters
    );
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: one untimed call, then a timed single call
        // to size the main loop so it roughly fills the budget.
        black_box(routine());
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = budget();
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Mean ns/iter measured by the last [`Bencher::iter`] call.
    pub fn mean_ns(&self) -> f64 {
        self.mean_ns
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_measures_something() {
        std::env::set_var("PQSDA_BENCH_BUDGET_MS", "1");
        let mut c = super::Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
