//! Minimal offline stand-in for `crossbeam`'s scoped threads, implemented
//! over `std::thread::scope`. Only the `crossbeam::scope(|s| s.spawn(...))`
//! surface used by this workspace is provided. A panic in a spawned worker
//! propagates when the scope exits (std semantics), so `.expect(...)` on the
//! returned `Result` behaves equivalently to crossbeam for passing runs.

use std::any::Any;
use std::thread;

/// Error type mirroring crossbeam's boxed panic payload.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to the closure; spawn borrows from the environment.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker. The closure receives the scope (crossbeam
    /// signature) so nested spawns keep working.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed threads can be spawned; joins all
/// of them before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_mutate_disjoint_chunks() {
        let mut data = vec![0u64; 64];
        let mid = data.len() / 2;
        let (a, b) = data.split_at_mut(mid);
        super::scope(|s| {
            s.spawn(move |_| a.iter_mut().for_each(|x| *x = 1));
            s.spawn(move |_| b.iter_mut().for_each(|x| *x = 2));
        })
        .expect("worker panicked");
        assert!(data[..mid].iter().all(|&x| x == 1));
        assert!(data[mid..].iter().all(|&x| x == 2));
    }

    #[test]
    fn nested_spawn_works() {
        let out = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }
}
