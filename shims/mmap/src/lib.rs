//! Read-only memory mapping of files, with an aligned read fallback.
//!
//! The snapshot store wants a multi-gigabyte shard file visible as one
//! `&[u8]` without copying it through a `Vec`, and it wants N replicas
//! to share the same physical pages. On unix that is `mmap(2)`; this
//! shim calls it directly (std already links libc on the platforms we
//! build for), so no external crate is needed. Where mapping is
//! unavailable — non-unix targets, or a filesystem that refuses to map —
//! [`Mapping::open`] degrades to reading the file into an 8-byte-aligned
//! owned buffer, which preserves the pointer-alignment contract the
//! zero-copy views rely on (a page-aligned map is trivially 8-aligned;
//! the fallback buffer is backed by `Vec<u64>` for the same reason).
//!
//! The usual mmap caveat applies and is *not* papered over: the bytes
//! alias the file, so a writer truncating the file under a live mapping
//! can fault the process. The snapshot store only ever publishes files
//! by atomic rename and never rewrites them in place, which is the
//! discipline that makes a shared read-only mapping sound.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 0x02;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// An owned byte buffer whose base pointer is 8-byte aligned (backing
/// storage is `Vec<u64>`), so fallback loads satisfy the same alignment
/// contract as a page-aligned mapping.
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn read_file(file: &mut File, len: usize) -> io::Result<AlignedBuf> {
        let mut words = vec![0u64; len.div_ceil(8)];
        // Safety: a u64 slice is trivially viewable as initialized bytes.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8)
        };
        file.read_exact(&mut bytes[..len])?;
        Ok(AlignedBuf { words, len })
    }

    fn as_bytes(&self) -> &[u8] {
        // Safety: the Vec owns at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

enum Repr {
    /// A live `mmap(2)` of the whole file.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// The read-into-aligned-buffer fallback.
    Owned(AlignedBuf),
    /// A zero-length file (mmap of length 0 is EINVAL, so it gets its
    /// own representation).
    Empty,
}

/// A read-only view of a whole file: memory-mapped where possible,
/// otherwise read into an 8-byte-aligned owned buffer.
pub struct Mapping {
    repr: Repr,
}

// Safety: the mapping is PROT_READ/MAP_PRIVATE and never handed out
// mutably; concurrent readers on any thread are fine.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only, falling back to an aligned read where
    /// mapping is unavailable.
    pub fn open(path: &Path) -> io::Result<Mapping> {
        Mapping::open_inner(path, true)
    }

    /// Opens `path` through the read fallback unconditionally — for
    /// exercising the non-mmap path in tests and benches.
    pub fn open_fallback(path: &Path) -> io::Result<Mapping> {
        Mapping::open_inner(path, false)
    }

    fn open_inner(path: &Path, try_mmap: bool) -> io::Result<Mapping> {
        let mut file = File::open(path)?;
        let len64 = file.metadata()?.len();
        let len = usize::try_from(len64).map_err(|_| {
            io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Mapping { repr: Repr::Empty });
        }
        #[cfg(unix)]
        if try_mmap {
            use std::os::unix::io::AsRawFd;
            // Safety: fd is valid for the duration of the call; a failed
            // map returns MAP_FAILED (-1) which we check before use.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 {
                return Ok(Mapping {
                    repr: Repr::Mapped {
                        ptr: ptr.cast_const().cast::<u8>(),
                        len,
                    },
                });
            }
            // Fall through to the read path on EINVAL/ENODEV etc.
        }
        #[cfg(not(unix))]
        let _ = try_mmap;
        Ok(Mapping {
            repr: Repr::Owned(AlignedBuf::read_file(&mut file, len)?),
        })
    }

    /// The file's bytes. The base pointer is at least 8-byte aligned.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mapped { ptr, len } => {
                // Safety: the mapping stays live until Drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Repr::Owned(buf) => buf.as_bytes(),
            Repr::Empty => &[],
        }
    }

    /// Whether this view is a true memory mapping (false = the aligned
    /// read fallback or an empty file).
    pub fn is_mmap(&self) -> bool {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mapped { .. } => true,
            _ => false,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Repr::Mapped { ptr, len } = self.repr {
            // Safety: exactly the region returned by mmap, unmapped once.
            unsafe {
                sys::munmap(ptr.cast_mut().cast(), len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("mmap-shim-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_and_falls_back_identically() {
        let data: Vec<u8> = (0..4097u32).map(|i| (i % 251) as u8).collect();
        let path = tmp("roundtrip", &data);
        let mapped = Mapping::open(&path).unwrap();
        let read = Mapping::open_fallback(&path).unwrap();
        assert_eq!(mapped.bytes(), &data[..]);
        assert_eq!(read.bytes(), &data[..]);
        assert!(!read.is_mmap());
        assert_eq!(mapped.bytes().as_ptr().align_offset(8), 0);
        assert_eq!(read.bytes().as_ptr().align_offset(8), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_empty_view() {
        let path = tmp("empty", &[]);
        let m = Mapping::open(&path).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_mmap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let path = std::env::temp_dir().join("mmap-shim-definitely-missing");
        assert!(Mapping::open(&path).is_err());
    }
}
