//! Minimal offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! poison-free, guard-returning API, implemented over `std::sync`. A
//! poisoned std lock (a panic while held) is re-entered rather than
//! propagated, matching parking_lot's semantics of not poisoning.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
