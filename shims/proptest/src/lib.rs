//! Minimal offline stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`boxed`, range / tuple / `Just` /
//! collection / option / regex-string strategies, `prop_oneof!`, the
//! `proptest!` test macro with optional `#![proptest_config(...)]`, and the
//! `prop_assert*` family. Cases are generated from a deterministic
//! per-test RNG (seeded from the test path), there is **no shrinking** —
//! a failing case panics with the assertion message.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner;

use test_runner::TestRng;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset: case count).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $width:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8 => w, u16 => w, u32 => w, u64 => w, usize => w, i32 => w, i64 => w, isize => w);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if no arms are given.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Full-range / uniform "anything" strategy for primitives.
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` entry point.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide-magnitude coverage.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Size specification for collection strategies: a fixed size or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Namespaced strategy constructors (mirrors `proptest::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// A `Vec` whose length is drawn from `size` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let SizeRange { lo, hi } = self.size;
                let n = lo + (rng.next_u64() % (hi - lo).max(1) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// `Some` with probability 3/4, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies: `"[a-z]{1,8}"`, `".{0,40}"`, literals, and
// escapes (\t, \n, \., \\) — the subset the workspace's tests use.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize, // inclusive
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let body = &chars[i + 1..close];
                i = close + 1;
                parse_class(body, pattern)
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {m,n} / {m} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition"),
                    hi.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        't' => '\t',
        'n' => '\n',
        'r' => '\r',
        other => other,
    }
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let c = if body[i] == '\\' {
            i += 1;
            unescape(body[i])
        } else {
            body[i]
        };
        // Range `a-z` (a literal '-' at the end of the class stays literal).
        if i + 2 < body.len() && body[i + 1] == '-' && body[i + 2] != ']' {
            let hi = body[i + 2];
            assert!(c <= hi, "bad class range in pattern {pattern:?}");
            out.extend(c..=hi);
            i += 3;
        } else {
            out.push(c);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty class in pattern {pattern:?}");
    out
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + (rng.next_u64() % (atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                let i = (rng.next_u64() % atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assert_eq failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assert_eq failed: {:?} != {:?}: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assert_ne failed: both {:?}",
                l
            )));
        }
    }};
}

/// Rejects the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(arg in
/// strategy, ...) { body }` items (doc comments allowed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_path(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            while accepted < config.cases {
                $(let $arg = $crate::Strategy::generate(&{ $strategy }, &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 10_000,
                            "proptest: too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} of {} failed: {}",
                            accepted + 1,
                            config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_lite_shapes() {
        let mut rng = crate::test_runner::TestRng::from_path("shape");
        for _ in 0..200 {
            let s = "[a-z]{3,6}\\.com".generate(&mut rng);
            assert!(s.ends_with(".com"), "{s}");
            assert!((3..=6).contains(&(s.len() - 4)), "{s}");
            let t = "[a-z0-9\\t\\n :-]{0,12}".generate(&mut rng);
            assert!(t.len() <= 12);
            let dot = ".{0,5}".generate(&mut rng);
            assert!(dot.len() <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and multiple args parse.
        #[test]
        fn ranges_and_tuples(x in 0usize..10, pair in (0u32..4, -1.0f64..1.0)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn collections_and_options(
            v in prop::collection::vec(0u8..255, 0..20),
            o in prop::option::of(Just(7u8)),
        ) {
            prop_assert!(v.len() < 20);
            if let Some(x) = o { prop_assert_eq!(x, 7); }
        }

        #[test]
        fn oneof_and_map(w in prop_oneof![Just("a".to_owned()), "[b-d]{1,2}"]) {
            prop_assert!(!w.is_empty());
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
