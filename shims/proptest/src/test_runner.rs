//! Deterministic per-test random source.

/// A small xoshiro256++ generator seeded from the test's module path, so
/// every test gets a stable stream across runs (no shrinking means
/// reproducibility is the only debugging aid — keep it deterministic).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds from an arbitrary string (typically `module_path!()::test`).
    pub fn from_path(path: &str) -> Self {
        // FNV-1a over the path, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut st = h;
        TestRng {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
