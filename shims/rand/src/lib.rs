//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! exact API subset the workspace uses: [`rngs::SmallRng`] (a xoshiro256++
//! generator seeded via SplitMix64), the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and [`SeedableRng::seed_from_u64`].
//! Deterministic for a fixed seed, like the real `SmallRng`, though the
//! concrete stream differs — all in-repo consumers only rely on
//! reproducibility, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native output
/// (the shim's analogue of sampling from `rand::distributions::Standard`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can produce uniformly. A single blanket
/// `SampleRange<T> for Range<T>` impl below (matching real rand's shape) is
/// what lets inference at call sites like `u64 += rng.gen_range(15..120)`
/// unify the literal with the target type instead of falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T` (`f64` in `[0,1)`, full-width ints, fair
    /// `bool`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let k = r.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let k = r.gen_range(2u64..=4);
            assert!((2..=4).contains(&k));
            let f = r.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn bools_are_mixed() {
        let mut r = SmallRng::seed_from_u64(4);
        let trues = (0..1000).filter(|_| r.gen::<bool>()).count();
        assert!((300..700).contains(&trues), "{trues}");
    }
}
