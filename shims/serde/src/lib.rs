//! Minimal offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata —
//! no code path actually serializes (there is no serde_json or bincode in
//! the tree). These derives therefore expand to nothing, which keeps every
//! annotated type compiling without a registry download.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
