//! Concurrency tests: the engine is an online service in the paper's
//! deployment story (§VI-D), so it must serve suggestion requests from many
//! threads at once, and the parallel UPM trainer must scale without
//! changing results.

use pqsda::{PqsDa, PqsDaConfig};
use pqsda_baselines::{SuggestRequest, Suggester};
use pqsda_graph::compact::CompactConfig;
use pqsda_graph::multi::MultiBipartite;
use pqsda_graph::weighting::WeightingScheme;
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::QueryId;
use pqsda_topics::{Corpus, TopicModel, TrainConfig, Upm, UpmConfig};

#[test]
fn engine_serves_concurrent_requests_consistently() {
    let synth = generate(&SynthConfig::tiny(41));
    let multi = MultiBipartite::build(&synth.log, &synth.truth.sessions, WeightingScheme::CfIqf);
    let engine = PqsDa::new(
        synth.log.clone(),
        multi,
        None,
        PqsDaConfig {
            compact: CompactConfig {
                max_queries: 64,
                max_rounds: 2,
            },
            ..PqsDaConfig::default()
        },
    );

    let queries: Vec<QueryId> = (0..synth.log.num_queries())
        .step_by(17)
        .map(QueryId::from_index)
        .collect();

    // Reference answers, computed single-threaded.
    let expected: Vec<Vec<QueryId>> = queries
        .iter()
        .map(|&q| engine.suggest(&SuggestRequest::simple(q, 6)))
        .collect();

    // Hammer the same engine from 8 threads; every thread must see exactly
    // the single-threaded answers (the compact-representation cache is
    // shared state — this exercises it under contention).
    crossbeam::scope(|scope| {
        for t in 0..8 {
            let engine = &engine;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move |_| {
                for round in 0..3 {
                    for (i, &q) in queries.iter().enumerate() {
                        let got = engine.suggest(&SuggestRequest::simple(q, 6));
                        assert_eq!(
                            got, expected[i],
                            "thread {t} round {round} query {q:?} diverged"
                        );
                    }
                }
            });
        }
    })
    .expect("worker panicked");
}

#[test]
fn parallel_upm_matches_sequential_on_a_real_corpus() {
    let synth = generate(&SynthConfig::tiny(43));
    let corpus = Corpus::build(&synth.log, &synth.truth.sessions);
    let cfg = |threads: usize| UpmConfig {
        base: TrainConfig {
            num_topics: 4,
            iterations: 20,
            seed: 3,
            ..TrainConfig::default()
        },
        hyper_every: 10,
        hyper_iterations: 5,
        threads,
    };
    let seq = Upm::train(&corpus, &cfg(1));
    let par = Upm::train(&corpus, &cfg(8));
    assert_eq!(seq.alpha(), par.alpha());
    for d in (0..corpus.num_docs()).step_by(5) {
        assert_eq!(seq.doc_topic(d), par.doc_topic(d), "doc {d}");
    }
    for z in 0..4 {
        assert_eq!(seq.beta_k(z), par.beta_k(z), "topic {z}");
    }
}

#[test]
fn sharded_cache_stays_bounded_under_hammering() {
    use pqsda::{CacheConfig, ShardedLruCache};

    let cache: ShardedLruCache<u64, Vec<u64>> = ShardedLruCache::new(CacheConfig {
        shards: 4,
        capacity: 32,
    });
    crossbeam::scope(|scope| {
        for t in 0..8u64 {
            let cache = &cache;
            scope.spawn(move |_| {
                for i in 0..2_000u64 {
                    // Overlapping key streams: plenty of hits, misses and
                    // evictions racing across all shards.
                    let key = (i * 7 + t) % 257;
                    let v = cache.get_or_insert_with(key, || vec![key; 3]);
                    assert_eq!(v[0], key, "thread {t} got a value for the wrong key");
                }
            });
        }
    })
    .expect("worker panicked");

    assert!(
        cache.len() <= cache.num_shards() * cache.per_shard_capacity(),
        "cache overgrew its bound: len = {}",
        cache.len()
    );
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, 8 * 2_000);
    assert!(s.evictions > 0, "the workload must have forced evictions");
}

#[test]
fn suggest_many_matches_serial_suggest() {
    let synth = generate(&SynthConfig::tiny(47));
    let multi = MultiBipartite::build(&synth.log, &synth.truth.sessions, WeightingScheme::CfIqf);
    let engine = PqsDa::new(
        synth.log.clone(),
        multi,
        None,
        PqsDaConfig {
            compact: CompactConfig {
                max_queries: 64,
                max_rounds: 2,
            },
            ..PqsDaConfig::default()
        },
    );
    let reqs: Vec<SuggestRequest> = (0..synth.log.num_queries())
        .step_by(11)
        .map(|q| SuggestRequest::simple(QueryId::from_index(q), 5))
        .collect();

    let serial: Vec<_> = reqs.iter().map(|r| engine.suggest(r)).collect();
    for threads in [1usize, 8] {
        assert_eq!(
            engine.suggest_many_with_threads(&reqs, threads),
            serial,
            "batched answers diverged at {threads} threads"
        );
    }
    // The engine-level memo must have been shared across the batch.
    assert!(engine.cache_stats().hits > 0);
}
