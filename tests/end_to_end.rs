//! End-to-end integration: the full pipeline — raw entries → cleaning →
//! our own session segmentation (not the generator's oracle) → corpus →
//! UPM → multi-bipartite → PQS-DA engine — holds its contracts on a
//! synthetic world.

use pqsda::{Personalizer, PqsDa, PqsDaConfig};
use pqsda_baselines::{SuggestRequest, Suggester};
use pqsda_graph::compact::CompactConfig;
use pqsda_graph::multi::MultiBipartite;
use pqsda_graph::weighting::WeightingScheme;
use pqsda_querylog::clean::{clean_entries, CleanConfig};
use pqsda_querylog::session::{segment_sessions, SessionConfig};
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::{LogEntry, QueryLog};
use pqsda_topics::{Corpus, TrainConfig, Upm, UpmConfig};

/// Builds the full pipeline from *raw re-exported entries* so the cleaning
/// and segmentation stages are genuinely exercised.
fn build_pipeline() -> (PqsDa, QueryLog) {
    let synth = generate(&SynthConfig {
        seed: 17,
        num_users: 40,
        sessions_per_user: (15, 25),
        ..SynthConfig::tiny(17)
    });
    // Re-export raw entries (as if we received a foreign log file).
    let raw: Vec<LogEntry> = synth
        .log
        .records()
        .iter()
        .map(|r| {
            LogEntry::new(
                r.user,
                synth.log.query_text(r.query),
                r.click.map(|u| synth.log.url_text(u)),
                r.timestamp,
            )
        })
        .collect();

    let (cleaned, stats) = clean_entries(&raw, &CleanConfig::default());
    assert!(stats.kept as f64 > 0.8 * raw.len() as f64);

    let mut log = QueryLog::from_entries(&cleaned);
    let sessions = segment_sessions(&mut log, &SessionConfig::default());
    assert!(!sessions.is_empty());

    let corpus = Corpus::build(&log, &sessions);
    let upm = Upm::train(
        &corpus,
        &UpmConfig {
            base: TrainConfig {
                num_topics: 4,
                iterations: 25,
                seed: 5,
                ..TrainConfig::default()
            },
            hyper_every: 0,
            hyper_iterations: 0,
            threads: 1,
        },
    );
    let personalizer = Personalizer::new(upm, &corpus, log.num_users());
    let multi = MultiBipartite::build(&log, &sessions, WeightingScheme::CfIqf);
    let engine = PqsDa::new(
        log.clone(),
        multi,
        Some(personalizer),
        PqsDaConfig {
            compact: CompactConfig {
                max_queries: 128,
                max_rounds: 3,
            },
            ..PqsDaConfig::default()
        },
    );
    (engine, log)
}

#[test]
fn pipeline_contracts_hold_for_many_queries() {
    let (engine, log) = build_pipeline();
    let mut non_empty = 0;
    for q in (0..log.num_queries()).step_by(13) {
        let qid = pqsda_querylog::QueryId::from_index(q);
        let out = engine.suggest(&SuggestRequest::simple(qid, 8));
        assert!(out.len() <= 8);
        assert!(!out.contains(&qid), "suggested the input itself");
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len(), "duplicate suggestions");
        for s in &out {
            assert!(s.index() < log.num_queries(), "dangling suggestion id");
        }
        if !out.is_empty() {
            non_empty += 1;
        }
    }
    assert!(non_empty > 0, "engine never produced suggestions");
}

#[test]
fn suggestions_are_deterministic_across_engine_rebuilds() {
    let (engine_a, log) = build_pipeline();
    let (engine_b, _) = build_pipeline();
    let q = log.records()[0].query;
    let req = SuggestRequest::simple(q, 6).for_user(log.records()[0].user);
    assert_eq!(engine_a.suggest(&req), engine_b.suggest(&req));
}

#[test]
fn context_and_user_change_results_somewhere() {
    let (engine, log) = build_pipeline();
    let mut context_mattered = false;
    let mut user_mattered = false;
    for r in log.records().iter().step_by(29) {
        let base = engine.suggest(&SuggestRequest::simple(r.query, 6));
        if base.is_empty() {
            continue;
        }
        // Another query of the same user as context.
        if let Some(other) = log
            .records()
            .iter()
            .find(|o| o.user == r.user && o.query != r.query)
        {
            let ctx = SuggestRequest::simple(r.query, 6).with_context(
                vec![other.query],
                vec![r.timestamp.saturating_sub(60)],
                r.timestamp,
            );
            if engine.suggest(&ctx) != base {
                context_mattered = true;
            }
        }
        let personal = engine.suggest(&SuggestRequest::simple(r.query, 6).for_user(r.user));
        if personal != base {
            user_mattered = true;
        }
        if context_mattered && user_mattered {
            break;
        }
    }
    assert!(user_mattered, "personalization never changed any ranking");
    assert!(context_mattered, "context never changed any result");
}

#[test]
fn segmented_sessions_approximate_ground_truth() {
    // The segmenter (time-gap + lexical) should roughly recover the
    // generator's sessions: the session count must be within 2x.
    let synth = generate(&SynthConfig::tiny(23));
    let raw: Vec<LogEntry> = synth
        .log
        .records()
        .iter()
        .map(|r| {
            LogEntry::new(
                r.user,
                synth.log.query_text(r.query),
                r.click.map(|u| synth.log.url_text(u)),
                r.timestamp,
            )
        })
        .collect();
    let mut log = QueryLog::from_entries(&raw);
    let sessions = segment_sessions(&mut log, &SessionConfig::default());
    let truth = synth.truth.sessions.len();
    assert!(
        sessions.len() as f64 >= truth as f64 * 0.5 && sessions.len() as f64 <= truth as f64 * 2.0,
        "segmenter found {} sessions vs {} ground truth",
        sessions.len(),
        truth
    );
}
