//! The paper's qualitative claims, asserted at smoke scale. These are the
//! "shape" checks behind EXPERIMENTS.md: who wins, in which metric, in
//! which direction — not absolute values.

use pqsda_baselines::ht::HtParams;
use pqsda_baselines::walks::WalkParams;
use pqsda_baselines::{ForwardWalk, HittingTime, SuggestRequest, Suggester};
use pqsda_bench::{ExperimentWorld, PersonalizationSetup, Scale};
use pqsda_eval::{relevance_at_k, DiversityMetric, HprConfig, HprRater};
use pqsda_graph::weighting::WeightingScheme;
use pqsda_topics::lda::Lda;
use pqsda_topics::model::perplexity;
use pqsda_topics::{Corpus, SplitCorpus, TrainConfig, Upm, UpmConfig};

fn world() -> ExperimentWorld {
    ExperimentWorld::build(Scale::Small, 42)
}

#[test]
fn claim_diversification_beats_relevance_only_baselines_on_diversity() {
    // Paper §VI-B: "PQS-DA generates more diverse suggestions than FRW,
    // BRW, HT and DQS" — we assert the dominant part (vs FRW/BRW/HT).
    let w = world();
    let tests = w.sample_test_queries(40, 1);
    let metric = DiversityMetric::new(w.log(), &w.synth.truth.url_fields);
    let engine = w.pqsda_div(WeightingScheme::CfIqf);
    let frw = ForwardWalk::new(w.log(), WeightingScheme::CfIqf, WalkParams::default());
    let ht = HittingTime::new(w.log(), WeightingScheme::CfIqf, HtParams::default());
    let avg = |s: &dyn Suggester| {
        tests
            .iter()
            .map(|&q| metric.at_k(&s.suggest(&SuggestRequest::simple(q, 10)), 10))
            .sum::<f64>()
            / tests.len() as f64
    };
    let d_pqsda = avg(&engine);
    let d_frw = avg(&frw);
    let d_ht = avg(&ht);
    assert!(
        d_pqsda > d_frw && d_pqsda > d_ht,
        "diversity: PQS-DA {d_pqsda:.3} vs FRW {d_frw:.3}, HT {d_ht:.3}"
    );
}

#[test]
fn claim_best_top1_relevance() {
    // Paper §VI-B: "PQS-DA is better at identifying the most relevant
    // suggestion candidate than all the four baselines."
    let w = world();
    let tests = w.sample_test_queries(40, 2);
    let tax = &w.synth.truth.taxonomy;
    let engine = w.pqsda_div(WeightingScheme::CfIqf);
    let baselines = w.diversification_baselines(WeightingScheme::CfIqf);
    let top1 = |s: &dyn Suggester| {
        tests
            .iter()
            .map(|&q| relevance_at_k(tax, q, &s.suggest(&SuggestRequest::simple(q, 10)), 1))
            .sum::<f64>()
            / tests.len() as f64
    };
    let r_pqsda = top1(&engine);
    for b in &baselines {
        let r_b = top1(b.as_ref());
        assert!(
            r_pqsda >= r_b - 1e-9,
            "top-1 relevance: PQS-DA {r_pqsda:.3} vs {} {r_b:.3}",
            b.name()
        );
    }
}

#[test]
fn claim_weighting_helps_pqsda_relevance() {
    // Paper §VI-B: "the weighted multi-bipartite representation is
    // effective to improve the overall performance of PQS-DA."
    let w = world();
    let tests = w.sample_test_queries(40, 3);
    let tax = &w.synth.truth.taxonomy;
    let raw = w.pqsda_div(WeightingScheme::Raw);
    let weighted = w.pqsda_div(WeightingScheme::CfIqf);
    let rel = |s: &dyn Suggester| {
        tests
            .iter()
            .map(|&q| relevance_at_k(tax, q, &s.suggest(&SuggestRequest::simple(q, 10)), 10))
            .sum::<f64>()
            / tests.len() as f64
    };
    let r_raw = rel(&raw);
    let r_weighted = rel(&weighted);
    assert!(
        r_weighted >= r_raw - 0.02,
        "weighted relevance {r_weighted:.3} must not trail raw {r_raw:.3}"
    );
}

#[test]
fn claim_upm_beats_lda_on_perplexity() {
    // Paper Fig. 4: UPM best perplexity (at world-topic granularity; see
    // EXPERIMENTS.md).
    let w = world();
    let corpus = Corpus::build(w.log(), w.sessions());
    let split = SplitCorpus::by_fraction(&corpus, 0.7);
    let cfg = TrainConfig {
        num_topics: w.synth.world.topic_names.len(),
        iterations: 40,
        seed: 5,
        ..TrainConfig::default()
    };
    let lda = perplexity(&Lda::train(&split.observed, &cfg), &split).unwrap();
    let upm = perplexity(
        &Upm::train(
            &split.observed,
            &UpmConfig {
                base: cfg,
                hyper_every: 15,
                hyper_iterations: 8,
                threads: 1,
            },
        ),
        &split,
    )
    .unwrap();
    assert!(upm < lda, "UPM {upm:.1} must beat LDA {lda:.1}");
}

#[test]
fn claim_pqsda_wins_hpr() {
    // Paper Fig. 6: PQS-DA "significantly outperforms the baselines with
    // respect to the HPR" — asserted against PHT and CM.
    let w = world();
    let setup = PersonalizationSetup::build(&w, 42);
    let rater = HprRater::new(&w.synth.truth, HprConfig::default());
    let methods = setup.personalized_suite(&w, WeightingScheme::CfIqf);
    let hpr_of = |m: &dyn Suggester| {
        let mut total = 0.0;
        for &si in setup.test_sessions.iter().take(40) {
            let req = setup.request(&w, si, 10);
            let list = m.suggest(&req);
            total += rater.at_k(
                w.sessions()[si].user,
                w.synth.truth.session_facet[si],
                &list,
                10,
            );
        }
        total / setup.test_sessions.len().min(40) as f64
    };
    let by_name = |name: &str| {
        methods
            .iter()
            .find(|m| m.name() == name)
            .unwrap_or_else(|| panic!("method {name} missing"))
    };
    let pqsda = hpr_of(by_name("PQS-DA").as_ref());
    let pht = hpr_of(by_name("PHT").as_ref());
    let cm = hpr_of(by_name("CM").as_ref());
    assert!(
        pqsda > pht && pqsda > cm,
        "HPR: PQS-DA {pqsda:.3} vs PHT {pht:.3}, CM {cm:.3}"
    );
}

#[test]
fn claim_personalization_preserves_diversity() {
    // Paper §VI-C: "personalization does not necessarily degrade the
    // diversity of the query suggestion lists."
    let w = world();
    let setup = PersonalizationSetup::build(&w, 42);
    let metric = DiversityMetric::new(w.log(), &w.synth.truth.url_fields);
    let div_engine = w.pqsda_div(WeightingScheme::CfIqf);
    let methods = setup.personalized_suite(&w, WeightingScheme::CfIqf);
    let full = methods
        .iter()
        .find(|m| m.name() == "PQS-DA")
        .expect("full engine present");
    let mut base_div = 0.0;
    let mut pers_div = 0.0;
    let n = setup.test_sessions.len().min(40);
    for &si in setup.test_sessions.iter().take(n) {
        let req = setup.request(&w, si, 10);
        base_div += metric.at_k(&div_engine.suggest(&req), 10);
        pers_div += metric.at_k(&full.suggest(&req), 10);
    }
    base_div /= n as f64;
    pers_div /= n as f64;
    // Reranking permutes, never drops: diversity@10 over the same set is
    // identical; allow tiny tolerance for truncation effects.
    assert!(
        (pers_div - base_div).abs() < 0.05,
        "diversity before {base_div:.3} vs after personalization {pers_div:.3}"
    );
}

#[test]
fn claim_scenario_default_pack_diversity_dominates_pinned() {
    // The scenario harness's frozen baseline (DESIGN.md §13): on the
    // default pack at the pinned seed, diversity-on must dominate
    // diversity-off on unique@10 AND max-share@10, and the gate means are
    // frozen so a silent regression in the generator, the engine, or the
    // metrics shows up as a drifted value, not just a flipped verdict.
    use pqsda_bench::scenario::{run_pack, Pack, ScenarioOptions};
    let report = run_pack(Pack::Default, &ScenarioOptions::default());
    let gate = |name: &str| {
        report
            .gates
            .iter()
            .find(|g| g.name.starts_with(name))
            .unwrap_or_else(|| panic!("gate {name} missing"))
    };
    let unique = gate("unique@10");
    let share = gate("max-share@10");
    // Dominance, significance-backed.
    assert!(
        unique.pass && unique.mean_delta > 0.0,
        "unique@10: {unique:?}"
    );
    assert!(
        share.pass && share.mean_delta < 0.0,
        "max-share@10: {share:?}"
    );
    // Frozen values from the pinned seed-42 run (tolerance covers libm
    // ulp differences across hosts, nothing more).
    let approx = |got: f64, want: f64| (got - want).abs() < 0.02;
    assert!(
        approx(unique.mean_a, 2.5208),
        "unique@10 A drifted: {}",
        unique.mean_a
    );
    assert!(
        approx(unique.mean_b, 2.1042),
        "unique@10 B drifted: {}",
        unique.mean_b
    );
    assert!(
        approx(share.mean_a, 0.9062),
        "max-share@10 A drifted: {}",
        share.mean_a
    );
    assert!(
        approx(share.mean_b, 0.9396),
        "max-share@10 B drifted: {}",
        share.mean_b
    );
}
