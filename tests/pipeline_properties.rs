//! Property-based integration tests: engine invariants over randomly
//! generated worlds and requests.

use pqsda::{PqsDa, PqsDaConfig};
use pqsda_baselines::{SuggestRequest, Suggester};
use pqsda_graph::compact::CompactConfig;
use pqsda_graph::multi::MultiBipartite;
use pqsda_graph::weighting::WeightingScheme;
use pqsda_querylog::synth::{generate, SynthConfig};
use pqsda_querylog::QueryId;
use proptest::prelude::*;

fn engine_for_seed(seed: u64) -> PqsDa {
    let synth = generate(&SynthConfig::tiny(seed));
    let multi = MultiBipartite::build(&synth.log, &synth.truth.sessions, WeightingScheme::CfIqf);
    PqsDa::new(
        synth.log,
        multi,
        None,
        PqsDaConfig {
            compact: CompactConfig {
                max_queries: 64,
                max_rounds: 2,
            },
            ..PqsDaConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn engine_invariants_over_random_worlds(
        seed in 0u64..200,
        query_pick in 0usize..1000,
        k in 1usize..12,
    ) {
        let engine = engine_for_seed(seed);
        let n = engine.log().num_queries();
        let q = QueryId::from_index(query_pick % n);
        let out = engine.suggest(&SuggestRequest::simple(q, k));
        prop_assert!(out.len() <= k);
        prop_assert!(!out.contains(&q));
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), out.len(), "duplicates in suggestions");
        for s in &out {
            prop_assert!(s.index() < n);
        }
        // Determinism: the same request yields the same list. (Note:
        // different k are NOT prefix-stable by design — Algorithm 1's
        // relevance pool scales with k.)
        let again = engine.suggest(&SuggestRequest::simple(q, k));
        prop_assert_eq!(out, again);
    }

    #[test]
    fn baselines_share_the_contract(
        seed in 0u64..100,
        query_pick in 0usize..1000,
    ) {
        let synth = generate(&SynthConfig::tiny(seed));
        let log = &synth.log;
        let n = log.num_queries();
        let q = QueryId::from_index(query_pick % n);
        use pqsda_baselines::*;
        let methods: Vec<Box<dyn Suggester>> = vec![
            Box::new(ForwardWalk::new(log, WeightingScheme::Raw, Default::default())),
            Box::new(BackwardWalk::new(log, WeightingScheme::Raw, Default::default())),
            Box::new(HittingTime::new(log, WeightingScheme::Raw, Default::default())),
            Box::new(Dqs::new(log, WeightingScheme::Raw, Default::default())),
            Box::new(PersonalizedHittingTime::new(log, WeightingScheme::Raw, Default::default())),
            Box::new(ConceptBased::new(log, WeightingScheme::Raw, Default::default())),
        ];
        for m in &methods {
            let out = m.suggest(&SuggestRequest::simple(q, 7));
            prop_assert!(out.len() <= 7, "{}", m.name());
            prop_assert!(!out.contains(&q), "{} suggested the input", m.name());
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), out.len(), "{} duplicated", m.name());
        }
    }
}
