//! Failure-injection and degenerate-input robustness across the stack.

use pqsda::{PqsDa, PqsDaConfig};
use pqsda_baselines::{SuggestRequest, Suggester};
use pqsda_graph::multi::MultiBipartite;
use pqsda_graph::weighting::WeightingScheme;
use pqsda_querylog::io::read_aol;
use pqsda_querylog::session::{segment_sessions, SessionConfig};
use pqsda_querylog::{LogEntry, QueryLog, UserId};
use proptest::prelude::*;

/// A log with NO clicks at all: the click graph is empty, every click-graph
/// baseline is blind — but PQS-DA still works through the session and term
/// bipartites. This is the paper's §III coverage argument taken to the
/// extreme.
#[test]
fn engine_survives_a_click_free_log() {
    let mut entries = Vec::new();
    for rep in 0..4u64 {
        let base = rep * 50_000;
        entries.push(LogEntry::new(UserId(0), "sun", None, base));
        entries.push(LogEntry::new(UserId(0), "sun java", None, base + 30));
        entries.push(LogEntry::new(UserId(1), "sun", None, base + 1000));
        entries.push(LogEntry::new(UserId(1), "sun solar", None, base + 1030));
    }
    let mut log = QueryLog::from_entries(&entries);
    let sessions = segment_sessions(&mut log, &SessionConfig::default());
    assert_eq!(log.num_urls(), 0);

    let multi = MultiBipartite::build(&log, &sessions, WeightingScheme::CfIqf);
    let engine = PqsDa::new(log, multi, None, PqsDaConfig::default());
    let sun = engine.log().find_query("sun").unwrap();

    // Click-graph baselines have nothing.
    use pqsda_baselines::*;
    let frw = ForwardWalk::new(engine.log(), WeightingScheme::CfIqf, Default::default());
    assert!(frw.suggest(&SuggestRequest::simple(sun, 5)).is_empty());

    // PQS-DA still reaches both facets.
    let out = engine.suggest(&SuggestRequest::simple(sun, 4));
    let texts: Vec<&str> = out.iter().map(|&q| engine.log().query_text(q)).collect();
    assert!(
        texts.iter().any(|t| t.contains("java")) && texts.iter().any(|t| t.contains("solar")),
        "click-free engine failed: {texts:?}"
    );
}

/// A single-user, single-session log — the smallest world where anything
/// can be suggested at all. Note the weighting: with |Q| = 2 every entity
/// touches every query, so all iqf weights are ln(2/2) = 0 and the
/// *weighted* graph is empty — the exact analogue of IDF degenerating on a
/// two-document corpus. The paper's Eq. 1 is kept literal, so tiny logs
/// should use the raw representation; the engine degrades to an empty
/// suggestion list (never a panic) on the weighted one.
#[test]
fn engine_survives_a_minimal_log() {
    let entries = vec![
        LogEntry::new(UserId(0), "sun", Some("a.com"), 0),
        LogEntry::new(UserId(0), "sun java", Some("a.com"), 10),
    ];
    let mut log = QueryLog::from_entries(&entries);
    let sessions = segment_sessions(&mut log, &SessionConfig::default());

    let raw = MultiBipartite::build(&log, &sessions, WeightingScheme::Raw);
    let engine = PqsDa::new(log.clone(), raw, None, PqsDaConfig::default());
    let sun = engine.log().find_query("sun").unwrap();
    let out = engine.suggest(&SuggestRequest::simple(sun, 5));
    assert_eq!(out.len(), 1);
    assert_eq!(engine.log().query_text(out[0]), "sun java");

    // The weighted representation is degenerate here: empty output, no panic.
    let weighted = MultiBipartite::build(&log, &sessions, WeightingScheme::CfIqf);
    let engine_w = PqsDa::new(log, weighted, None, PqsDaConfig::default());
    assert!(engine_w.suggest(&SuggestRequest::simple(sun, 5)).is_empty());
}

/// A log where one "user" produced everything — no personalization signal,
/// but nothing crashes.
#[test]
fn single_user_world_is_fine() {
    let entries: Vec<LogEntry> = (0..40)
        .map(|i| {
            LogEntry::new(
                UserId(0),
                format!("query number {i}"),
                Some("site.com"),
                i * 3_600,
            )
        })
        .collect();
    let mut log = QueryLog::from_entries(&entries);
    let sessions = segment_sessions(&mut log, &SessionConfig::default());
    let multi = MultiBipartite::build(&log, &sessions, WeightingScheme::CfIqf);
    let engine = PqsDa::new(log, multi, None, PqsDaConfig::default());
    let q = engine.log().records()[0].query;
    let _ = engine.suggest(&SuggestRequest::simple(q, 5));
}

proptest! {
    /// The AOL reader must never panic, whatever bytes it is fed — only
    /// return entries or a typed error.
    #[test]
    fn aol_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_aol(bytes.as_slice());
    }

    /// Same for text-ish inputs with plenty of tabs and newlines (the
    /// interesting corner of the format).
    #[test]
    fn aol_reader_never_panics_on_tabby_text(s in "[a-z0-9\\t\\n :-]{0,256}") {
        let _ = read_aol(s.as_bytes());
    }

    /// The UPM profile loader must never panic on arbitrary bytes.
    #[test]
    fn upm_loader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = pqsda_topics::load_upm(&bytes);
    }

    /// Nor the personalizer loader.
    #[test]
    fn personalizer_loader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = pqsda::Personalizer::read_from(&bytes);
    }
}
