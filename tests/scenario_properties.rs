//! Property tests for the scenario pack generators (DESIGN.md §13).
//!
//! The quality gates are only as trustworthy as the packs are
//! reproducible: a gate verdict stamped with a seed and a fingerprint
//! must mean the *same bytes* on any host, at any worker-pool width, on
//! any rerun. These properties pin that contract with
//! [`SyntheticLog::fingerprint`], the FNV-1a content hash over every
//! record, interned string, ground-truth facet assignment and user
//! preference vector.

use pqsda_bench::scenario::Pack;
use pqsda_parallel::map_indexed;
use pqsda_querylog::synth::generate;
use proptest::prelude::*;

/// Generates all six packs at `seed`, fanned out over `threads` workers,
/// and returns their content fingerprints in pack order.
fn pack_fingerprints(seed: u64, threads: usize) -> Vec<u64> {
    map_indexed(Pack::ALL.len(), threads, |i| {
        generate(&Pack::ALL[i].config(seed)).fingerprint()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same config + seed → bit-identical pack, whether the generators
    /// run serially, on 2 workers, on 4 workers, or twice in a row.
    #[test]
    fn generators_are_bit_deterministic_across_threads_and_runs(seed in 0u64..200) {
        let serial = pack_fingerprints(seed, 1);
        prop_assert_eq!(&serial, &pack_fingerprints(seed, 1), "rerun changed a pack");
        for threads in [2usize, 4] {
            prop_assert_eq!(
                &serial,
                &pack_fingerprints(seed, threads),
                "{} worker threads changed a pack", threads
            );
        }
    }

    /// The adversarial knobs actually bite: every perturbed pack differs
    /// from the unperturbed default pack at the same seed, and a seed
    /// change moves every fingerprint.
    #[test]
    fn packs_and_seeds_separate_fingerprints(seed in 0u64..200) {
        let fps = pack_fingerprints(seed, 1);
        for (pack, &fp) in Pack::ALL.iter().zip(&fps).skip(1) {
            prop_assert!(fp != fps[0], "pack {} degenerated to the default pack", pack.name());
        }
        let moved = pack_fingerprints(seed + 1000, 1);
        for (pack, (&a, &b)) in Pack::ALL.iter().zip(fps.iter().zip(&moved)) {
            prop_assert!(a != b, "seed change did not move pack {}", pack.name());
        }
    }
}
